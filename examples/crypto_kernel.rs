//! Domain scenario: a block-cipher round kernel (the workload family the
//! paper's introduction motivates — 32-bit `int` code on a 64-bit
//! machine). Compares all twelve algorithm variants on dynamic extension
//! counts and the cycle-model speedup.
//!
//! ```text
//! cargo run -p xelim-examples --bin crypto_kernel
//! ```

use sxe_core::Variant;
use sxe_ir::{Target, Width};
use sxe_jit::Compiler;
use sxe_vm::Vm;

fn main() {
    // The IDEA workload is exactly this scenario; reuse it at a nontrivial
    // size so loop behaviour dominates.
    let module = sxe_workloads::by_name("IDEA").expect("exists").build(400);

    println!(
        "{:28} {:>10} {:>12} {:>10} {:>9}",
        "variant", "static", "dynamic", "% base", "cycles"
    );
    let mut baseline_dyn = 0u64;
    let mut baseline_cycles = 0u64;
    for variant in Variant::ALL {
        let compiled = Compiler::for_variant(variant).compile(&module);
        let mut vm = Vm::new(&compiled.module, Target::Ia64);
        let out = vm.run("main", &[]).expect("no trap");
        let dynamic = vm.counters().extend_count(Some(Width::W32));
        if variant == Variant::Baseline {
            baseline_dyn = dynamic.max(1);
            baseline_cycles = vm.counters().cycles;
        }
        println!(
            "{:28} {:>10} {:>12} {:>9.2}% {:>9}",
            variant.label(),
            compiled.module.count_extends(None),
            dynamic,
            100.0 * dynamic as f64 / baseline_dyn as f64,
            vm.counters().cycles,
        );
        if variant == Variant::All {
            println!(
                "\nestimated speedup of the full algorithm: {:.2}%  (checksum {:?})\n",
                100.0 * (baseline_cycles as f64 / vm.counters().cycles as f64 - 1.0),
                out.ret
            );
        }
    }
}
