//! Profile-guided order determination: the paper's combined interpreter +
//! dynamic compiler collects branch statistics before optimizing. This
//! example builds a function with a *biased* branch that the static
//! estimator cannot see, and shows the interpreter profile steering the
//! elimination order.
//!
//! ```text
//! cargo run -p xelim-examples --bin profile_guided
//! ```

use sxe_core::Variant;
use sxe_ir::{parse_module, Target, Width};
use sxe_jit::Compiler;
use sxe_vm::Vm;

/// Two sibling loops guarded by a flag: statically they look equally
/// hot, but at run time only one executes. Each loop needs an extension
/// for `(double)` accumulation; the profile tells the compiler which one
/// matters.
const BIASED: &str = "\
func @main(i32, i32) -> f64 {
b0:
    r2 = const.i32 0
    condbr eq.i32 r1, r2, b1, b4
b1:
    br b2
b2:
    r3 = const.i32 1
    r0 = sub.i32 r0, r3
    r4 = add.i32 r4, r0
    condbr gt.i32 r0, r2, b2, b3
b3:
    r5 = i32tof64.f64 r4
    ret r5
b4:
    br b5
b5:
    r6 = const.i32 1
    r0 = sub.i32 r0, r6
    r7 = mul.i32 r7, r0
    condbr gt.i32 r0, r2, b5, b6
b6:
    r8 = i32tof64.f64 r7
    ret r8
}
";

fn main() {
    let module = parse_module(BIASED).expect("parses");
    let compiler = Compiler::for_variant(Variant::All);

    // Static compile: order determination sees two equally hot loops.
    let plain = compiler.compile(&module);
    // Profiled compile: the interpreter observes the actual run (flag=0
    // takes the first loop only).
    let profiled = compiler.compile_profiled(&module, "main", &[100_000, 0]);

    for (label, compiled) in [("static order", &plain), ("profile-guided", &profiled)] {
        let mut vm = Vm::new(&compiled.module, Target::Ia64);
        let out = vm.run("main", &[100_000, 0]).expect("no trap");
        println!(
            "{label:15} static extends: {:2}  dynamic extends: {:6}  result: {:?}",
            compiled.module.count_extends(None),
            vm.counters().extend_count(Some(Width::W32)),
            out.ret.map(|b| f64::from_bits(b as u64)),
        );
    }
    println!(
        "\nBoth are correct; the profile-guided compile knows which loop is hot\n\
         and eliminates its extensions first (paper §2.2)."
    );
}
