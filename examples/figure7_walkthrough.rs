//! Walk through the paper's Figures 7 and 8: watch the conversion
//! generate extensions, the insertion phase add (11) and the dummies,
//! and the elimination clean the loop, leaving a single extension before
//! `(double) t`.
//!
//! ```text
//! cargo run -p xelim-examples --bin figure7_walkthrough
//! ```

use sxe_core::{convert_function, GenStrategy, SxeConfig, Variant};
use sxe_ir::{parse_function, Target};

const FIGURE7: &str = "\
// int j, t = 0, i = mem;
// do { i = i - 1; j = a[i]; j = j & 0x0fffffff; t += j; } while (i > start);
// d = (double) t;
func @figure7(i32, i32) -> f64 {
b0:
    r2 = newarray.i32 r0
    r3 = const.i32 0
    br b1
b1:
    r4 = const.i32 1
    r1 = sub.i32 r1, r4
    r5 = aload.i32 r2, r1
    r6 = const.i32 268435455
    r5 = and.i32 r5, r6
    r3 = add.i32 r3, r5
    condbr gt.i32 r1, r4, b1, b2
b2:
    r7 = i32tof64.f64 r3
    ret r7
}
";

fn main() {
    let mut f = parse_function(FIGURE7).expect("parses");
    println!("=== step 0: 32-bit form ===\n{f}");

    let generated = convert_function(&mut f, Target::Ia64, GenStrategy::AfterDef);
    println!("=== step 1: conversion generated {generated} extensions ===\n{f}");

    // Show the insertion phase in isolation.
    let mut inserted_view = f.clone();
    let dummies = sxe_core::insertion::insert_dummies(&mut inserted_view, Target::Ia64);
    let ins = sxe_core::insertion::simple_insertion(&mut inserted_view, Target::Ia64, true);
    println!(
        "=== phase (3)-1: {} dummies, {} anticipatory extension(s) — the paper's (11) and (12) ===\n{inserted_view}",
        dummies, ins.inserted
    );

    // Full step 3.
    let stats = sxe_core::run_step3(&mut f, &SxeConfig::for_variant(Variant::All), None);
    println!(
        "=== step 3 complete: examined {}, eliminated {} ({} via array theorems) ===\n{f}",
        stats.examined, stats.eliminated, stats.eliminated_via_array
    );
    println!(
        "The loop body holds {} extensions; exactly one remains before the i2d — Figure 8(b).",
        f.block(sxe_ir::BlockId(1)).insts.iter().filter(|i| i.is_extend(None)).count()
    );
}
