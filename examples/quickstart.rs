//! Quickstart: build a small 32-bit-form function, run the full paper
//! pipeline, and watch the sign extensions disappear.
//!
//! ```text
//! cargo run -p xelim-examples --bin quickstart
//! ```

use sxe_core::Variant;
use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Target, Ty, UnOp};
use sxe_jit::Compiler;
use sxe_vm::Vm;

fn main() {
    // int sum(int n) {
    //   int[] a = new int[n];
    //   for (int i = n - 1; i > 0; i--) a[i] = i;
    //   int t = 0;
    //   for (int i = n - 1; i > 0; i--) t += a[i] & 0xffff;
    //   return (int)(double) t;   // forces a sign-extension-hungry i2d
    // }
    let mut b = FunctionBuilder::new("sum", vec![Ty::I32], Some(Ty::I32));
    let n = b.param(0);
    let arr = b.new_array(Ty::I32, n);
    let one = b.iconst(Ty::I32, 1);
    let zero = b.iconst(Ty::I32, 0);

    let i = b.new_reg();
    let im = b.bin(BinOp::Sub, Ty::I32, n, one);
    b.copy_to(Ty::I32, i, im);
    let (head, body, exit) = (b.new_block(), b.new_block(), b.new_block());
    b.br(head);
    b.switch_to(head);
    b.cond_br(Cond::Gt, Ty::I32, i, zero, body, exit);
    b.switch_to(body);
    b.array_store(Ty::I32, arr, i, i);
    b.bin_to(BinOp::Sub, Ty::I32, i, i, one);
    b.br(head);
    b.switch_to(exit);

    let t = b.new_reg();
    b.copy_to(Ty::I32, t, zero);
    let j = b.new_reg();
    let jm = b.bin(BinOp::Sub, Ty::I32, n, one);
    b.copy_to(Ty::I32, j, jm);
    let (head2, body2, exit2) = (b.new_block(), b.new_block(), b.new_block());
    b.br(head2);
    b.switch_to(head2);
    b.cond_br(Cond::Gt, Ty::I32, j, zero, body2, exit2);
    b.switch_to(body2);
    let v = b.array_load(Ty::I32, arr, j);
    let mask = b.iconst(Ty::I32, 0xFFFF);
    let masked = b.bin(BinOp::And, Ty::I32, v, mask);
    b.bin_to(BinOp::Add, Ty::I32, t, t, masked);
    b.bin_to(BinOp::Sub, Ty::I32, j, j, one);
    b.br(head2);
    b.switch_to(exit2);
    let d = b.un(UnOp::I32ToF64, Ty::F64, t);
    let r = b.un(UnOp::F64ToI32, Ty::I32, d);
    b.ret(Some(r));

    let mut module = Module::new();
    module.add_function(b.finish());

    println!("=== source (32-bit form) ===\n{module}");

    for variant in [Variant::Baseline, Variant::FirstAlgorithm, Variant::All] {
        let compiled = Compiler::for_variant(variant).compile(&module);
        let mut vm = Vm::new(&compiled.module, Target::Ia64);
        let out = vm.run("sum", &[1000]).expect("no trap");
        println!(
            "{variant:28} static extends: {:3}   dynamic extends: {:6}   result: {:?}",
            compiled.module.count_extends(None),
            vm.counters().extend_count(None),
            out.ret
        );
        if variant == Variant::All {
            println!("\n=== fully optimized ===\n{}", compiled.module);
        }
    }
}
