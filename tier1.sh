#!/usr/bin/env sh
# Tier-1 gate: build, full test suite, lints on the robustness-touched
# crates, and the fault-injection (chaos) smoke sweep.
#
#   ./tier1.sh            # everything
#   ./tier1.sh --fast     # skip the chaos smoke sweep
set -eu

cd "$(dirname "$0")"

echo "== tier1: cargo build --release"
cargo build --release

echo "== tier1: cargo test -q"
cargo test -q

echo "== tier1: clippy -D warnings (touched crates)"
cargo clippy -q -p sxe-ir -p sxe-core -p sxe-opt -p sxe-vm -p sxe-jit \
    -p sxe-bench -p xelim-integration-tests --all-targets -- -D warnings

if [ "${1:-}" != "--fast" ]; then
    echo "== tier1: chaos smoke (17 workloads x 32 fault seeds)"
    cargo run -q --release -p sxe-bench --bin chaos -- --seeds 32 --scale 0.05
fi

echo "== tier1: OK"
