#!/usr/bin/env sh
# Tier-1 gate: build, full test suite, lints on the robustness- and
# sharding-touched crates, the sharded-compile determinism check, the
# fault-injection (chaos) smoke sweep, the telemetry gate (schema-valid
# metrics export, disabled-sink output determinism), and the fuzz gate
# (clean smoke campaign, planted-miscompile self-test with a minimized
# reproducer, thread-count independence of findings), and the serve gate
# (daemon warm-pass hit rate, SIGKILL crash recovery with quarantine,
# clean drain, overload shedding with typed refusals), and the netchaos
# gate (seeded network-fault campaign over every fault kind with
# thread-count-invariant reports, a 10k-frame malformed-protocol fuzz
# with zero hangs and all-typed outcomes, the slow-loris frame-deadline
# cutoff, and an every-byte-boundary artifact-store crash-point sweep),
# and the VM gate
# (engine-identity suite: decoded vs tree observably identical on all
# 17 workloads, fuel cutoffs, and a seeded fuzz sweep; vmbench decoded
# throughput at least 3x the tree-walking oracle), and the native gate
# (native-identity suite: the sxe-native x86-64 JIT observably identical
# to the decoded engine on all 17 workloads x both targets x both
# compile variants plus a fuzz sweep; a native-vs-decoded differential
# fuzz campaign; nativebench native throughput at least 2x the decoded
# interpreter on the integer workloads), and the mips64 gate (fuzz
# smoke and chaos sweep on the canonical-form target; the engine- and
# native-identity suites above already run every target, mips64
# included).
#
#   ./tier1.sh            # everything
#   ./tier1.sh --fast     # skip the determinism/chaos/telemetry/fuzz/serve sweeps
set -eu

cd "$(dirname "$0")"

echo "== tier1: cargo build --release"
cargo build --release

echo "== tier1: cargo test -q"
cargo test -q

echo "== tier1: clippy -D warnings (touched crates)"
cargo clippy -q -p sxe-ir -p sxe-analysis -p sxe-core -p sxe-opt -p sxe-vm \
    -p sxe-jit -p sxe-bench -p sxe-telemetry -p sxe-fuzz -p sxe-serve \
    -p sxe-native -p xelim-integration-tests --all-targets -- -D warnings

if [ "${1:-}" != "--fast" ]; then
    echo "== tier1: sharded determinism (threads 1 vs 4, 17 workloads)"
    cargo run -q --release -p sxe-bench --bin throughput -- --check --scale 0.05

    echo "== tier1: chaos smoke (17 workloads x 32 fault seeds, 4 workers)"
    cargo run -q --release -p sxe-bench --bin chaos -- --seeds 32 --scale 0.05 --threads 4

    echo "== tier1: telemetry gate (trace + metrics export, schema check, disabled-sink determinism)"
    TDIR="$(mktemp -d)"
    trap 'rm -rf "$TDIR"' EXIT
    cargo run -q --release -p sxe-jit --bin sxec -- --workload "numeric sort" --threads 4 \
        --trace "$TDIR/ns.trace.json" --metrics "$TDIR/ns.metrics.json" > "$TDIR/traced.out"
    grep -q '"traceEvents"' "$TDIR/ns.trace.json" || {
        echo "tier1: trace export missing traceEvents" >&2; exit 1; }
    cargo run -q --release -p sxe-telemetry --bin validate-metrics -- \
        schemas/metrics.schema.json "$TDIR/ns.metrics.json"
    cargo run -q --release -p sxe-jit --bin sxec -- --workload "numeric sort" --threads 4 \
        > "$TDIR/plain.out"
    cmp "$TDIR/traced.out" "$TDIR/plain.out" || {
        echo "tier1: enabling telemetry changed the compiled module output" >&2; exit 1; }
    echo "tier1: telemetry exports valid, disabled-sink output identical"

    echo "== tier1: fuzz smoke (200 modules, clean pipeline, zero findings)"
    cargo run -q --release -p sxe-bench --bin fuzz -- --count 200 --threads 4 \
        --oracle-runs 8

    echo "== tier1: fuzz self-test (planted miscompile found, minimized, thread-independent)"
    cargo run -q --release -p sxe-bench --bin fuzz -- --count 8 --plant --oracle-runs 4 \
        --out "$TDIR/fuzz1" > "$TDIR/fuzz1.out"
    ls "$TDIR"/fuzz1/*.min.sxir > /dev/null 2>&1 || {
        echo "tier1: planted run produced no minimized reproducer" >&2; exit 1; }
    cargo run -q --release -p sxe-bench --bin fuzz -- --count 8 --plant --oracle-runs 4 \
        --threads 4 --out "$TDIR/fuzz4" > "$TDIR/fuzz4.out"
    diff -r "$TDIR/fuzz1" "$TDIR/fuzz4" || {
        echo "tier1: fuzz findings differ between --threads 1 and 4" >&2; exit 1; }
    sed -e 's/4 worker/1 worker/' -e 's|/fuzz4/|/fuzz1/|' "$TDIR/fuzz4.out" \
        | cmp - "$TDIR/fuzz1.out" || {
        echo "tier1: fuzz reports differ between --threads 1 and 4" >&2; exit 1; }
    echo "tier1: fuzz gate OK (clean smoke, self-test minimized, findings thread-independent)"

    echo "== tier1: serve gate (daemon warm pass, SIGKILL crash recovery, quarantine, overload shedding)"
    cargo run -q --release -p sxe-bench --bin stress -- --gate

    echo "== tier1: netchaos gate (fault campaign, 10k-frame protocol fuzz, slow-loris cutoff, crash-point sweep)"
    cargo run -q --release -p sxe-bench --bin netchaos -- --gate

    echo "== tier1: engine identity (decoded vs tree: outcome, trap kind, counters)"
    cargo test -q -p xelim-integration-tests --release --test vm_identity

    echo "== tier1: vmbench gate (decoded >= 3x tree aggregate throughput)"
    cargo run -q --release -p sxe-bench --bin vmbench -- --scale 0.25 --repeats 3 --gate 3

    echo "== tier1: native identity (native vs decoded: outcome, trap kind, counters, profiles)"
    cargo test -q -p xelim-integration-tests --release --test native_identity

    echo "== tier1: native differential fuzz (256 modules, decoded reference vs native execution)"
    cargo run -q --release -p sxe-bench --bin fuzz -- --count 256 --exec native --oracle-runs 8

    echo "== tier1: nativebench gate (native >= 2x decoded aggregate throughput, integer workloads)"
    cargo run -q --release -p sxe-bench --bin nativebench -- --scale 0.25 --repeats 3 --gate 2

    echo "== tier1: mips64 fuzz smoke (256 modules, canonical-form target, zero findings)"
    cargo run -q --release -p sxe-bench --bin fuzz -- --target mips64 --count 256 --threads 4 \
        --oracle-runs 8

    echo "== tier1: mips64 chaos sweep (64 modules, one contained fault each, zero findings)"
    cargo run -q --release -p sxe-bench --bin fuzz -- --target mips64 --count 64 --chaos \
        --threads 4 --oracle-runs 4

    # The engine-identity and native-identity suites above already run
    # every target in Target::ALL, so mips64 decoded-vs-tree identity and
    # the typed native refusal + decoded fallback are gated there.
fi

echo "== tier1: OK"
