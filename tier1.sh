#!/usr/bin/env sh
# Tier-1 gate: build, full test suite, lints on the robustness- and
# sharding-touched crates, the sharded-compile determinism check, and the
# fault-injection (chaos) smoke sweep.
#
#   ./tier1.sh            # everything
#   ./tier1.sh --fast     # skip the determinism check and chaos sweep
set -eu

cd "$(dirname "$0")"

echo "== tier1: cargo build --release"
cargo build --release

echo "== tier1: cargo test -q"
cargo test -q

echo "== tier1: clippy -D warnings (touched crates)"
cargo clippy -q -p sxe-ir -p sxe-analysis -p sxe-core -p sxe-opt -p sxe-vm \
    -p sxe-jit -p sxe-bench -p xelim-integration-tests --all-targets -- -D warnings

if [ "${1:-}" != "--fast" ]; then
    echo "== tier1: sharded determinism (threads 1 vs 4, 17 workloads)"
    cargo run -q --release -p sxe-bench --bin throughput -- --check --scale 0.05

    echo "== tier1: chaos smoke (17 workloads x 32 fault seeds, 4 workers)"
    cargo run -q --release -p sxe-bench --bin chaos -- --seeds 32 --scale 0.05 --threads 4
fi

echo "== tier1: OK"
