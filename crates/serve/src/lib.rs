//! `sxe-serve` — the fault-tolerant compile service.
//!
//! Long-lived build sessions recompile the same modules over and over;
//! this crate turns the sharded, fault-isolated pipeline of `sxe-jit`
//! into a daemon (`sxed`) that amortizes that work across processes and
//! survives the failures a one-shot CLI never sees:
//!
//! * [`proto`] — the length-prefixed frame protocol (compile / ping /
//!   stats / shutdown, typed refusals);
//! * [`store`] — the crash-safe persistent artifact cache: checksummed
//!   entries, atomic renames, quarantine-on-read. `kill -9` at any
//!   moment can cost a cache entry, never an incorrect response;
//! * [`server`] — admission control over a bounded queue, dispatch into
//!   the `shard::par_map` worker pool, graceful drain + index fsync on
//!   shutdown;
//! * [`client`] — a blocking client whose bounded retry backs off
//!   exponentially with deterministic, seeded jitter, guarded by an
//!   equally deterministic circuit breaker;
//! * [`netfault`] — seeded network-fault injection: an in-process
//!   fault proxy ([`NetFaultProxy`]) and a protocol-frame fuzzer, the
//!   wire-level mirror of `sxe-jit`'s `FaultPlan` discipline. The
//!   `netchaos` binary in `sxe-bench` drives both as a gate.
//!
//! The daemon inherits the workspace's determinism contract: a compile
//! response is byte-identical to a sequential `sxec` run of the same
//! request, at any `--threads`, whether it was served fresh or replayed
//! from the cache.

pub mod client;
pub mod netfault;
pub mod proto;
pub mod server;
pub mod store;

pub use client::{
    BreakerPolicy, BreakerState, CircuitBreaker, Client, ClientError, RetryPolicy, RetryStats,
};
pub use netfault::{fuzz_frame, FuzzDelivery, FuzzFrame, NetFaultKind, NetFaultPlan, NetFaultProxy};
pub use proto::{
    CacheOutcome, CompileRequest, CompiledArtifact, ProtoError, Refusal, RefusalReason, Request,
    Response,
};
pub use server::{parse_stats, stat_value, ServeConfig, Server};
pub use store::{crash_point_sweep, ArtifactStore, CrashSweepReport, StoreStats};

#[cfg(test)]
mod e2e {
    use super::*;
    use std::time::Duration;

    const SRC: &str = "\
func @main(i32) -> f64 {
b0:
    r1 = newarray.i32 r0
    r2 = const.i32 0
    br b1
b1:
    r3 = const.i32 1
    r0 = sub.i32 r0, r3
    r4 = aload.i32 r1, r0
    r2 = add.i32 r2, r4
    condbr gt.i32 r0, r3, b1, b2
b2:
    r5 = i32tof64.f64 r2
    ret r5
}
";

    fn tmp_cache(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("sxe-serve-e2e-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn start(tag: &str, config: ServeConfig) -> (Server, Client, std::path::PathBuf) {
        let dir = tmp_cache(tag);
        let config = ServeConfig { cache_dir: dir.clone(), ..config };
        let server = Server::start(0, config).unwrap();
        let client = Client::new(server.port());
        (server, client, dir)
    }

    #[test]
    fn compile_misses_then_hits_and_replays_identical_bytes() {
        let (server, client, dir) = start("hit", ServeConfig::default());
        client.ping().unwrap();
        let req = CompileRequest::new(SRC);
        let first = client.compile_once(&req).unwrap();
        let Response::Compiled(CacheOutcome::Miss, a1) = first else {
            panic!("expected fresh compile, got {first:?}")
        };
        assert_eq!(a1.incidents, 0);
        let second = client.compile_once(&req).unwrap();
        let Response::Compiled(CacheOutcome::Hit, a2) = second else {
            panic!("expected cache hit, got {second:?}")
        };
        assert_eq!(a1, a2, "replayed artifact must be byte-identical");
        let stats = client.stats().unwrap();
        assert_eq!(stat_value(&stats, "serve.cache.inserts"), Some(1));
        assert_eq!(stat_value(&stats, "serve.cache.hits"), Some(1));
        assert_eq!(client.shutdown().unwrap(), 0);
        server.wait();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_survives_a_daemon_restart() {
        let config = ServeConfig::default();
        let dir = tmp_cache("restart");
        let config = ServeConfig { cache_dir: dir.clone(), ..config };
        let req = CompileRequest::new(SRC);

        let server = Server::start(0, config.clone()).unwrap();
        let client = Client::new(server.port());
        let Response::Compiled(CacheOutcome::Miss, a1) = client.compile_once(&req).unwrap()
        else {
            panic!("expected miss on first run")
        };
        client.shutdown().unwrap();
        server.wait();

        let server = Server::start(0, config).unwrap();
        let client = Client::new(server.port());
        let Response::Compiled(outcome, a2) = client.compile_once(&req).unwrap() else {
            panic!("expected a compiled response")
        };
        assert_eq!(outcome, CacheOutcome::Hit, "second process must hit the first's cache");
        assert_eq!(a1, a2);
        client.shutdown().unwrap();
        server.wait();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_input_is_a_typed_error_not_a_refusal() {
        let (server, client, dir) = start("bad", ServeConfig::default());
        let resp = client.compile_once(&CompileRequest::new("this is not sxir")).unwrap();
        let Response::Error(msg) = resp else { panic!("expected error, got {resp:?}") };
        assert!(msg.contains("parse error"), "{msg}");
        client.shutdown().unwrap();
        server.wait();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overload_yields_typed_refusals_and_retry_succeeds() {
        // One worker, one queue slot, and slowed cache writes: while the
        // first compile lingers in its write, the second fills the queue
        // and the third must be refused with a retry hint.
        let (server, client, dir) = start(
            "overload",
            ServeConfig {
                threads: 1,
                queue_capacity: 1,
                write_delay: Some(Duration::from_millis(300)),
                retry_after: Duration::from_millis(10),
                ..ServeConfig::default()
            },
        );
        let reqs: Vec<CompileRequest> = (0..6)
            .map(|i| CompileRequest::new(SRC.replace("@main", &format!("@main{i}"))))
            .collect();
        let results: Vec<_> = std::thread::scope(|s| {
            let client = &client;
            let handles: Vec<_> = reqs
                .iter()
                .map(|r| s.spawn(move || client.compile_once(r).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let refused = results
            .iter()
            .filter(|r| matches!(r, Response::Refused(_)))
            .count();
        assert!(refused > 0, "six parallel compiles against one slot must shed load");
        for r in &results {
            if let Response::Refused(refusal) = r {
                assert_eq!(refusal.retry_after_ms, 10);
            }
        }
        // A retrying client gets through once the burst clears.
        let mut rng = sxe_ir::rng::XorShift::new(7);
        let (_, artifact, stats) = client
            .compile_with_retry(&reqs[5], &RetryPolicy::default(), &mut rng)
            .unwrap();
        assert!(stats.attempts >= 1);
        assert!(!artifact.text.is_empty());
        client.shutdown().unwrap();
        server.wait();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_drains_in_flight_work() {
        let (server, client, dir) = start(
            "drain",
            ServeConfig {
                threads: 2,
                write_delay: Some(Duration::from_millis(150)),
                ..ServeConfig::default()
            },
        );
        let reqs: Vec<CompileRequest> = (0..3)
            .map(|i| CompileRequest::new(SRC.replace("@main", &format!("@f{i}"))))
            .collect();
        let (drained, compiles) = std::thread::scope(|s| {
            let client = &client;
            let compiles: Vec<_> = reqs
                .iter()
                .map(|r| s.spawn(move || client.compile_once(r).unwrap()))
                .collect();
            // Let the compiles enter the queue before asking to stop.
            std::thread::sleep(Duration::from_millis(50));
            let drained = client.shutdown().unwrap();
            (drained, compiles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>())
        });
        let answered = compiles
            .iter()
            .filter(|r| matches!(r, Response::Compiled(..)))
            .count();
        assert_eq!(answered, 3, "every admitted request is answered, not dropped: {compiles:?}");
        assert!(drained > 0, "shutdown overlapped in-flight work");
        // After the ack the daemon refuses (or has closed); either way no hang.
        server.wait();
        let late = client.compile_once(&reqs[0]);
        assert!(
            !matches!(late, Ok(Response::Compiled(..))),
            "daemon must not serve after shutdown"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
