//! The `sxed` daemon: admission control, worker-pool dispatch, and
//! graceful drain around the persistent [`ArtifactStore`].
//!
//! Threading model:
//!
//! * an **accept loop** polls a non-blocking TCP listener (loopback
//!   only) and spawns one handler thread per connection, each with
//!   socket read/write timeouts so a stalled peer cannot pin a thread
//!   forever;
//! * handlers perform **admission control** inline: a compile request
//!   either enters the bounded queue or is answered immediately with a
//!   typed [`Refusal`] carrying a `retry_after_ms` hint — the daemon
//!   sheds load, it never hangs or aborts;
//! * a single **dispatcher** drains the queue in batches into
//!   [`sxe_jit::shard::par_map`] — the same fixed-size fork/join pool
//!   the sharded compiler uses — and each worker sends its response
//!   directly to the waiting handler the moment it is done (no batch
//!   barrier on the reply path). Workers compile with `threads(1)`,
//!   so every response is byte-identical to a sequential `sxec` run
//!   regardless of the pool size;
//! * **graceful shutdown** ([`Request::Shutdown`]) stops admitting,
//!   drains every queued and in-flight request, persists and fsyncs
//!   the cache index, then acks with the number of requests drained.
//!
//! Every compile resolves against the [`ArtifactStore`] keyed by
//! [`artifact_key`](sxe_jit::artifact::artifact_key_for); only clean
//! compilations (no incidents, no budget
//! exhaustion, no fault plan) are cached — see
//! [`sxe_jit::artifact`] for the soundness argument.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sxe_ir::parse_module;
use sxe_jit::artifact::artifact_key_for;
use sxe_jit::{shard, Compiler};
use sxe_telemetry::Telemetry;

use crate::proto::{
    read_frame, CacheOutcome, CompileRequest, CompiledArtifact, Refusal, RefusalReason, Request,
    Response,
};
use crate::store::ArtifactStore;

/// Daemon configuration. `Default` gives production-ish settings; the
/// gates tighten `queue_capacity` / `write_delay` to force the edges.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory of the persistent artifact cache.
    pub cache_dir: PathBuf,
    /// Worker threads for the compile pool (also the dispatch batch
    /// width). Responses are byte-identical at any value.
    pub threads: usize,
    /// Bounded admission queue: compile requests beyond this many
    /// *waiting* (not yet dispatched) are refused.
    pub queue_capacity: usize,
    /// Default per-request fuel budget when the request names none.
    pub default_fuel: Option<u64>,
    /// Default per-request wall-clock budget when the request names none.
    pub default_time_limit: Option<Duration>,
    /// Socket read/write timeout per connection; a peer that stalls
    /// longer is disconnected.
    pub io_timeout: Duration,
    /// Once the first byte of a frame has arrived, the whole frame must
    /// arrive within this long (slow-loris defense): a peer dripping a
    /// frame one byte at a time is answered with a typed error and
    /// disconnected instead of pinning a handler for `io_timeout` per
    /// byte. Waiting *between* frames still uses `io_timeout`.
    pub frame_deadline: Duration,
    /// Connection cap: beyond this many live handler threads, a new
    /// connection is answered immediately with a typed
    /// `connection-limit` refusal (carrying the retry hint) and closed
    /// — bounded threads, never an unexplained hang. `0` disables the
    /// cap.
    pub max_connections: usize,
    /// Backoff hint attached to refusals.
    pub retry_after: Duration,
    /// Test hook: widen the cache-write crash window (see
    /// [`ArtifactStore::open`]). `None` in production.
    pub write_delay: Option<Duration>,
    /// Test hook: panic the compile worker when the request's module
    /// contains a function with this name — proves a job panic is
    /// contained to a typed error without killing the worker pool.
    /// `None` in production.
    pub compile_panic_on: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache_dir: PathBuf::from("sxed-cache"),
            threads: 4,
            queue_capacity: 64,
            default_fuel: None,
            default_time_limit: None,
            io_timeout: Duration::from_secs(10),
            frame_deadline: Duration::from_secs(2),
            max_connections: 256,
            retry_after: Duration::from_millis(25),
            write_delay: None,
            compile_panic_on: None,
        }
    }
}

struct Job {
    req: CompileRequest,
    reply: mpsc::Sender<Response>,
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<Job>,
    in_flight: usize,
}

struct Shared {
    config: ServeConfig,
    queue: Mutex<QueueState>,
    cond: Condvar,
    store: Mutex<ArtifactStore>,
    tel: Telemetry,
    /// No new compile admissions; drain has begun.
    shutting_down: AtomicBool,
    /// Drain complete and index persisted; accept loop and dispatcher
    /// may exit.
    done: AtomicBool,
    active_conns: AtomicU64,
}

/// A running daemon. Dropping the handle does not stop it; send
/// [`Request::Shutdown`] (e.g. via [`Client::shutdown`]) and then
/// [`wait`](Server::wait).
///
/// [`Client::shutdown`]: crate::client::Client::shutdown
pub struct Server {
    shared: Arc<Shared>,
    port: u16,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind a loopback TCP listener on `port` (`0` picks an ephemeral
    /// port — read it back with [`port`](Server::port)), open the
    /// artifact cache, and start serving.
    ///
    /// # Errors
    /// I/O errors binding the socket or opening the cache directory.
    pub fn start(port: u16, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let store = ArtifactStore::open(&config.cache_dir, config.write_delay)?;
        let tel = Telemetry::enabled();
        tel.metrics(|m| {
            m.add("serve.cache.recovered_entries", store.len() as u64);
            m.add("serve.cache.swept_tmp", store.stats().swept_tmp);
            // Seed every counter at zero so a stats snapshot always
            // carries the full schema, even before the first event.
            for name in [
                "serve.requests",
                "serve.compiles",
                "serve.refused.queue_full",
                "serve.refused.shutting_down",
                "serve.net.conn_refused",
                "serve.net.frame_deadline_hits",
                "serve.net.malformed_frames",
                "serve.net.proto_errors",
                "serve.worker.panics",
            ] {
                m.add(name, 0);
            }
        });
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            store: Mutex::new(store),
            tel,
            shutting_down: AtomicBool::new(false),
            done: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatch_loop(&shared))
        };
        Ok(Server { shared, port, accept: Some(accept), dispatcher: Some(dispatcher) })
    }

    /// The bound TCP port (loopback).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The daemon's telemetry handle (live counters and histograms).
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        self.shared.tel.clone()
    }

    /// Block until the daemon has shut down (a client sent
    /// [`Request::Shutdown`] and the drain finished), then reap the
    /// service threads and linger briefly for handler threads to flush
    /// their final frames.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.done.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let cap = shared.config.max_connections as u64;
                if cap > 0 && shared.active_conns.load(Ordering::Acquire) >= cap {
                    shared.tel.metrics(|m| m.add("serve.net.conn_refused", 1));
                    let shared = Arc::clone(shared);
                    std::thread::spawn(move || refuse_conn(stream, &shared));
                    continue;
                }
                shared.active_conns.fetch_add(1, Ordering::AcqRel);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    handle_conn(stream, &shared);
                    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Answer an over-cap connection with a typed `connection-limit`
/// refusal. The peer's request frame is drained first (bounded by a
/// short timeout) so the close never resets the refusal out of the
/// peer's receive buffer; the whole exchange is bounded, so a
/// connection flood costs short-lived threads, not hung clients.
fn refuse_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    let timeout = shared.config.io_timeout.min(Duration::from_secs(2));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let _ = read_frame(&mut stream);
    let _ = Response::Refused(Refusal {
        retry_after_ms: shared.config.retry_after.as_millis() as u64,
        reason: RefusalReason::ConnectionLimit,
    })
    .write_to(&mut stream);
}

/// Socket reader enforcing the two-phase read discipline of one frame:
/// waiting for a frame to *start* uses the long idle `io_timeout`, but
/// once its first byte has arrived the rest must follow within
/// `frame_deadline` — a slow-loris peer dripping one byte per
/// near-timeout read is cut off at the deadline, not after
/// `frames × io_timeout`.
struct FrameReader<'a> {
    stream: &'a TcpStream,
    idle_timeout: Duration,
    frame_deadline: Duration,
    started: Option<Instant>,
    deadline_hit: bool,
}

impl<'a> FrameReader<'a> {
    fn new(stream: &'a TcpStream, idle_timeout: Duration, frame_deadline: Duration) -> Self {
        let _ = stream.set_read_timeout(Some(idle_timeout));
        FrameReader { stream, idle_timeout, frame_deadline, started: None, deadline_hit: false }
    }
}

impl io::Read for FrameReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut stream = self.stream;
        let Some(t0) = self.started else {
            let n = stream.read(buf)?;
            if n > 0 {
                self.started = Some(Instant::now());
            }
            return Ok(n);
        };
        let elapsed = t0.elapsed();
        if elapsed >= self.frame_deadline {
            self.deadline_hit = true;
            return Err(io::Error::new(io::ErrorKind::TimedOut, "frame deadline exceeded"));
        }
        let remaining = (self.frame_deadline - elapsed).max(Duration::from_millis(1));
        let _ = self.stream.set_read_timeout(Some(remaining.min(self.idle_timeout)));
        match stream.read(buf) {
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
                    && t0.elapsed() >= self.frame_deadline =>
            {
                self.deadline_hit = true;
                Err(io::Error::new(io::ErrorKind::TimedOut, "frame deadline exceeded"))
            }
            other => other,
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let mut reader =
            FrameReader::new(&stream, shared.config.io_timeout, shared.config.frame_deadline);
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean EOF at a frame boundary
            Err(e) if reader.deadline_hit => {
                // Slow loris: the frame started but never finished.
                // Typed answer, then hang up.
                shared.tel.metrics(|m| m.add("serve.net.frame_deadline_hits", 1));
                let _ = Response::Error(format!("request dropped: {e}")).write_to(&mut stream);
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed frame (oversize/zero length, truncated
                // mid-frame): the stream offset is unrecoverable, so
                // answer typed and close.
                shared.tel.metrics(|m| m.add("serve.net.malformed_frames", 1));
                let _ = Response::Error(format!("bad frame: {e}")).write_to(&mut stream);
                return;
            }
            Err(_) => return, // idle timeout or broken peer: drop the connection
        };
        let request = match Request::decode(frame.0, &frame.1) {
            Ok(r) => r,
            Err(e) => {
                // The frame itself was well-formed, so the stream is
                // still in sync: answer typed and keep serving.
                shared.tel.metrics(|m| m.add("serve.net.proto_errors", 1));
                let _ = Response::Error(e.to_string()).write_to(&mut stream);
                continue;
            }
        };
        shared.tel.metrics(|m| m.add("serve.requests", 1));
        let stop = matches!(request, Request::Shutdown);
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(render_stats_shared(shared)),
            Request::Compile(req) => handle_compile(shared, req),
            Request::Shutdown => handle_shutdown(shared),
        };
        if response.write_to(&mut stream).is_err() || stop {
            return;
        }
    }
}

/// Admission control + dispatch for one compile request. Returns a
/// typed [`Refusal`] instead of queueing when the daemon is draining or
/// the bounded queue is full; otherwise blocks until a worker answers.
fn handle_compile(shared: &Arc<Shared>, req: CompileRequest) -> Response {
    let started = Instant::now();
    let refusal = |reason: RefusalReason| {
        let name = match reason {
            RefusalReason::QueueFull => "serve.refused.queue_full",
            RefusalReason::ShuttingDown => "serve.refused.shutting_down",
            RefusalReason::ConnectionLimit => "serve.net.conn_refused",
        };
        shared.tel.metrics(|m| m.add(name, 1));
        Response::Refused(Refusal {
            retry_after_ms: shared.config.retry_after.as_millis() as u64,
            reason,
        })
    };
    if shared.shutting_down.load(Ordering::Acquire) {
        return refusal(RefusalReason::ShuttingDown);
    }
    let (tx, rx) = mpsc::channel();
    {
        let mut q = lock_ok(&shared.queue);
        // Re-check under the lock so no admission races a shutdown drain.
        if shared.shutting_down.load(Ordering::Acquire) {
            return refusal(RefusalReason::ShuttingDown);
        }
        if q.pending.len() >= shared.config.queue_capacity {
            return refusal(RefusalReason::QueueFull);
        }
        q.pending.push_back(Job { req, reply: tx });
        let depth = q.pending.len();
        shared.tel.metrics(|m| m.set_gauge("serve.queue.depth", depth as f64));
        shared.cond.notify_all();
    }
    let response = rx
        .recv()
        .unwrap_or_else(|_| Response::Error("daemon dropped the request".into()));
    shared.tel.metrics(|m| {
        m.observe("serve.latency_ns", started.elapsed().as_nanos() as u64);
    });
    response
}

/// Begin the graceful drain, block until every queued and in-flight
/// request has been answered, persist the cache index, and release the
/// service threads.
fn handle_shutdown(shared: &Arc<Shared>) -> Response {
    let already = shared.shutting_down.swap(true, Ordering::AcqRel);
    let mut q = lock_ok(&shared.queue);
    let drained = (q.pending.len() + q.in_flight) as u64;
    shared.cond.notify_all();
    while !q.pending.is_empty() || q.in_flight > 0 {
        q = shared.cond.wait(q).unwrap_or_else(|e| e.into_inner());
    }
    drop(q);
    if !already {
        let store = lock_ok(&shared.store);
        if let Err(e) = store.persist_index() {
            shared.tel.metrics(|m| m.add("serve.index_persist_errors", 1));
            eprintln!("sxed: failed to persist cache index: {e}");
        }
    }
    shared.done.store(true, Ordering::Release);
    shared.cond.notify_all();
    Response::ShutdownAck { drained }
}

/// The dispatcher: pull batches off the admission queue and run them
/// through the shared fork/join pool. Each worker replies to its own
/// handler as soon as its job finishes — batching bounds concurrency,
/// not latency.
fn dispatch_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Job> = {
            let mut q = lock_ok(&shared.queue);
            while q.pending.is_empty() {
                if shared.done.load(Ordering::Acquire)
                    || (shared.shutting_down.load(Ordering::Acquire) && q.in_flight == 0)
                {
                    return;
                }
                let (guard, _) = shared
                    .cond
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            let batch: Vec<Job> = q.pending.drain(..).collect();
            q.in_flight += batch.len();
            shared.tel.metrics(|m| m.set_gauge("serve.queue.depth", 0.0));
            batch
        };
        let n = batch.len();
        shard::par_map(&batch, shared.config.threads, |_, job| {
            // A panicking compile job must not take the dispatcher (and
            // with it the whole daemon) down: contain it to a typed
            // error for this one requester and keep the pool serving.
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                compile_one(shared, &job.req)
            }))
            .unwrap_or_else(|payload| {
                shared.tel.metrics(|m| m.add("serve.worker.panics", 1));
                Response::Error(format!(
                    "internal error: compile worker panicked: {}",
                    panic_message(payload.as_ref())
                ))
            });
            // The handler may have died with its connection; the queue
            // already counted the job, so a send failure is just a
            // wasted compile.
            let _ = job.reply.send(response);
        });
        let mut q = lock_ok(&shared.queue);
        q.in_flight -= n;
        shared.cond.notify_all();
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Lock a mutex even if a previous holder panicked: compile-worker
/// panics are contained ([`dispatch_loop`]), and none of the guarded
/// structures are left mid-update by compiler code, so the data is
/// still coherent — refusing to serve after one contained panic would
/// turn an isolated failure into a full outage.
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Compile (or replay) one request. Cache policy: look up by
/// [`artifact_key_for`] (which folds in the requested backend); on a
/// miss compile with the request's budget and
/// only insert when the report is clean — a salvaged partial
/// optimization is served to its requester but never cached.
fn compile_one(shared: &Arc<Shared>, req: &CompileRequest) -> Response {
    let module = match parse_module(&req.source) {
        Ok(m) => m,
        Err(e) => return Response::Error(format!("parse error: {e}")),
    };
    if let Some(name) = &shared.config.compile_panic_on {
        if module.iter().any(|(_, f)| f.name == *name) {
            panic!("injected compile panic: function {name:?}");
        }
    }
    let compiler = Compiler::builder(req.variant).target(req.target).build();
    let key = artifact_key_for(&compiler, req.backend, &module);
    {
        let mut store = lock_ok(&shared.store);
        let cached = store.get(key);
        let quarantined = store.stats().quarantined;
        drop(store);
        shared.tel.metrics(|m| {
            let prev = m.counter("serve.cache.quarantined");
            if quarantined > prev {
                m.add("serve.cache.quarantined", quarantined - prev);
            }
        });
        if let Some(bytes) = cached {
            // Entries are checksummed, so this parse cannot fail for a
            // served payload; fall through to a recompile if it somehow
            // does rather than trusting the cache over the compiler.
            if let Ok(artifact) = CompiledArtifact::from_bytes(&bytes) {
                shared.tel.metrics(|m| m.add("serve.cache.hits", 1));
                return Response::Compiled(CacheOutcome::Hit, artifact);
            }
        }
        shared.tel.metrics(|m| m.add("serve.cache.misses", 1));
    }
    let fuel = req.fuel.or(shared.config.default_fuel);
    let time_limit = match req.timeout_ms {
        Some(0) => None,
        Some(ms) => Some(Duration::from_millis(ms)),
        None => shared.config.default_time_limit,
    };
    // threads(1): workers are already parallel across requests, and the
    // sequential path guarantees the response bytes are independent of
    // the pool size.
    let compiler = compiler.with_budget(fuel, time_limit).with_threads(1);
    let compiled = match compiler.try_compile(&module) {
        Ok(c) => c,
        Err(e) => return Response::Error(format!("compile refused: {e}")),
    };
    shared.tel.metrics(|m| m.add("serve.compiles", 1));
    let artifact = CompiledArtifact {
        key,
        boundaries: compiled.report.boundaries() as u64,
        incidents: compiled.report.incidents() as u64,
        budget_exhausted: compiled.report.budget_exhausted,
        eliminated: compiled.stats.eliminated as u64,
        text: compiled.module.to_string(),
    };
    if compiled.report.clean() {
        let mut store = lock_ok(&shared.store);
        if store.insert(key, &artifact.to_bytes()) {
            shared.tel.metrics(|m| m.add("serve.cache.inserts", 1));
        } else {
            shared.tel.metrics(|m| m.add("serve.cache.write_errors", 1));
        }
    }
    Response::Compiled(CacheOutcome::Miss, artifact)
}

/// Render the `serve.*` stats snapshot as deterministic plain-text
/// `name value` lines (cache state from the store, the rest from the
/// telemetry registry).
#[must_use]
pub fn render_stats(shared_store: &Mutex<ArtifactStore>, tel: &Telemetry, queue_depth: usize) -> String {
    let (len, stats) = {
        let store = lock_ok(shared_store);
        (store.len(), store.stats())
    };
    let reg = tel.metrics_snapshot();
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "serve.cache.entries {len}");
    let _ = writeln!(out, "serve.cache.hits {}", stats.hits);
    let _ = writeln!(out, "serve.cache.misses {}", stats.misses);
    let _ = writeln!(out, "serve.cache.inserts {}", stats.inserts);
    let _ = writeln!(out, "serve.cache.quarantined {}", stats.quarantined);
    let _ = writeln!(out, "serve.cache.swept_tmp {}", stats.swept_tmp);
    let _ = writeln!(out, "serve.cache.write_errors {}", stats.write_errors);
    let _ = writeln!(out, "serve.queue.depth {queue_depth}");
    // Every other `serve.*` counter, in registry (sorted) order: new
    // counters show up here without touching the renderer, and old
    // clients skip the names they don't know (see [`parse_stats`]).
    // Cache counters are excluded — the store's own stats above are
    // authoritative for those.
    for (name, value) in reg.counters_with_prefix("serve.") {
        if !name.starts_with("serve.cache.") {
            let _ = writeln!(out, "{name} {value}");
        }
    }
    let p99 = reg.histogram("serve.latency_ns").map_or(0, |h| h.quantile(0.99));
    let _ = writeln!(out, "serve.latency.p99_ns {p99}");
    out
}

fn render_stats_shared(shared: &Arc<Shared>) -> String {
    let depth = lock_ok(&shared.queue).pending.len();
    render_stats(&shared.store, &shared.tel, depth)
}

/// Parse a [`render_stats`] snapshot into `(name, value)` pairs.
///
/// Forward-compatible by construction: lines that don't fit the
/// `name value` shape — or whose value isn't a `u64` — are skipped, not
/// errors, so a client built against an older daemon keeps working when
/// a newer one grows counters (or line formats) it has never heard of.
#[must_use]
pub fn parse_stats(stats_text: &str) -> Vec<(&str, u64)> {
    stats_text
        .lines()
        .filter_map(|line| {
            let (k, v) = line.split_once(' ')?;
            Some((k, v.trim().parse().ok()?))
        })
        .collect()
}

/// Parse one value back out of a [`render_stats`] snapshot. Unknown or
/// malformed lines are skipped (see [`parse_stats`]).
#[must_use]
pub fn stat_value(stats_text: &str, name: &str) -> Option<u64> {
    parse_stats(stats_text).into_iter().find_map(|(k, v)| (k == name).then_some(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_value_parses_rendered_lines() {
        let text = "serve.cache.hits 12\nserve.latency.p99_ns 4096\n";
        assert_eq!(stat_value(text, "serve.cache.hits"), Some(12));
        assert_eq!(stat_value(text, "serve.latency.p99_ns"), Some(4096));
        assert_eq!(stat_value(text, "serve.cache.misses"), None);
    }

    #[test]
    fn stat_value_skips_unknown_and_malformed_lines() {
        // A future daemon may emit counters (or whole line shapes) this
        // client has never heard of; none of them may break parsing of
        // the lines it does know.
        let text = "serve.cache.hits 12\n\
                    serve.future.exotic_counter 7\n\
                    serve.malformed not-a-number\n\
                    no-space-line\n\
                    serve.latency.p99_ns 4096\n";
        assert_eq!(stat_value(text, "serve.cache.hits"), Some(12));
        assert_eq!(stat_value(text, "serve.latency.p99_ns"), Some(4096));
        assert_eq!(stat_value(text, "serve.future.exotic_counter"), Some(7));
        assert_eq!(stat_value(text, "serve.malformed"), None);
        let parsed = parse_stats(text);
        assert_eq!(parsed.len(), 3);
        assert!(parsed.iter().all(|(k, _)| *k != "serve.malformed"));
    }

    #[test]
    fn stats_round_trip_survives_injected_unknown_line() {
        // Round-trip: render a snapshot, inject an unknown counter line
        // in the middle (as a newer daemon would), and confirm every
        // known value still reads back unchanged.
        let tel = Telemetry::enabled();
        tel.metrics(|m| {
            m.add("serve.requests", 3);
            m.add("serve.net.malformed_frames", 2);
        });
        let dir = std::env::temp_dir().join(format!("sxed-statrt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Mutex::new(ArtifactStore::open(&dir, None).unwrap());
        let rendered = render_stats(&store, &tel, 5);
        let mut lines: Vec<&str> = rendered.lines().collect();
        lines.insert(lines.len() / 2, "serve.v99.new_hotness 1234");
        let injected = lines.join("\n");
        for (name, value) in parse_stats(&rendered) {
            assert_eq!(stat_value(&injected, name), Some(value), "lost {name} after injection");
        }
        assert_eq!(stat_value(&injected, "serve.v99.new_hotness"), Some(1234));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
