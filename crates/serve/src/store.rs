//! The crash-safe persistent artifact cache behind `sxed`.
//!
//! One artifact per file, under one cache directory:
//!
//! ```text
//! <dir>/<key:016x>.art      committed entries (self-validating)
//! <dir>/.tmp-<key>-<pid>    in-progress writes (never read)
//! <dir>/quarantine/         entries that failed validation on read
//! <dir>/index.txt           fsynced key listing (durability barrier)
//! ```
//!
//! Every entry file carries its own header — magic, key, payload
//! length, FNV-1a checksum — followed by the payload bytes, so a file
//! is either *provably complete* or it is not served:
//!
//! * **writes are atomic** — the payload is written to a `.tmp-` file,
//!   `fsync`ed, then `rename`d into place. A `kill -9` at any point
//!   leaves either the old state or the new state, never a torn entry
//!   under the committed name; leftover temp files are swept (and
//!   counted) on the next open.
//! * **reads are validating** — magic, key, length, and checksum are
//!   re-checked on every read. A corrupt or truncated entry (e.g. a
//!   partially flushed page that survived a crash, or outside
//!   tampering) is moved into `quarantine/` and counted in
//!   [`StoreStats::quarantined`]; the caller sees a plain miss and
//!   recompiles, so a damaged cache can degrade performance but never
//!   correctness.
//! * **the index is a barrier, not the truth** — the committed files
//!   are the source of truth (the store rescans them on open);
//!   [`ArtifactStore::persist_index`], called by graceful shutdown,
//!   atomically rewrites `index.txt` and `fsync`s the directory so
//!   every rename performed this run is durable before the process
//!   exits.

use std::collections::HashSet;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

const MAGIC: &[u8] = b"SXEART1\n";

/// Effectiveness and robustness counters, surfaced as the
/// `serve.cache.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from a validated entry.
    pub hits: u64,
    /// Lookups with no (valid) entry.
    pub misses: u64,
    /// Entries committed.
    pub inserts: u64,
    /// Entries that failed validation on read and were quarantined.
    pub quarantined: u64,
    /// Leftover temp files swept on open (crash debris).
    pub swept_tmp: u64,
    /// Failed insert attempts (I/O errors; the entry is simply absent).
    pub write_errors: u64,
}

/// The on-disk artifact cache. Not internally synchronized — `sxed`
/// wraps it in a mutex shared by the worker pool.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    keys: HashSet<u64>,
    write_delay: Option<Duration>,
    stats: StoreStats,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn entry_name(key: u64) -> String {
    format!("{key:016x}.art")
}

impl ArtifactStore {
    /// Open (creating if needed) the cache at `dir`: sweep crash debris,
    /// rebuild the key index from the committed files.
    ///
    /// `write_delay` widens the in-progress-write window by sleeping
    /// between the two halves of every entry write — a test hook that
    /// makes "`kill -9` mid-write" reliably reproducible; pass `None`
    /// in production.
    ///
    /// # Errors
    /// I/O errors creating or scanning the directory.
    pub fn open(dir: impl Into<PathBuf>, write_delay: Option<Duration>) -> io::Result<ArtifactStore> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("quarantine"))?;
        let mut store =
            ArtifactStore { dir, keys: HashSet::new(), write_delay, stats: StoreStats::default() };
        for entry in fs::read_dir(&store.dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(".tmp-") {
                // An insert was killed mid-write; the commit never
                // happened, so the debris is meaningless.
                fs::remove_file(entry.path())?;
                store.stats.swept_tmp += 1;
            } else if let Some(stem) = name.strip_suffix(".art") {
                if let Ok(key) = u64::from_str_radix(stem, 16) {
                    store.keys.insert(key);
                }
            }
        }
        Ok(store)
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of committed entries currently believed valid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store has no committed entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Look up `key`. A committed entry is re-validated (magic, key,
    /// length, checksum); on any mismatch it is quarantined and the
    /// lookup is a miss — a corrupt cache can never produce a wrong
    /// payload, only a recompile.
    pub fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        if !self.keys.contains(&key) {
            self.stats.misses += 1;
            return None;
        }
        let path = self.dir.join(entry_name(key));
        match read_entry(&path, key) {
            Ok(payload) => {
                self.stats.hits += 1;
                Some(payload)
            }
            Err(_) => {
                self.quarantine(&path);
                self.keys.remove(&key);
                self.stats.quarantined += 1;
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Commit `payload` under `key`: write to a temp file, `fsync`,
    /// rename into place. Failures are counted and swallowed into the
    /// return value — a cache that cannot write degrades to a compiler,
    /// it does not take the service down.
    pub fn insert(&mut self, key: u64, payload: &[u8]) -> bool {
        match self.try_insert(key, payload) {
            Ok(()) => {
                self.keys.insert(key);
                self.stats.inserts += 1;
                true
            }
            Err(_) => {
                self.stats.write_errors += 1;
                false
            }
        }
    }

    fn try_insert(&self, key: u64, payload: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!(".tmp-{:016x}-{}", key, std::process::id()));
        let final_path = self.dir.join(entry_name(key));
        let bytes = encode_entry(key, payload);
        let write = || -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            match self.write_delay {
                None => f.write_all(&bytes)?,
                Some(delay) => {
                    // Crash-window hook: land the first half on disk,
                    // linger, then finish — a SIGKILL inside the window
                    // leaves a torn temp file that must never be served.
                    let mid = bytes.len() / 2;
                    f.write_all(&bytes[..mid])?;
                    f.sync_all()?;
                    std::thread::sleep(delay);
                    f.write_all(&bytes[mid..])?;
                }
            }
            f.sync_all()?;
            fs::rename(&tmp, &final_path)
        };
        let result = write();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Atomically rewrite `index.txt` with the committed keys and
    /// `fsync` both it and the cache directory — the graceful-shutdown
    /// durability barrier: after this returns, every rename performed
    /// by this process is on disk.
    ///
    /// # Errors
    /// I/O errors writing or syncing.
    pub fn persist_index(&self) -> io::Result<()> {
        let mut keys: Vec<u64> = self.keys.iter().copied().collect();
        keys.sort_unstable();
        let mut text = String::from("sxed-index/1\n");
        for k in keys {
            text.push_str(&format!("{k:016x}\n"));
        }
        let tmp = self.dir.join(".tmp-index");
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, self.dir.join("index.txt"))?;
        File::open(&self.dir)?.sync_all()
    }

    fn quarantine(&self, path: &Path) {
        let dest = self
            .dir
            .join("quarantine")
            .join(path.file_name().unwrap_or_else(|| "corrupt".as_ref()));
        let _ = fs::remove_file(&dest);
        if fs::rename(path, &dest).is_err() {
            // Renames only fail across filesystems here; fall back to
            // deletion so the corrupt entry cannot be served next run.
            let _ = fs::remove_file(path);
        }
    }
}

/// The exact on-disk bytes of one committed entry: header (magic, key,
/// length, checksum) followed by the payload. Shared by the insert path
/// and the crash-point sweep, so the sweep truncates precisely what a
/// real write would have produced.
fn encode_entry(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + 64);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(format!("key={key:016x}\n").as_bytes());
    bytes.extend_from_slice(format!("len={}\n", payload.len()).as_bytes());
    bytes.extend_from_slice(format!("fnv={:016x}\n", fnv1a(payload)).as_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// What [`crash_point_sweep`] proved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashSweepReport {
    /// Crash points simulated (every byte boundary, both write phases).
    pub boundaries: u64,
    /// Crash points that recovered to a clean miss (temp debris swept,
    /// or a torn committed file quarantined).
    pub recovered_misses: u64,
    /// Crash points at which the entry was complete and replayed
    /// byte-identically.
    pub intact_hits: u64,
}

/// Deterministic crash-point sweep of one artifact write: simulate a
/// `kill -9` at **every byte boundary** of the entry write — both while
/// the `.tmp-` file is being written (the commit rename never happened)
/// and with the committed file torn at that byte (a partially flushed
/// page that survived a crash) — and prove that [`ArtifactStore::open`]
/// followed by a lookup of `key` recovers every time: the entry is
/// either fully present with exactly `payload`, or a clean quarantined/
/// swept miss. Never a wrong artifact, never an error, never a hang.
///
/// This subsumes, deterministically, what the timing-based
/// `--write-delay-ms` + SIGKILL stress gate can only sample.
///
/// `dir` is scratch space: it is recreated from empty for every crash
/// point and left removed on success.
///
/// # Errors
/// A description of the first crash point that violated the contract,
/// or of an underlying I/O failure.
pub fn crash_point_sweep(
    dir: &Path,
    key: u64,
    payload: &[u8],
) -> Result<CrashSweepReport, String> {
    let entry = encode_entry(key, payload);
    let mut report = CrashSweepReport::default();
    let reset = |cut: usize| -> Result<(), String> {
        if dir.exists() {
            fs::remove_dir_all(dir).map_err(|e| format!("crash point {cut}: reset: {e}"))?;
        }
        fs::create_dir_all(dir).map_err(|e| format!("crash point {cut}: mkdir: {e}"))
    };

    // Phase 1: killed while the .tmp- file was being written. The
    // rename never happened, so open must sweep the debris and the
    // lookup must be a plain miss — at every prefix length.
    for cut in 0..=entry.len() {
        reset(cut)?;
        fs::write(dir.join(format!(".tmp-{key:016x}-0")), &entry[..cut])
            .map_err(|e| format!("tmp crash point {cut}: write: {e}"))?;
        let mut store = ArtifactStore::open(dir, None)
            .map_err(|e| format!("tmp crash point {cut}: open must recover, got: {e}"))?;
        if store.stats().swept_tmp != 1 {
            return Err(format!("tmp crash point {cut}: debris was not swept"));
        }
        if let Some(wrong) = store.get(key) {
            return Err(format!(
                "tmp crash point {cut}: an uncommitted write was served ({} bytes)",
                wrong.len()
            ));
        }
        report.boundaries += 1;
        report.recovered_misses += 1;
    }

    // Phase 2: the committed file itself torn at every byte boundary.
    // Only the full length may be served, and then byte-identically;
    // every shorter prefix must be quarantined into a clean miss.
    for cut in 0..=entry.len() {
        reset(cut)?;
        fs::write(dir.join(entry_name(key)), &entry[..cut])
            .map_err(|e| format!("torn crash point {cut}: write: {e}"))?;
        let mut store = ArtifactStore::open(dir, None)
            .map_err(|e| format!("torn crash point {cut}: open must recover, got: {e}"))?;
        report.boundaries += 1;
        match store.get(key) {
            Some(served) if served == payload => {
                if cut != entry.len() {
                    return Err(format!(
                        "torn crash point {cut}: a {cut}-byte prefix of a {}-byte entry \
                         validated as complete",
                        entry.len()
                    ));
                }
                report.intact_hits += 1;
            }
            Some(served) => {
                return Err(format!(
                    "torn crash point {cut}: WRONG ARTIFACT served ({} bytes, wanted {})",
                    served.len(),
                    payload.len()
                ));
            }
            None => {
                if cut == entry.len() {
                    return Err(format!(
                        "torn crash point {cut}: the complete entry was not served"
                    ));
                }
                if store.stats().quarantined != 1 {
                    return Err(format!(
                        "torn crash point {cut}: torn entry was missed but not quarantined"
                    ));
                }
                report.recovered_misses += 1;
            }
        }
    }
    let _ = fs::remove_dir_all(dir);
    Ok(report)
}

fn read_entry(path: &Path, want_key: u64) -> io::Result<Vec<u8>> {
    let bytes = fs::read(path)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let rest = bytes.strip_prefix(MAGIC).ok_or_else(|| bad("bad magic"))?;
    let mut lines = rest.splitn(4, |&b| b == b'\n');
    let key_line = lines.next().ok_or_else(|| bad("missing key"))?;
    let len_line = lines.next().ok_or_else(|| bad("missing len"))?;
    let fnv_line = lines.next().ok_or_else(|| bad("missing fnv"))?;
    let payload = lines.next().ok_or_else(|| bad("missing payload"))?;
    let key = std::str::from_utf8(key_line)
        .ok()
        .and_then(|s| s.strip_prefix("key="))
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| bad("bad key header"))?;
    let len: usize = std::str::from_utf8(len_line)
        .ok()
        .and_then(|s| s.strip_prefix("len="))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad len header"))?;
    let fnv = std::str::from_utf8(fnv_line)
        .ok()
        .and_then(|s| s.strip_prefix("fnv="))
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| bad("bad fnv header"))?;
    if key != want_key {
        return Err(bad("key does not match filename"));
    }
    if payload.len() != len {
        return Err(bad("payload truncated or extended"));
    }
    if fnv1a(payload) != fnv {
        return Err(bad("checksum mismatch"));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("sxe-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let mut store = ArtifactStore::open(&dir, None).unwrap();
        assert!(store.get(7).is_none());
        assert!(store.insert(7, b"payload bytes"));
        assert_eq!(store.get(7).as_deref(), Some(&b"payload bytes"[..]));
        store.persist_index().unwrap();
        drop(store);

        let mut again = ArtifactStore::open(&dir, None).unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again.get(7).as_deref(), Some(&b"payload bytes"[..]));
        assert!(fs::read_to_string(dir.join("index.txt")).unwrap().contains(&format!("{:016x}", 7)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_entry_is_quarantined_not_served() {
        let dir = tmpdir("trunc");
        let mut store = ArtifactStore::open(&dir, None).unwrap();
        assert!(store.insert(42, b"the artifact"));
        let path = dir.join(entry_name(42));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 4]).unwrap();

        let mut again = ArtifactStore::open(&dir, None).unwrap();
        assert_eq!(again.len(), 1, "the file looks committed until read");
        assert!(again.get(42).is_none(), "torn entry must not be served");
        assert_eq!(again.stats().quarantined, 1);
        assert!(!path.exists());
        assert!(dir.join("quarantine").join(entry_name(42)).exists());
        // A second lookup is an ordinary miss.
        assert!(again.get(42).is_none());
        assert_eq!(again.stats().quarantined, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_byte_is_detected() {
        let dir = tmpdir("flip");
        let mut store = ArtifactStore::open(&dir, None).unwrap();
        assert!(store.insert(9, b"sensitive artifact data"));
        let path = dir.join(entry_name(9));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20; // flip one payload bit
        fs::write(&path, bytes).unwrap();
        assert!(store.get(9).is_none(), "checksum must catch the flip");
        assert_eq!(store.stats().quarantined, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_debris_is_swept_on_open() {
        let dir = tmpdir("sweep");
        drop(ArtifactStore::open(&dir, None).unwrap());
        fs::write(dir.join(".tmp-00000000000000aa-123"), b"half a write").unwrap();
        let store = ArtifactStore::open(&dir, None).unwrap();
        assert_eq!(store.stats().swept_tmp, 1);
        assert_eq!(store.len(), 0);
        assert!(!dir.join(".tmp-00000000000000aa-123").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_point_sweep_recovers_at_every_byte_boundary() {
        // The deterministic counterpart of the SIGKILL-mid-write stress
        // gate: every prefix of one entry write, both as tmp debris and
        // as a torn committed file, recovers to either the exact
        // payload or a clean miss.
        let dir = tmpdir("sweep-all");
        let payload = b"a realistic artifact payload: key=0000\nbody text\n";
        let report = crash_point_sweep(&dir, 0xabcd, payload).unwrap();
        let entry_len = (encode_entry(0xabcd, payload).len() + 1) as u64;
        assert_eq!(report.boundaries, 2 * entry_len, "every byte boundary, both phases");
        assert_eq!(report.intact_hits, 1, "only the complete entry is ever served");
        assert_eq!(report.recovered_misses, report.boundaries - 1);
        assert!(!dir.exists(), "scratch space is cleaned up");
    }

    #[test]
    fn reinsert_after_quarantine_recovers() {
        let dir = tmpdir("recover");
        let mut store = ArtifactStore::open(&dir, None).unwrap();
        assert!(store.insert(5, b"v1"));
        let path = dir.join(entry_name(5));
        fs::write(&path, b"garbage").unwrap();
        assert!(store.get(5).is_none());
        assert!(store.insert(5, b"v1"));
        assert_eq!(store.get(5).as_deref(), Some(&b"v1"[..]));
        let s = store.stats();
        assert_eq!((s.quarantined, s.inserts, s.hits), (1, 2, 1));
        fs::remove_dir_all(&dir).unwrap();
    }
}
