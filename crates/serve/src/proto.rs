//! The `sxed` wire protocol: length-prefixed frames over a byte stream.
//!
//! Every message is one **frame**:
//!
//! ```text
//! [ length: u32 big-endian ] [ kind: u8 ] [ payload: length-1 bytes ]
//! ```
//!
//! `length` covers the kind byte plus the payload and is capped at
//! [`MAX_FRAME`], so a malformed or hostile peer cannot make the daemon
//! allocate unboundedly. Payloads are UTF-8 text: a block of
//! `key=value` header lines, then one blank line, then an optional body
//! (the `.sxir` module text) — debuggable with `xxd` and stable to
//! extend (unknown header keys are ignored).
//!
//! Request kinds: [`Request::Compile`], [`Request::Ping`],
//! [`Request::Stats`], [`Request::Shutdown`]. Response kinds:
//! [`Response::Compiled`] (a [`CompiledArtifact`] plus the
//! [`CacheOutcome`]), [`Response::Refused`] (a **typed refusal** with a
//! `retry_after_ms` hint — the daemon load-sheds instead of hanging),
//! [`Response::Error`], [`Response::Pong`], [`Response::Stats`], and
//! [`Response::ShutdownAck`].

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use sxe_core::Variant;
use sxe_ir::Target;
use sxe_jit::Backend;

/// Maximum frame size (kind + payload) the protocol accepts: 16 MiB.
pub const MAX_FRAME: usize = 16 << 20;

/// Request frame kinds (the `kind` byte).
const REQ_COMPILE: u8 = 0x01;
const REQ_PING: u8 = 0x02;
const REQ_STATS: u8 = 0x03;
const REQ_SHUTDOWN: u8 = 0x04;

/// Response frame kinds.
const RESP_COMPILED: u8 = 0x81;
const RESP_REFUSED: u8 = 0x82;
const RESP_ERROR: u8 = 0x83;
const RESP_PONG: u8 = 0x84;
const RESP_STATS: u8 = 0x85;
const RESP_SHUTDOWN_ACK: u8 = 0x86;

/// A malformed frame or payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn perr(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// Write one frame.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() + 1;
    assert!(len <= MAX_FRAME, "frame exceeds MAX_FRAME");
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// EOF is only clean *between* frames: a peer that closes after sending
/// part of the length prefix, or part of the kind/payload, produced a
/// **truncated frame**, reported as a typed
/// [`io::ErrorKind::InvalidData`] error naming the cut point — never a
/// bare `UnexpectedEof` and never silently treated as a boundary.
///
/// # Errors
/// Propagates I/O errors (including read timeouts) and rejects frames
/// larger than [`MAX_FRAME`] or truncated mid-frame with
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < len.len() {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("truncated frame: EOF after {got} of 4 length-prefix bytes"),
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut buf = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("truncated frame: EOF after {got} of {len} frame bytes"),
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let kind = buf[0];
    buf.remove(0);
    Ok(Some((kind, buf)))
}

/// The textual name of a variant on the wire (matches `sxec --variant`).
#[must_use]
pub fn variant_name(v: Variant) -> &'static str {
    match v {
        Variant::Baseline => "baseline",
        Variant::GenUse => "gen-use",
        Variant::FirstAlgorithm => "first",
        Variant::BasicUdDu => "basic",
        Variant::Insert => "insert",
        Variant::Order => "order",
        Variant::InsertOrder => "insert-order",
        Variant::Array => "array",
        Variant::ArrayInsert => "array-insert",
        Variant::ArrayOrder => "array-order",
        Variant::AllPde => "all-pde",
        Variant::All => "all",
    }
}

/// Inverse of [`variant_name`].
#[must_use]
pub fn parse_variant(s: &str) -> Option<Variant> {
    Variant::ALL.into_iter().find(|&v| variant_name(v) == s)
}

/// A compile request: the `.sxir` source plus per-request options. The
/// fuel and timeout map onto the interior-atomic
/// [`Budget`](sxe_ir::Budget) of the compilation; `timeout_ms = Some(0)`
/// means "no time limit".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest {
    /// Algorithm variant (default: `all`).
    pub variant: Variant,
    /// Target architecture (default: IA64).
    pub target: Target,
    /// Optional fuel budget for this compilation.
    pub fuel: Option<u64>,
    /// Optional wall-clock budget in milliseconds (overrides the
    /// server's default; `0` disables the deadline).
    pub timeout_ms: Option<u64>,
    /// Execution backend the artifact is requested for (wire header
    /// `backend=vm|native`, default `vm` when absent — older clients
    /// keep their exact key). Part of the cache identity: a native-era
    /// request can never be answered from a VM-era entry.
    pub backend: Backend,
    /// The module, in textual IR form.
    pub source: String,
}

impl CompileRequest {
    /// A request with default options.
    #[must_use]
    pub fn new(source: impl Into<String>) -> CompileRequest {
        CompileRequest {
            variant: Variant::All,
            target: Target::Ia64,
            fuel: None,
            timeout_ms: None,
            backend: Backend::default(),
            source: source.into(),
        }
    }
}

/// A request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile a module.
    Compile(CompileRequest),
    /// Liveness probe.
    Ping,
    /// Snapshot the daemon's `serve.*` metrics.
    Stats,
    /// Drain in-flight work, fsync the cache index, stop.
    Shutdown,
}

/// Why a request was refused (load shedding, never a hang).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalReason {
    /// The admission queue is at capacity.
    QueueFull,
    /// The daemon is draining for shutdown.
    ShuttingDown,
    /// The per-daemon connection cap is reached; the connection was
    /// answered and closed without reading the request body.
    ConnectionLimit,
}

impl fmt::Display for RefusalReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefusalReason::QueueFull => f.write_str("queue-full"),
            RefusalReason::ShuttingDown => f.write_str("shutting-down"),
            RefusalReason::ConnectionLimit => f.write_str("connection-limit"),
        }
    }
}

/// A typed refusal: the daemon is shedding load and tells the client
/// when to come back instead of hanging the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Refusal {
    /// Suggested client backoff before retrying.
    pub retry_after_ms: u64,
    /// Why.
    pub reason: RefusalReason,
}

impl Refusal {
    /// The backoff hint as a [`Duration`].
    #[must_use]
    pub fn retry_after(&self) -> Duration {
        Duration::from_millis(self.retry_after_ms)
    }
}

/// Whether a compiled response came from the persistent artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the persistent cache.
    Hit,
    /// Compiled now (and, when clean, cached for next time).
    Miss,
}

/// One compiled module: the durable unit the artifact cache stores and
/// the `compile` response carries. `text` is byte-identical whether the
/// artifact was just compiled or replayed from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledArtifact {
    /// The [`sxe_jit::artifact::artifact_key`] this artifact answers.
    pub key: u64,
    /// Containment boundaries crossed during the original compile.
    pub boundaries: u64,
    /// Incidents recorded (0 for a clean — and therefore cacheable —
    /// compilation).
    pub incidents: u64,
    /// Whether the compile budget ran out (budget-exhausted artifacts
    /// are served but never cached).
    pub budget_exhausted: bool,
    /// Sign extensions eliminated by step 3.
    pub eliminated: u64,
    /// The compiled module, in textual IR form.
    pub text: String,
}

impl CompiledArtifact {
    /// Serialize for the cache file / response payload (header lines,
    /// blank line, module text).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = String::new();
        use fmt::Write as _;
        let _ = writeln!(s, "key={:016x}", self.key);
        let _ = writeln!(s, "boundaries={}", self.boundaries);
        let _ = writeln!(s, "incidents={}", self.incidents);
        let _ = writeln!(s, "budget_exhausted={}", u8::from(self.budget_exhausted));
        let _ = writeln!(s, "eliminated={}", self.eliminated);
        let _ = writeln!(s);
        s.push_str(&self.text);
        s.into_bytes()
    }

    /// Parse the [`to_bytes`](Self::to_bytes) form.
    ///
    /// # Errors
    /// [`ProtoError`] on malformed headers or non-UTF-8 payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompiledArtifact, ProtoError> {
        let text = std::str::from_utf8(bytes).map_err(|_| perr("artifact is not UTF-8"))?;
        let (headers, body) = split_payload(text)?;
        Ok(CompiledArtifact {
            key: header_u64_hex(&headers, "key")?,
            boundaries: header_u64(&headers, "boundaries")?,
            incidents: header_u64(&headers, "incidents")?,
            budget_exhausted: header_u64(&headers, "budget_exhausted")? != 0,
            eliminated: header_u64(&headers, "eliminated")?,
            text: body.to_string(),
        })
    }
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The compiled module (fresh or from the cache).
    Compiled(CacheOutcome, CompiledArtifact),
    /// Load shed: retry later.
    Refused(Refusal),
    /// The request itself was bad (parse error, verify error, unknown
    /// option); retrying without changing it will not help.
    Error(String),
    /// Liveness answer.
    Pong,
    /// Metrics snapshot (the plain-text lines of
    /// [`render_stats`](crate::server::render_stats)).
    Stats(String),
    /// Shutdown accepted after draining `drained` queued/in-flight
    /// requests; the daemon exits after this frame.
    ShutdownAck {
        /// Requests that were still queued or in flight when the
        /// shutdown began, all of which were answered before this ack.
        drained: u64,
    },
}

type Headers<'a> = Vec<(&'a str, &'a str)>;

fn split_payload(text: &str) -> Result<(Headers<'_>, &str), ProtoError> {
    let (head, body) = match text.split_once("\n\n") {
        Some((h, b)) => (h, b),
        None => (text.trim_end_matches('\n'), ""),
    };
    let mut headers = Vec::new();
    for line in head.lines() {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once('=').ok_or_else(|| perr(format!("bad header `{line}`")))?;
        headers.push((k, v));
    }
    Ok((headers, body))
}

fn header<'a>(headers: &[(&'a str, &'a str)], key: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn header_u64(headers: &[(&str, &str)], key: &str) -> Result<u64, ProtoError> {
    header(headers, key)
        .ok_or_else(|| perr(format!("missing header `{key}`")))?
        .parse()
        .map_err(|_| perr(format!("header `{key}` is not a number")))
}

fn header_u64_hex(headers: &[(&str, &str)], key: &str) -> Result<u64, ProtoError> {
    u64::from_str_radix(header(headers, key).ok_or_else(|| perr(format!("missing header `{key}`")))?, 16)
        .map_err(|_| perr(format!("header `{key}` is not hex")))
}

impl Request {
    /// Encode into `(kind, payload)`.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Compile(c) => {
                let mut s = String::new();
                use fmt::Write as _;
                let _ = writeln!(s, "variant={}", variant_name(c.variant));
                let _ = writeln!(s, "target={}", c.target);
                if let Some(fuel) = c.fuel {
                    let _ = writeln!(s, "fuel={fuel}");
                }
                if let Some(t) = c.timeout_ms {
                    let _ = writeln!(s, "timeout_ms={t}");
                }
                if c.backend != Backend::default() {
                    let _ = writeln!(s, "backend={}", c.backend);
                }
                let _ = writeln!(s);
                s.push_str(&c.source);
                (REQ_COMPILE, s.into_bytes())
            }
            Request::Ping => (REQ_PING, Vec::new()),
            Request::Stats => (REQ_STATS, Vec::new()),
            Request::Shutdown => (REQ_SHUTDOWN, Vec::new()),
        }
    }

    /// Decode from `(kind, payload)`.
    ///
    /// # Errors
    /// [`ProtoError`] on an unknown kind or malformed payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        match kind {
            REQ_COMPILE => {
                let text =
                    std::str::from_utf8(payload).map_err(|_| perr("compile payload not UTF-8"))?;
                let (headers, body) = split_payload(text)?;
                let variant = match header(&headers, "variant") {
                    None => Variant::All,
                    Some(v) => {
                        parse_variant(v).ok_or_else(|| perr(format!("unknown variant `{v}`")))?
                    }
                };
                // An absent header stays compatible with old clients:
                // it means the default target.
                let target = match header(&headers, "target") {
                    None => Target::default(),
                    Some(t) => t.parse::<Target>().map_err(perr)?,
                };
                let fuel = match header(&headers, "fuel") {
                    None => None,
                    Some(_) => Some(header_u64(&headers, "fuel")?),
                };
                let timeout_ms = match header(&headers, "timeout_ms") {
                    None => None,
                    Some(_) => Some(header_u64(&headers, "timeout_ms")?),
                };
                let backend = match header(&headers, "backend") {
                    None => Backend::default(),
                    Some(b) => b.parse().map_err(|e: String| perr(e))?,
                };
                Ok(Request::Compile(CompileRequest {
                    variant,
                    target,
                    fuel,
                    timeout_ms,
                    backend,
                    source: body.to_string(),
                }))
            }
            REQ_PING => Ok(Request::Ping),
            REQ_STATS => Ok(Request::Stats),
            REQ_SHUTDOWN => Ok(Request::Shutdown),
            other => Err(perr(format!("unknown request kind {other:#04x}"))),
        }
    }
}

impl Response {
    /// Encode into `(kind, payload)`.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Response::Compiled(outcome, artifact) => {
                let mut bytes = format!(
                    "cache={}\n",
                    if *outcome == CacheOutcome::Hit { "hit" } else { "miss" }
                )
                .into_bytes();
                bytes.extend_from_slice(&artifact.to_bytes());
                (RESP_COMPILED, bytes)
            }
            Response::Refused(r) => (
                RESP_REFUSED,
                format!("retry_after_ms={}\nreason={}\n", r.retry_after_ms, r.reason).into_bytes(),
            ),
            Response::Error(msg) => (RESP_ERROR, msg.clone().into_bytes()),
            Response::Pong => (RESP_PONG, Vec::new()),
            Response::Stats(text) => (RESP_STATS, text.clone().into_bytes()),
            Response::ShutdownAck { drained } => {
                (RESP_SHUTDOWN_ACK, format!("drained={drained}\n").into_bytes())
            }
        }
    }

    /// Decode from `(kind, payload)`.
    ///
    /// # Errors
    /// [`ProtoError`] on an unknown kind or malformed payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        match kind {
            RESP_COMPILED => {
                let text =
                    std::str::from_utf8(payload).map_err(|_| perr("response not UTF-8"))?;
                let (first, rest) = text
                    .split_once('\n')
                    .ok_or_else(|| perr("compiled response missing cache line"))?;
                let outcome = match first {
                    "cache=hit" => CacheOutcome::Hit,
                    "cache=miss" => CacheOutcome::Miss,
                    other => return Err(perr(format!("bad cache line `{other}`"))),
                };
                Ok(Response::Compiled(outcome, CompiledArtifact::from_bytes(rest.as_bytes())?))
            }
            RESP_REFUSED => {
                let text =
                    std::str::from_utf8(payload).map_err(|_| perr("response not UTF-8"))?;
                let (headers, _) = split_payload(text)?;
                let reason = match header(&headers, "reason") {
                    Some("queue-full") => RefusalReason::QueueFull,
                    Some("shutting-down") => RefusalReason::ShuttingDown,
                    Some("connection-limit") => RefusalReason::ConnectionLimit,
                    other => return Err(perr(format!("bad refusal reason {other:?}"))),
                };
                Ok(Response::Refused(Refusal {
                    retry_after_ms: header_u64(&headers, "retry_after_ms")?,
                    reason,
                }))
            }
            RESP_ERROR => Ok(Response::Error(
                String::from_utf8(payload.to_vec()).map_err(|_| perr("error not UTF-8"))?,
            )),
            RESP_PONG => Ok(Response::Pong),
            RESP_STATS => Ok(Response::Stats(
                String::from_utf8(payload.to_vec()).map_err(|_| perr("stats not UTF-8"))?,
            )),
            RESP_SHUTDOWN_ACK => {
                let text =
                    std::str::from_utf8(payload).map_err(|_| perr("response not UTF-8"))?;
                let (headers, _) = split_payload(text)?;
                Ok(Response::ShutdownAck { drained: header_u64(&headers, "drained")? })
            }
            other => Err(perr(format!("unknown response kind {other:#04x}"))),
        }
    }

    /// Write this response as one frame.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (kind, payload) = self.encode();
        write_frame(w, kind, &payload)
    }
}

impl Request {
    /// Write this request as one frame.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (kind, payload) = self.encode();
        write_frame(w, kind, &payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: &Request) {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let (kind, payload) = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(&Request::decode(kind, &payload).unwrap(), req);
    }

    fn roundtrip_response(resp: &Response) {
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let (kind, payload) = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(&Response::decode(kind, &payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(&Request::Ping);
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Shutdown);
        roundtrip_request(&Request::Compile(CompileRequest {
            variant: Variant::Array,
            target: Target::Ppc64,
            fuel: Some(4096),
            timeout_ms: Some(250),
            backend: Backend::Native,
            source: "func @f(i32) -> i32 {\nb0:\n    ret r0\n}\n".into(),
        }));
        roundtrip_request(&Request::Compile(CompileRequest {
            variant: Variant::All,
            target: Target::Mips64,
            fuel: None,
            timeout_ms: None,
            backend: Backend::default(),
            source: "func @f(i32) -> i32 {\nb0:\n    ret r0\n}\n".into(),
        }));
        roundtrip_request(&Request::Compile(CompileRequest::new("x\n\ny")));
    }

    #[test]
    fn absent_target_header_defaults_compatibly() {
        // Old clients never send `target=`; the server must decode the
        // payload as the default target rather than reject it.
        let payload = b"variant=all\n\nfunc @f() {\nb0:\n    ret\n}\n";
        let req = Request::decode(REQ_COMPILE, payload).unwrap();
        match req {
            Request::Compile(c) => assert_eq!(c.target, Target::default()),
            other => panic!("expected compile, got {other:?}"),
        }
        let bad = b"target=sparc64\n\nx\n";
        assert!(Request::decode(REQ_COMPILE, bad).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(&Response::Pong);
        roundtrip_response(&Response::Error("nope".into()));
        roundtrip_response(&Response::Stats("counter serve.requests 3\n".into()));
        roundtrip_response(&Response::ShutdownAck { drained: 7 });
        roundtrip_response(&Response::Refused(Refusal {
            retry_after_ms: 25,
            reason: RefusalReason::QueueFull,
        }));
        roundtrip_response(&Response::Refused(Refusal {
            retry_after_ms: 40,
            reason: RefusalReason::ConnectionLimit,
        }));
        let artifact = CompiledArtifact {
            key: 0xdead_beef_0123_4567,
            boundaries: 12,
            incidents: 0,
            budget_exhausted: false,
            eliminated: 3,
            text: "func @f(i32) -> i32 {\nb0:\n    ret r0\n}\n".into(),
        };
        roundtrip_response(&Response::Compiled(CacheOutcome::Hit, artifact.clone()));
        roundtrip_response(&Response::Compiled(CacheOutcome::Miss, artifact));
    }

    #[test]
    fn artifact_bytes_roundtrip_preserves_text_exactly() {
        let artifact = CompiledArtifact {
            key: 1,
            boundaries: 0,
            incidents: 0,
            budget_exhausted: true,
            eliminated: 0,
            text: "line1\n\nline3 after a blank line\n".into(),
        };
        let back = CompiledArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        assert_eq!(back, artifact, "bodies containing blank lines survive");
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.push(REQ_PING);
        assert_eq!(
            read_frame(&mut Cursor::new(buf)).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut buf = Vec::new();
        Request::Ping.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 1); // cut mid-frame... for Ping payload is empty
        let mut buf2 = Vec::new();
        Request::Compile(CompileRequest::new("abc")).write_to(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 2);
        assert!(read_frame(&mut Cursor::new(buf2)).is_err(), "truncated frame errors");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut Cursor::new(Vec::new())).unwrap().is_none());
    }

    /// A reader that hands out its bytes one at a time, so every
    /// `read` call exercises the partial-read path.
    struct OneByte(Cursor<Vec<u8>>);
    impl io::Read for OneByte {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    #[test]
    fn eof_mid_frame_is_typed_invalid_data_at_every_byte_offset() {
        let mut full = Vec::new();
        Request::Compile(CompileRequest::new("abc")).write_to(&mut full).unwrap();
        // Offset 0 is a clean boundary; every other prefix is a
        // truncated frame and must be a typed InvalidData error that
        // names the cut, never a bare UnexpectedEof.
        for cut in 1..full.len() {
            let prefix = full[..cut].to_vec();
            let err = read_frame(&mut Cursor::new(prefix.clone()))
                .expect_err(&format!("prefix of {cut} bytes must error"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}: {err}");
            assert!(err.to_string().contains("truncated frame"), "cut at {cut}: {err}");
            if cut < 4 {
                assert!(
                    err.to_string().contains("length-prefix"),
                    "cut at {cut} is mid-header: {err}"
                );
            }
            // The same cut through a one-byte-per-read transport (a
            // dribbling peer) classifies identically.
            let err = read_frame(&mut OneByte(Cursor::new(prefix))).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "dribbled cut at {cut}");
        }
        // The full frame still parses, even one byte at a time.
        assert!(read_frame(&mut OneByte(Cursor::new(full))).unwrap().is_some());
    }

    #[test]
    fn non_eof_io_errors_pass_through_untouched() {
        struct Timeout;
        impl io::Read for Timeout {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::TimedOut, "socket timeout"))
            }
        }
        let err = read_frame(&mut Timeout).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "timeouts are not truncation");
    }

    #[test]
    fn variant_names_roundtrip() {
        for v in Variant::ALL {
            assert_eq!(parse_variant(variant_name(v)), Some(v));
        }
        assert_eq!(parse_variant("bogus"), None);
    }

    #[test]
    fn unknown_kinds_error() {
        assert!(Request::decode(0x7f, &[]).is_err());
        assert!(Response::decode(0x7f, &[]).is_err());
    }
}
