//! A blocking `sxed` client with bounded, jittered retry.
//!
//! One connection per request keeps the client immune to the daemon's
//! idle-connection timeouts and makes every call independent.
//! [`Client::compile_with_retry`] is the load-shedding counterpart to
//! the server's typed refusals: on [`Response::Refused`] it backs off
//! exponentially — never below the server's `retry_after` hint —
//! with deterministic jitter from a caller-seeded
//! [`XorShift`](sxe_ir::rng::XorShift), so a thousand stressed clients
//! de-synchronize without a single nondeterministic bit.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

use sxe_ir::rng::XorShift;

use crate::proto::{
    read_frame, CacheOutcome, CompileRequest, CompiledArtifact, ProtoError, Refusal, Request,
    Response,
};

/// Retry policy for [`Client::compile_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per refusal.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// What a retried compile went through before returning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts made (1 = no retry was needed).
    pub attempts: u32,
    /// Typed refusals absorbed along the way.
    pub refusals: u32,
    /// Total time spent backing off.
    pub backed_off: Duration,
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The daemon answered with something unparseable or unexpected.
    Proto(ProtoError),
    /// The daemon rejected the request itself (parse/verify error);
    /// retrying the same request cannot succeed.
    Rejected(String),
    /// Every attempt was refused; the last refusal is included.
    Exhausted(Refusal),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Rejected(msg) => write!(f, "request rejected: {msg}"),
            ClientError::Exhausted(r) => {
                write!(f, "retries exhausted (last refusal: {})", r.reason)
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

/// Handle to a daemon at `127.0.0.1:port`. Cheap to clone; holds no
/// open connection.
#[derive(Debug, Clone)]
pub struct Client {
    port: u16,
    io_timeout: Duration,
}

impl Client {
    /// A client for the daemon on `port` with a 30 s I/O timeout.
    #[must_use]
    pub fn new(port: u16) -> Client {
        Client { port, io_timeout: Duration::from_secs(30) }
    }

    /// Override the per-request socket timeout.
    #[must_use]
    pub fn with_io_timeout(self, timeout: Duration) -> Client {
        Client { io_timeout: timeout, ..self }
    }

    /// One request/response exchange over a fresh connection.
    ///
    /// # Errors
    /// Transport errors, or [`ClientError::Proto`] if the response frame
    /// does not parse.
    pub fn request(&self, request: &Request) -> Result<Response, ClientError> {
        let stream = TcpStream::connect(("127.0.0.1", self.port))?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        stream.set_nodelay(true)?;
        let mut stream = stream;
        request.write_to(&mut stream)?;
        let (kind, payload) = read_frame(&mut stream)?
            .ok_or_else(|| ProtoError("daemon closed the connection mid-request".into()))?;
        Ok(Response::decode(kind, &payload)?)
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Transport/protocol errors, or an unexpected response kind.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the daemon's `serve.*` stats snapshot.
    ///
    /// # Errors
    /// Transport/protocol errors, or an unexpected response kind.
    pub fn stats(&self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Request a graceful shutdown; returns the number of requests the
    /// daemon drained before acking.
    ///
    /// # Errors
    /// Transport/protocol errors, or an unexpected response kind.
    pub fn shutdown(&self) -> Result<u64, ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck { drained } => Ok(drained),
            other => Err(unexpected(&other)),
        }
    }

    /// One compile attempt, no retry.
    ///
    /// # Errors
    /// Transport/protocol errors; a refusal is returned in the `Ok`
    /// response, not as an error.
    pub fn compile_once(&self, req: &CompileRequest) -> Result<Response, ClientError> {
        self.request(&Request::Compile(req.clone()))
    }

    /// Compile with bounded retry: typed refusals back off (exponential,
    /// floored at the server's `retry_after` hint, jittered by `rng`)
    /// and retry up to `policy.max_attempts`; transport errors also
    /// retry, since the daemon may be mid-restart. Rejections
    /// ([`Response::Error`]) fail immediately — the request itself is
    /// bad.
    ///
    /// # Errors
    /// [`ClientError::Exhausted`] when every attempt was refused,
    /// [`ClientError::Rejected`] on a daemon-side request error,
    /// [`ClientError::Io`] when the final attempt failed in transport.
    pub fn compile_with_retry(
        &self,
        req: &CompileRequest,
        policy: &RetryPolicy,
        rng: &mut XorShift,
    ) -> Result<(CacheOutcome, CompiledArtifact, RetryStats), ClientError> {
        let mut stats = RetryStats::default();
        let mut last_refusal: Option<Refusal> = None;
        let mut last_io: Option<ClientError> = None;
        while stats.attempts < policy.max_attempts.max(1) {
            stats.attempts += 1;
            match self.compile_once(req) {
                Ok(Response::Compiled(outcome, artifact)) => {
                    return Ok((outcome, artifact, stats));
                }
                Ok(Response::Refused(refusal)) => {
                    stats.refusals += 1;
                    last_refusal = Some(refusal);
                    let wait = self.backoff(policy, stats.attempts, refusal.retry_after(), rng);
                    stats.backed_off += wait;
                    std::thread::sleep(wait);
                }
                Ok(Response::Error(msg)) => return Err(ClientError::Rejected(msg)),
                Ok(other) => return Err(unexpected(&other)),
                Err(e @ (ClientError::Io(_) | ClientError::Proto(_))) => {
                    last_io = Some(e);
                    let wait = self.backoff(policy, stats.attempts, policy.base_backoff, rng);
                    stats.backed_off += wait;
                    std::thread::sleep(wait);
                }
                Err(e) => return Err(e),
            }
        }
        match (last_refusal, last_io) {
            (Some(r), _) => Err(ClientError::Exhausted(r)),
            (None, Some(e)) => Err(e),
            (None, None) => unreachable!("no attempt was made"),
        }
    }

    /// Exponential backoff with jitter: `base * 2^(attempt-1)` scaled by
    /// a deterministic factor in `[0.5, 1.5)` from `rng`, then clamped to
    /// `[server_hint, max_backoff]` — the jittered wait must never
    /// undercut the server's `retry_after` hint (the server meant it) nor
    /// exceed the policy cap. When the hint itself exceeds the cap, the
    /// hint wins: respecting the server's explicit pushback outranks the
    /// client-side ceiling.
    fn backoff(
        &self,
        policy: &RetryPolicy,
        attempt: u32,
        server_hint: Duration,
        rng: &mut XorShift,
    ) -> Duration {
        let exp = policy
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(policy.max_backoff);
        let jitter_pct = 50 + rng.below(100); // 50..150
        let jittered = exp.max(server_hint).mul_f64(jitter_pct as f64 / 100.0);
        jittered.clamp(server_hint, policy.max_backoff.max(server_hint))
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Proto(ProtoError(format!("unexpected response: {resp:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_monotonic_in_cap() {
        let client = Client::new(1);
        let policy = RetryPolicy::default();
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for attempt in 1..10 {
            let hint = Duration::from_millis(25);
            let wa = client.backoff(&policy, attempt, hint, &mut a);
            let wb = client.backoff(&policy, attempt, hint, &mut b);
            assert_eq!(wa, wb, "same seed, same schedule");
            assert!(wa >= hint, "never undercuts the server hint");
            assert!(wa <= policy.max_backoff, "never exceeds the cap");
        }
    }

    /// A stand-in rng that always produces the requested jitter draw, so
    /// the clamp can be proven at both jitter extremes (x0.5 and x1.49).
    fn rng_forcing(below_100: u64) -> XorShift {
        // XorShift is deterministic; search a seed whose first draw below
        // 100 equals the requested value.
        for seed in 1..100_000 {
            let mut r = XorShift::new(seed);
            if r.below(100) == below_100 {
                return XorShift::new(seed);
            }
        }
        panic!("no seed produces draw {below_100}");
    }

    #[test]
    fn backoff_clamps_jitter_extremes_to_hint_and_cap() {
        let client = Client::new(1);
        let policy = RetryPolicy::default();
        // Low-jitter extreme (x0.5): a hint above the raw exponential
        // must still be respected in full.
        let hint = policy.max_backoff / 2;
        for draw in [0, 99] {
            for attempt in 1..12 {
                let w = client.backoff(&policy, attempt, hint, &mut rng_forcing(draw));
                assert!(w >= hint, "draw {draw} attempt {attempt}: {w:?} < hint {hint:?}");
                assert!(
                    w <= policy.max_backoff,
                    "draw {draw} attempt {attempt}: {w:?} > cap {:?}",
                    policy.max_backoff
                );
            }
        }
        // High-jitter extreme (x1.49) at the cap: late attempts whose
        // exponential term saturates must not overshoot max_backoff.
        let w = client.backoff(&policy, 30, Duration::ZERO, &mut rng_forcing(99));
        assert!(w <= policy.max_backoff);
        // A server hint beyond the cap wins over the cap.
        let big_hint = policy.max_backoff * 3;
        let w = client.backoff(&policy, 1, big_hint, &mut rng_forcing(0));
        assert_eq!(w, big_hint);
    }

    #[test]
    fn different_seeds_desynchronize() {
        let client = Client::new(1);
        let policy = RetryPolicy::default();
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(2);
        let hint = Duration::ZERO;
        let waits_a: Vec<_> =
            (1..8).map(|i| client.backoff(&policy, i, hint, &mut a)).collect();
        let waits_b: Vec<_> =
            (1..8).map(|i| client.backoff(&policy, i, hint, &mut b)).collect();
        assert_ne!(waits_a, waits_b, "jitter must separate distinct clients");
    }
}
