//! A blocking `sxed` client with bounded, jittered retry.
//!
//! One connection per request keeps the client immune to the daemon's
//! idle-connection timeouts and makes every call independent.
//! [`Client::compile_with_retry`] is the load-shedding counterpart to
//! the server's typed refusals: on [`Response::Refused`] it backs off
//! exponentially — never below the server's `retry_after` hint —
//! with deterministic jitter from a caller-seeded
//! [`sxe_ir::rng::XorShift`], so a thousand stressed clients
//! de-synchronize without a single nondeterministic bit.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sxe_ir::rng::XorShift;

use crate::proto::{
    read_frame, CacheOutcome, CompileRequest, CompiledArtifact, ProtoError, Refusal, Request,
    Response,
};

/// Retry policy for [`Client::compile_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per refusal.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// What a retried compile went through before returning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts made (1 = no retry was needed).
    pub attempts: u32,
    /// Typed refusals absorbed along the way.
    pub refusals: u32,
    /// Total time spent backing off.
    pub backed_off: Duration,
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The daemon answered with something unparseable or unexpected.
    Proto(ProtoError),
    /// The daemon rejected the request itself (parse/verify error);
    /// retrying the same request cannot succeed.
    Rejected(String),
    /// Every attempt was refused; the last refusal is included.
    Exhausted(Refusal),
    /// The client-side circuit breaker is open: the daemon has failed
    /// too many consecutive calls, so this request was not sent at all.
    /// Retry no sooner than `retry_after`.
    CircuitOpen {
        /// How long until the breaker will admit a half-open probe.
        retry_after: Duration,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Rejected(msg) => write!(f, "request rejected: {msg}"),
            ClientError::Exhausted(r) => {
                write!(f, "retries exhausted (last refusal: {})", r.reason)
            }
            ClientError::CircuitOpen { retry_after } => {
                write!(f, "circuit breaker open (retry in {retry_after:?})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

/// Handle to a daemon at `127.0.0.1:port`. Cheap to clone; holds no
/// open connection.
#[derive(Debug, Clone)]
pub struct Client {
    port: u16,
    io_timeout: Duration,
}

impl Client {
    /// A client for the daemon on `port` with a 30 s I/O timeout.
    #[must_use]
    pub fn new(port: u16) -> Client {
        Client { port, io_timeout: Duration::from_secs(30) }
    }

    /// Override the per-request socket timeout.
    #[must_use]
    pub fn with_io_timeout(self, timeout: Duration) -> Client {
        Client { io_timeout: timeout, ..self }
    }

    /// One request/response exchange over a fresh connection.
    ///
    /// # Errors
    /// Transport errors, or [`ClientError::Proto`] if the response frame
    /// does not parse.
    pub fn request(&self, request: &Request) -> Result<Response, ClientError> {
        let stream = TcpStream::connect(("127.0.0.1", self.port))?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        stream.set_nodelay(true)?;
        let mut stream = stream;
        request.write_to(&mut stream)?;
        let (kind, payload) = read_frame(&mut stream)?
            .ok_or_else(|| ProtoError("daemon closed the connection mid-request".into()))?;
        Ok(Response::decode(kind, &payload)?)
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Transport/protocol errors, or an unexpected response kind.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the daemon's `serve.*` stats snapshot.
    ///
    /// # Errors
    /// Transport/protocol errors, or an unexpected response kind.
    pub fn stats(&self) -> Result<String, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Request a graceful shutdown; returns the number of requests the
    /// daemon drained before acking.
    ///
    /// # Errors
    /// Transport/protocol errors, or an unexpected response kind.
    pub fn shutdown(&self) -> Result<u64, ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck { drained } => Ok(drained),
            other => Err(unexpected(&other)),
        }
    }

    /// One compile attempt, no retry.
    ///
    /// # Errors
    /// Transport/protocol errors; a refusal is returned in the `Ok`
    /// response, not as an error.
    pub fn compile_once(&self, req: &CompileRequest) -> Result<Response, ClientError> {
        self.request(&Request::Compile(req.clone()))
    }

    /// Compile with bounded retry: typed refusals back off (exponential,
    /// floored at the server's `retry_after` hint, jittered by `rng`)
    /// and retry up to `policy.max_attempts`; transport errors also
    /// retry, since the daemon may be mid-restart. Rejections
    /// ([`Response::Error`]) fail immediately — the request itself is
    /// bad.
    ///
    /// # Errors
    /// [`ClientError::Exhausted`] when every attempt was refused,
    /// [`ClientError::Rejected`] on a daemon-side request error,
    /// [`ClientError::Io`] when the final attempt failed in transport.
    pub fn compile_with_retry(
        &self,
        req: &CompileRequest,
        policy: &RetryPolicy,
        rng: &mut XorShift,
    ) -> Result<(CacheOutcome, CompiledArtifact, RetryStats), ClientError> {
        let mut stats = RetryStats::default();
        let mut last_refusal: Option<Refusal> = None;
        let mut last_io: Option<ClientError> = None;
        while stats.attempts < policy.max_attempts.max(1) {
            stats.attempts += 1;
            match self.compile_once(req) {
                Ok(Response::Compiled(outcome, artifact)) => {
                    return Ok((outcome, artifact, stats));
                }
                Ok(Response::Refused(refusal)) => {
                    stats.refusals += 1;
                    last_refusal = Some(refusal);
                    let wait = self.backoff(policy, stats.attempts, refusal.retry_after(), rng);
                    stats.backed_off += wait;
                    std::thread::sleep(wait);
                }
                Ok(Response::Error(msg)) => return Err(ClientError::Rejected(msg)),
                Ok(other) => return Err(unexpected(&other)),
                Err(e @ (ClientError::Io(_) | ClientError::Proto(_))) => {
                    last_io = Some(e);
                    let wait = self.backoff(policy, stats.attempts, policy.base_backoff, rng);
                    stats.backed_off += wait;
                    std::thread::sleep(wait);
                }
                Err(e) => return Err(e),
            }
        }
        match (last_refusal, last_io) {
            (Some(r), _) => Err(ClientError::Exhausted(r)),
            (None, Some(e)) => Err(e),
            (None, None) => unreachable!("no attempt was made"),
        }
    }

    /// [`compile_with_retry`](Client::compile_with_retry) behind a
    /// [`CircuitBreaker`]: when the breaker is open the request is
    /// short-circuited with [`ClientError::CircuitOpen`] before any
    /// socket work, so a dead daemon costs nanoseconds instead of a
    /// full timeout-and-retry ladder per call.
    ///
    /// Breaker accounting: transport failures and exhausted retries
    /// count against the breaker; [`ClientError::Rejected`] does *not*
    /// — a typed rejection proves the daemon is alive and answering,
    /// the request itself was bad.
    ///
    /// # Errors
    /// [`ClientError::CircuitOpen`] when short-circuited; otherwise as
    /// [`compile_with_retry`](Client::compile_with_retry).
    pub fn compile_guarded(
        &self,
        req: &CompileRequest,
        policy: &RetryPolicy,
        breaker: &mut CircuitBreaker,
        rng: &mut XorShift,
    ) -> Result<(CacheOutcome, CompiledArtifact, RetryStats), ClientError> {
        if let Err(retry_after) = breaker.try_acquire() {
            return Err(ClientError::CircuitOpen { retry_after });
        }
        match self.compile_with_retry(req, policy, rng) {
            Ok(ok) => {
                breaker.on_success();
                Ok(ok)
            }
            Err(e @ ClientError::Rejected(_)) => {
                breaker.on_success();
                Err(e)
            }
            Err(e) => {
                breaker.on_failure();
                Err(e)
            }
        }
    }

    /// Exponential backoff with jitter: `base * 2^(attempt-1)` scaled by
    /// a deterministic factor in `[0.5, 1.5)` from `rng`, then clamped to
    /// `[server_hint, max_backoff]` — the jittered wait must never
    /// undercut the server's `retry_after` hint (the server meant it) nor
    /// exceed the policy cap. When the hint itself exceeds the cap, the
    /// hint wins: respecting the server's explicit pushback outranks the
    /// client-side ceiling.
    fn backoff(
        &self,
        policy: &RetryPolicy,
        attempt: u32,
        server_hint: Duration,
        rng: &mut XorShift,
    ) -> Duration {
        let exp = policy
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(policy.max_backoff);
        let jitter_pct = 50 + rng.below(100); // 50..150
        let jittered = exp.max(server_hint).mul_f64(jitter_pct as f64 / 100.0);
        jittered.clamp(server_hint, policy.max_backoff.max(server_hint))
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Proto(ProtoError(format!("unexpected response: {resp:?}")))
}

/// Circuit-breaker tuning for [`Client::compile_guarded`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting one half-open
    /// probe; doubles on every failed probe.
    pub cooldown: Duration,
    /// Ceiling for the doubling cooldown.
    pub max_cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 5,
            cooldown: Duration::from_millis(50),
            max_cooldown: Duration::from_secs(2),
        }
    }
}

/// Observable breaker state (see [`CircuitBreaker::state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are being counted.
    Closed,
    /// Requests are short-circuited without touching the network.
    Open,
    /// One probe is in flight; its outcome decides open vs. closed.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
enum BreakerInner {
    Closed { consecutive_failures: u32 },
    Open { until: Instant, cooldown: Duration },
    HalfOpen { cooldown: Duration },
}

/// A deterministic client-side circuit breaker.
///
/// State machine: `Closed` counts *consecutive* failures and trips
/// `Open` at the policy threshold; `Open` short-circuits every call
/// (no socket is touched) until its cooldown elapses, then admits
/// exactly one `HalfOpen` probe; a successful probe closes the breaker
/// and resets the failure count, a failed one re-opens it with the
/// cooldown doubled (capped at `max_cooldown`).
///
/// All transitions are pure functions of the injected `now` — like the
/// retry jitter, nothing here consumes ambient entropy, so breaker
/// traces replay exactly under test. The breaker is not thread-safe by
/// design; share one per client task or wrap it yourself.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    inner: BreakerInner,
}

impl CircuitBreaker {
    /// A closed breaker with zero recorded failures.
    #[must_use]
    pub fn new(policy: BreakerPolicy) -> CircuitBreaker {
        CircuitBreaker { policy, inner: BreakerInner::Closed { consecutive_failures: 0 } }
    }

    /// Current coarse state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        match self.inner {
            BreakerInner::Closed { .. } => BreakerState::Closed,
            BreakerInner::Open { .. } => BreakerState::Open,
            BreakerInner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Ask to send a request at time `now`. `Ok(())` admits the call
    /// (and, from `Open` past its cooldown, converts it into the single
    /// half-open probe); `Err(retry_after)` short-circuits it.
    ///
    /// # Errors
    /// `Err(d)` when the breaker is open (retry after `d`) or when a
    /// half-open probe is already outstanding.
    pub fn try_acquire_at(&mut self, now: Instant) -> Result<(), Duration> {
        match self.inner {
            BreakerInner::Closed { .. } => Ok(()),
            BreakerInner::Open { until, cooldown } => {
                if now < until {
                    Err(until - now)
                } else {
                    self.inner = BreakerInner::HalfOpen { cooldown };
                    Ok(())
                }
            }
            // One probe at a time: until it reports back, everyone else
            // waits a full cooldown.
            BreakerInner::HalfOpen { cooldown } => Err(cooldown),
        }
    }

    /// Record a successful call: closes the breaker and zeroes the
    /// consecutive-failure count.
    pub fn on_success(&mut self) {
        self.inner = BreakerInner::Closed { consecutive_failures: 0 };
    }

    /// Record a failed call finishing at time `now`.
    pub fn on_failure_at(&mut self, now: Instant) {
        match self.inner {
            BreakerInner::Closed { consecutive_failures } => {
                let failures = consecutive_failures + 1;
                if failures >= self.policy.failure_threshold.max(1) {
                    self.inner = BreakerInner::Open {
                        until: now + self.policy.cooldown,
                        cooldown: self.policy.cooldown,
                    };
                } else {
                    self.inner = BreakerInner::Closed { consecutive_failures: failures };
                }
            }
            BreakerInner::HalfOpen { cooldown } => {
                let cooldown = (cooldown * 2).min(self.policy.max_cooldown);
                self.inner = BreakerInner::Open { until: now + cooldown, cooldown };
            }
            // A failure reported while open (a call admitted before the
            // trip) just re-arms the current cooldown window.
            BreakerInner::Open { cooldown, .. } => {
                self.inner = BreakerInner::Open { until: now + cooldown, cooldown };
            }
        }
    }

    /// [`try_acquire_at`](CircuitBreaker::try_acquire_at) at the real
    /// clock.
    ///
    /// # Errors
    /// See [`try_acquire_at`](CircuitBreaker::try_acquire_at).
    pub fn try_acquire(&mut self) -> Result<(), Duration> {
        self.try_acquire_at(Instant::now())
    }

    /// [`on_failure_at`](CircuitBreaker::on_failure_at) at the real
    /// clock.
    pub fn on_failure(&mut self) {
        self.on_failure_at(Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_monotonic_in_cap() {
        let client = Client::new(1);
        let policy = RetryPolicy::default();
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for attempt in 1..10 {
            let hint = Duration::from_millis(25);
            let wa = client.backoff(&policy, attempt, hint, &mut a);
            let wb = client.backoff(&policy, attempt, hint, &mut b);
            assert_eq!(wa, wb, "same seed, same schedule");
            assert!(wa >= hint, "never undercuts the server hint");
            assert!(wa <= policy.max_backoff, "never exceeds the cap");
        }
    }

    /// A stand-in rng that always produces the requested jitter draw, so
    /// the clamp can be proven at both jitter extremes (x0.5 and x1.49).
    fn rng_forcing(below_100: u64) -> XorShift {
        // XorShift is deterministic; search a seed whose first draw below
        // 100 equals the requested value.
        for seed in 1..100_000 {
            let mut r = XorShift::new(seed);
            if r.below(100) == below_100 {
                return XorShift::new(seed);
            }
        }
        panic!("no seed produces draw {below_100}");
    }

    #[test]
    fn backoff_clamps_jitter_extremes_to_hint_and_cap() {
        let client = Client::new(1);
        let policy = RetryPolicy::default();
        // Low-jitter extreme (x0.5): a hint above the raw exponential
        // must still be respected in full.
        let hint = policy.max_backoff / 2;
        for draw in [0, 99] {
            for attempt in 1..12 {
                let w = client.backoff(&policy, attempt, hint, &mut rng_forcing(draw));
                assert!(w >= hint, "draw {draw} attempt {attempt}: {w:?} < hint {hint:?}");
                assert!(
                    w <= policy.max_backoff,
                    "draw {draw} attempt {attempt}: {w:?} > cap {:?}",
                    policy.max_backoff
                );
            }
        }
        // High-jitter extreme (x1.49) at the cap: late attempts whose
        // exponential term saturates must not overshoot max_backoff.
        let w = client.backoff(&policy, 30, Duration::ZERO, &mut rng_forcing(99));
        assert!(w <= policy.max_backoff);
        // A server hint beyond the cap wins over the cap.
        let big_hint = policy.max_backoff * 3;
        let w = client.backoff(&policy, 1, big_hint, &mut rng_forcing(0));
        assert_eq!(w, big_hint);
    }

    fn breaker(threshold: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerPolicy {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(100),
            max_cooldown: Duration::from_millis(400),
        })
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let mut b = breaker(3);
        let t0 = Instant::now();
        for i in 0..2 {
            assert_eq!(b.try_acquire_at(t0), Ok(()), "failure {i} must not trip yet");
            b.on_failure_at(t0);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        b.on_failure_at(t0); // third consecutive failure trips it
        assert_eq!(b.state(), BreakerState::Open);
        let denied = b.try_acquire_at(t0 + Duration::from_millis(40));
        assert_eq!(denied, Err(Duration::from_millis(60)), "open: exact remaining cooldown");
    }

    #[test]
    fn breaker_success_resets_the_consecutive_count() {
        let mut b = breaker(3);
        let t0 = Instant::now();
        b.on_failure_at(t0);
        b.on_failure_at(t0);
        b.on_success(); // interleaved success: the streak is broken
        b.on_failure_at(t0);
        b.on_failure_at(t0);
        assert_eq!(b.state(), BreakerState::Closed, "non-consecutive failures never trip");
    }

    #[test]
    fn breaker_half_open_probe_closes_on_success() {
        let mut b = breaker(1);
        let t0 = Instant::now();
        b.on_failure_at(t0);
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown elapsed: exactly one probe is admitted …
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(b.try_acquire_at(t1), Ok(()));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // … and a second caller is denied while it is outstanding.
        assert!(b.try_acquire_at(t1).is_err());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.try_acquire_at(t1), Ok(()));
    }

    #[test]
    fn breaker_failed_probe_doubles_cooldown_up_to_the_cap() {
        let mut b = breaker(1);
        let mut now = Instant::now();
        b.on_failure_at(now);
        // Each failed probe doubles the wait: 100 → 200 → 400 → 400 (cap).
        for expect_ms in [200u64, 400, 400, 400] {
            now += Duration::from_millis(1000); // well past any cooldown
            assert_eq!(b.try_acquire_at(now), Ok(()), "probe admitted");
            b.on_failure_at(now);
            assert_eq!(b.state(), BreakerState::Open);
            let denied = b.try_acquire_at(now).expect_err("freshly re-opened");
            assert_eq!(denied, Duration::from_millis(expect_ms));
        }
    }

    #[test]
    fn breaker_transitions_are_deterministic_under_replay() {
        // Same policy, same timeline, same outcomes → identical traces.
        let t0 = Instant::now();
        let script = |b: &mut CircuitBreaker| {
            let mut trace = Vec::new();
            for step in 0..20u64 {
                let now = t0 + Duration::from_millis(step * 37);
                let admitted = b.try_acquire_at(now).is_ok();
                if admitted {
                    if step % 3 == 0 {
                        b.on_failure_at(now);
                    } else {
                        b.on_success();
                    }
                }
                trace.push((admitted, b.state()));
            }
            trace
        };
        assert_eq!(script(&mut breaker(2)), script(&mut breaker(2)));
    }

    #[test]
    fn different_seeds_desynchronize() {
        let client = Client::new(1);
        let policy = RetryPolicy::default();
        let mut a = XorShift::new(1);
        let mut b = XorShift::new(2);
        let hint = Duration::ZERO;
        let waits_a: Vec<_> =
            (1..8).map(|i| client.backoff(&policy, i, hint, &mut a)).collect();
        let waits_b: Vec<_> =
            (1..8).map(|i| client.backoff(&policy, i, hint, &mut b)).collect();
        assert_ne!(waits_a, waits_b, "jitter must separate distinct clients");
    }
}
