//! Deterministic network-fault injection for the `sxed` wire path.
//!
//! The compile pipeline already has a seeded fault discipline
//! ([`sxe_jit::harness::FaultPlan`]): every chaos run is a pure function
//! of its seed, so any finding replays exactly. This module brings the
//! same discipline to the *network* between [`Client`] and [`Server`]:
//!
//! * [`NetFaultPlan::from_seed`] derives one wire fault (kind + byte
//!   offset) from a seed, mirroring `FaultPlan::from_seed`;
//! * [`NetFaultProxy`] is an in-process TCP proxy that interposes on
//!   loopback and applies the plan to real socket traffic — truncated
//!   requests, dribbled responses, mid-frame disconnects, delayed
//!   accepts, duplicated and garbled frames;
//! * [`fuzz_frame`] derives one malformed protocol frame from a seed
//!   for the protocol fuzzer (`netchaos` in `sxe-bench`).
//!
//! The proxy deliberately knows the frame format (4-byte length prefix,
//! see [`proto`](crate::proto)) so faults land at protocol-meaningful
//! places: inside the length prefix, inside a frame body, between two
//! duplicated frames — not just "somewhere in the byte stream".
//!
//! [`Client`]: crate::client::Client
//! [`Server`]: crate::server::Server
//! [`sxe_jit::harness::FaultPlan`]: sxe_jit::harness::FaultPlan

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sxe_ir::rng::XorShift;

use crate::proto::MAX_FRAME;

/// One kind of wire-level fault. See each variant for the behavior the
/// daemon must exhibit under it — every kind resolves to a typed
/// response or a clean close, never a hang or a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFaultKind {
    /// Forward only a prefix of the request frame, then close the
    /// upstream write side cleanly. The daemon must answer a typed
    /// truncated-frame error, which the proxy relays back.
    TruncateRequest,
    /// Relay the request faithfully but dribble the response back one
    /// byte at a time. The client must still succeed — slow reads are
    /// the *client's* timeout to enforce, not a protocol violation.
    SlowResponse,
    /// Forward a prefix of the request frame, then drop both
    /// connections on the floor. The client must surface a typed
    /// transport error immediately; the daemon must log a truncation
    /// and move on.
    MidFrameReset,
    /// Sit on the accepted connection for a plan-determined delay
    /// before relaying anything, then behave faithfully. Exercises the
    /// idle (between-frames) timeout path; the request must succeed.
    DelayedAccept,
    /// Forward the request frame twice back-to-back. The daemon must
    /// answer each frame independently (the duplicate is a *valid*
    /// frame); the proxy relays the first response and discards the
    /// second.
    DuplicateFrame,
    /// Flip seeded bytes inside the frame body (kind byte or payload —
    /// never the length prefix, so the frame stays well-formed at the
    /// framing layer). The daemon must answer typed: unknown kind,
    /// header garbage, or a parse error.
    GarbleFrame,
}

impl NetFaultKind {
    /// Every fault kind, in campaign order.
    pub const ALL: [NetFaultKind; 6] = [
        NetFaultKind::TruncateRequest,
        NetFaultKind::SlowResponse,
        NetFaultKind::MidFrameReset,
        NetFaultKind::DelayedAccept,
        NetFaultKind::DuplicateFrame,
        NetFaultKind::GarbleFrame,
    ];

    /// Stable lowercase name (report keys, CLI).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetFaultKind::TruncateRequest => "truncate-request",
            NetFaultKind::SlowResponse => "slow-response",
            NetFaultKind::MidFrameReset => "mid-frame-reset",
            NetFaultKind::DelayedAccept => "delayed-accept",
            NetFaultKind::DuplicateFrame => "duplicate-frame",
            NetFaultKind::GarbleFrame => "garble-frame",
        }
    }
}

impl std::fmt::Display for NetFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded wire-fault plan: which fault to inject and the byte offset
/// that parameterizes it (truncation point, garble positions, accept
/// delay). Mirrors [`sxe_jit::harness::FaultPlan`]: the plan is a pure
/// function of the seed, so every campaign case replays bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Seed this plan was derived from; also seeds the garble RNG.
    pub seed: u64,
    /// The fault to inject.
    pub kind: NetFaultKind,
    /// Raw offset parameter; each kind reduces it into its own range
    /// (e.g. modulo the frame length for truncation).
    pub offset: u64,
}

impl NetFaultPlan {
    /// Derive a plan from a seed: fault kind and offset are both
    /// pseudo-random but fully determined by `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> NetFaultPlan {
        let mut rng = XorShift::new(seed);
        let offset = rng.below(4096);
        let kind = *rng.choose(&NetFaultKind::ALL);
        NetFaultPlan { seed, kind, offset }
    }

    /// Derive a plan with the kind pinned and only the offset drawn
    /// from the seed — the campaign sweeps seeds × *every* kind, so the
    /// kind draw of [`from_seed`](NetFaultPlan::from_seed) would leave
    /// gaps.
    #[must_use]
    pub fn with_kind(seed: u64, kind: NetFaultKind) -> NetFaultPlan {
        let mut rng = XorShift::new(seed);
        let offset = rng.below(4096);
        NetFaultPlan { seed, kind, offset }
    }
}

/// Socket timeout for the proxy's own reads and writes: generous enough
/// never to trigger on loopback, tight enough that a wedged peer frees
/// the proxy thread.
const PROXY_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// An in-process fault-injecting TCP proxy on loopback. Point a
/// [`Client`](crate::client::Client) at [`port`](NetFaultProxy::port)
/// and every connection through it suffers the plan's fault on its way
/// to `upstream_port`.
pub struct NetFaultProxy {
    port: u16,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl NetFaultProxy {
    /// Bind an ephemeral loopback port and start proxying to
    /// `127.0.0.1:upstream_port` with `plan`'s fault applied to every
    /// connection.
    ///
    /// # Errors
    /// I/O errors binding the listener.
    pub fn start(upstream_port: u16, plan: NetFaultPlan) -> io::Result<NetFaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            // Fault application is best-effort by design:
                            // a peer that hangs up early is part of chaos.
                            let _ = proxy_conn(client, upstream_port, plan);
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            })
        };
        Ok(NetFaultProxy { port, stop, thread: Some(thread) })
    }

    /// The proxy's listening port (loopback).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Stop accepting and join the proxy thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NetFaultProxy {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Read one raw frame — length prefix *included* — off a stream.
fn read_raw_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("proxy saw frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&prefix);
    stream.read_exact(&mut frame[4..])?;
    Ok(frame)
}

/// Reduce the plan's raw offset into a genuine mid-frame truncation
/// point: at least one byte forwarded, at least one withheld, and every
/// region (inside the length prefix, at the kind byte, mid-body) is
/// reachable across offsets.
fn truncation_point(offset: u64, frame_len: usize) -> usize {
    if frame_len <= 1 {
        return 0;
    }
    1 + (offset as usize % (frame_len - 1))
}

/// Apply one connection's worth of fault. Each request/response
/// exchange through the proxy is one connection — the client opens a
/// fresh connection per request, so per-connection faulting covers
/// every request exactly once.
fn proxy_conn(mut client: TcpStream, upstream_port: u16, plan: NetFaultPlan) -> io::Result<()> {
    client.set_read_timeout(Some(PROXY_IO_TIMEOUT))?;
    client.set_write_timeout(Some(PROXY_IO_TIMEOUT))?;
    client.set_nodelay(true)?;
    if plan.kind == NetFaultKind::DelayedAccept {
        std::thread::sleep(Duration::from_millis(10 + plan.offset % 150));
    }
    let mut upstream = TcpStream::connect(("127.0.0.1", upstream_port))?;
    upstream.set_read_timeout(Some(PROXY_IO_TIMEOUT))?;
    upstream.set_write_timeout(Some(PROXY_IO_TIMEOUT))?;
    upstream.set_nodelay(true)?;
    match plan.kind {
        NetFaultKind::DelayedAccept => {
            let req = read_raw_frame(&mut client)?;
            upstream.write_all(&req)?;
            let resp = read_raw_frame(&mut upstream)?;
            client.write_all(&resp)?;
        }
        NetFaultKind::TruncateRequest => {
            let req = read_raw_frame(&mut client)?;
            let cut = truncation_point(plan.offset, req.len());
            upstream.write_all(&req[..cut])?;
            // Clean FIN mid-frame: the daemon must answer a typed
            // truncated-frame error, which we relay back.
            upstream.shutdown(Shutdown::Write)?;
            let resp = read_raw_frame(&mut upstream)?;
            client.write_all(&resp)?;
        }
        NetFaultKind::MidFrameReset => {
            let req = read_raw_frame(&mut client)?;
            let cut = truncation_point(plan.offset, req.len());
            upstream.write_all(&req[..cut])?;
            // Drop both sides with no response at all: the client gets
            // a typed transport error, the daemon a truncation.
            drop(upstream);
        }
        NetFaultKind::SlowResponse => {
            let req = read_raw_frame(&mut client)?;
            upstream.write_all(&req)?;
            let resp = read_raw_frame(&mut upstream)?;
            // Dribble a bounded prefix one byte at a time, then flush
            // the rest — slow enough to interleave reads, fast enough
            // to keep a campaign case under a second.
            let slow = resp.len().min(64 + (plan.offset as usize % 64));
            for i in 0..slow {
                client.write_all(&resp[i..=i])?;
                std::thread::sleep(Duration::from_millis(1));
            }
            client.write_all(&resp[slow..])?;
        }
        NetFaultKind::DuplicateFrame => {
            let req = read_raw_frame(&mut client)?;
            upstream.write_all(&req)?;
            upstream.write_all(&req)?;
            let resp = read_raw_frame(&mut upstream)?;
            client.write_all(&resp)?;
            // The duplicate's answer proves the daemon kept serving the
            // connection; the client never asked for it, so drain and
            // drop it.
            let _ = read_raw_frame(&mut upstream)?;
        }
        NetFaultKind::GarbleFrame => {
            let mut req = read_raw_frame(&mut client)?;
            garble(&mut req, plan);
            upstream.write_all(&req)?;
            let resp = read_raw_frame(&mut upstream)?;
            client.write_all(&resp)?;
        }
    }
    Ok(())
}

/// Deterministically corrupt a raw frame's body. The length prefix is
/// never touched (the framing layer must stay consistent — garbling it
/// is [`fuzz_frame`]'s job); odd offsets hit the kind byte, even ones
/// flip seeded payload bytes.
fn garble(frame: &mut [u8], plan: NetFaultPlan) {
    debug_assert!(frame.len() > 4);
    let mut rng = XorShift::new(plan.seed ^ 0x6761_7262_6c65); // "garble"
    if plan.offset & 1 == 1 || frame.len() == 5 {
        // An unknown/corrupted kind byte.
        frame[4] ^= 0x40 | (rng.below(63) as u8 + 1);
    } else {
        let body = &mut frame[5..];
        let flips = 1 + rng.index(8.min(body.len()));
        for _ in 0..flips {
            let at = rng.index(body.len());
            body[at] ^= rng.below(255) as u8 + 1;
        }
    }
}

/// How a [`fuzz_frame`] should be delivered to the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzDelivery {
    /// One `write_all` of the whole buffer.
    Whole,
    /// One byte per write with a tiny pause — a *fast* loris that
    /// exercises partial-read reassembly without tripping the frame
    /// deadline (the deadline itself has a dedicated gate check).
    Drip,
}

/// One seeded malformed frame for the protocol fuzzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFrame {
    /// Raw bytes to put on the wire.
    pub bytes: Vec<u8>,
    /// Stable shape label (report histogram key).
    pub shape: &'static str,
    /// How to write it.
    pub delivery: FuzzDelivery,
}

/// Derive one malformed (or nonsense-but-well-framed) protocol frame
/// from a seed. Shapes cover every framing-layer invariant: zero and
/// oversize lengths, unknown kinds, bodies shorter than their prefix
/// claims, non-UTF-8 header garbage, and raw bytes with no framing at
/// all. The daemon's obligation for each is a typed error or a clean
/// close — never a panic, hang, or unbounded allocation.
#[must_use]
pub fn fuzz_frame(seed: u64) -> FuzzFrame {
    let mut rng = XorShift::new(seed ^ 0x6675_7a7a); // "fuzz"
    let delivery =
        if rng.chance(1, 8) { FuzzDelivery::Drip } else { FuzzDelivery::Whole };
    let (shape, bytes): (&'static str, Vec<u8>) = match rng.below(7) {
        0 => {
            // Length prefix of zero, then trailing garbage.
            let mut b = vec![0, 0, 0, 0];
            b.extend((0..rng.below(16)).map(|_| rng.below(256) as u8));
            ("zero-length", b)
        }
        1 => {
            // Length prefix beyond MAX_FRAME: must be refused without
            // allocating the claimed size.
            let huge = (MAX_FRAME as u32).saturating_add(1 + rng.below(1 << 20) as u32);
            let mut b = huge.to_be_bytes().to_vec();
            b.push(rng.below(256) as u8);
            ("oversize-length", b)
        }
        2 => {
            // Well-framed, but a kind no decoder knows.
            let len = 1 + rng.below(32) as u32;
            let mut b = len.to_be_bytes().to_vec();
            b.push(0x40 | rng.below(63) as u8); // outside both kind ranges
            b.extend((1..len).map(|_| rng.below(256) as u8));
            ("unknown-kind", b)
        }
        3 => {
            // Prefix claims more body than will ever arrive.
            let claimed = 2 + rng.below(512) as u32;
            let sent = rng.below(u64::from(claimed)) as u32;
            let mut b = claimed.to_be_bytes().to_vec();
            b.push(0x01); // REQ_COMPILE
            b.extend((1..=sent).map(|_| rng.below(256) as u8));
            ("truncated-body", b)
        }
        4 => {
            // Valid compile kind, non-UTF-8 garbage payload.
            let len = 1 + rng.below(64) as u32;
            let mut b = len.to_be_bytes().to_vec();
            b.push(0x01);
            b.extend((1..len).map(|_| 0x80 | rng.below(128) as u8));
            ("binary-garbage-body", b)
        }
        5 => {
            // No framing at all: raw noise the length prefix is read
            // *out of*.
            let n = 1 + rng.below(64) as usize;
            ("raw-noise", (0..n).map(|_| rng.below(256) as u8).collect())
        }
        _ => {
            // Well-framed compile request whose headers are junk text.
            let body = format!(
                "not-a-header {}\nsource=\n\nfunc junk {}",
                rng.below(1000),
                rng.below(1000)
            );
            let mut b = (1 + body.len() as u32).to_be_bytes().to_vec();
            b.push(0x01);
            b.extend(body.into_bytes());
            ("junk-headers", b)
        }
    };
    FuzzFrame { bytes, shape, delivery }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_cover_every_kind() {
        for seed in 0..256 {
            assert_eq!(NetFaultPlan::from_seed(seed), NetFaultPlan::from_seed(seed));
        }
        let mut seen = std::collections::HashSet::new();
        for seed in 0..256 {
            seen.insert(NetFaultPlan::from_seed(seed).kind);
        }
        assert_eq!(seen.len(), NetFaultKind::ALL.len(), "256 seeds must draw every kind");
        for kind in NetFaultKind::ALL {
            let plan = NetFaultPlan::with_kind(9, kind);
            assert_eq!(plan.kind, kind);
            assert_eq!(plan.offset, NetFaultPlan::from_seed(9).offset);
        }
    }

    #[test]
    fn truncation_point_is_a_genuine_mid_frame_cut() {
        for offset in 0..512 {
            for len in 2..40 {
                let cut = truncation_point(offset, len);
                assert!(cut >= 1 && cut < len, "cut {cut} of {len}");
            }
        }
        // Every region must be reachable: prefix bytes, kind byte, body.
        let cuts: std::collections::HashSet<usize> =
            (0..512).map(|o| truncation_point(o, 40)).collect();
        assert!(cuts.contains(&1) && cuts.contains(&4) && cuts.contains(&39));
    }

    #[test]
    fn garble_changes_body_bytes_but_never_the_length_prefix() {
        for seed in 0..128 {
            for kind_parity in [0, 1] {
                let plan = NetFaultPlan {
                    seed,
                    kind: NetFaultKind::GarbleFrame,
                    offset: kind_parity,
                };
                let original: Vec<u8> = (0u8..32).collect();
                let mut frame = original.clone();
                garble(&mut frame, plan);
                assert_eq!(frame[..4], original[..4], "length prefix untouched");
                assert_ne!(frame[4..], original[4..], "body must actually change");
                // Deterministic: same plan, same corruption.
                let mut again = original.clone();
                garble(&mut again, plan);
                assert_eq!(frame, again);
            }
        }
    }

    #[test]
    fn fuzz_frames_are_deterministic_and_span_all_shapes() {
        let mut shapes = std::collections::HashSet::new();
        let mut dripped = 0;
        for seed in 0..512 {
            let f = fuzz_frame(seed);
            assert_eq!(f, fuzz_frame(seed));
            assert!(!f.bytes.is_empty());
            shapes.insert(f.shape);
            dripped += u32::from(f.delivery == FuzzDelivery::Drip);
        }
        assert_eq!(shapes.len(), 7, "512 seeds must draw all shapes: {shapes:?}");
        assert!(dripped > 0, "some frames must drip");
    }
}
