//! `sxed` — the compile-service daemon.
//!
//! Binds a loopback TCP socket, serves the frame protocol of
//! [`sxe_serve::proto`], and runs until a client sends a shutdown
//! request (which drains in-flight work and fsyncs the cache index).
//! The first stdout line is machine-readable:
//!
//! ```text
//! sxed: listening on 127.0.0.1:<port> cache=<dir>
//! ```
//!
//! so harnesses can pass `--port 0` and scrape the ephemeral port.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use sxe_serve::{ServeConfig, Server};

const USAGE: &str = "\
usage: sxed [options]

options:
  --port <n>             TCP port on 127.0.0.1 (0 = ephemeral; default 7433)
  --cache-dir <dir>      persistent artifact cache directory (default sxed-cache)
  --threads <n>          compile worker threads (default 4)
  --queue-capacity <n>   bounded admission queue size (default 64)
  --fuel <n>             default per-request fuel budget (default unlimited)
  --timeout <ms>         default per-request wall-clock budget (default unlimited)
  --io-timeout <ms>      socket read/write timeout (default 10000)
  --frame-deadline <ms>  per-frame read deadline once a frame has started,
                         the slow-loris cutoff (default 2000)
  --max-conns <n>        connection cap; beyond it new connections get a typed
                         connection-limit refusal (0 = unlimited; default 256)
  --retry-after <ms>     backoff hint attached to refusals (default 25)
  --write-delay-ms <ms>  test hook: slow cache writes to widen the crash window
  --help                 print this help
";

struct Options {
    port: u16,
    config: ServeConfig,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options { port: 7433, config: ServeConfig::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--port" => {
                opts.port = value("--port")?.parse().map_err(|_| "bad --port".to_string())?;
            }
            "--cache-dir" => opts.config.cache_dir = PathBuf::from(value("--cache-dir")?),
            "--threads" => {
                opts.config.threads =
                    value("--threads")?.parse().map_err(|_| "bad --threads".to_string())?;
            }
            "--queue-capacity" => {
                opts.config.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|_| "bad --queue-capacity".to_string())?;
            }
            "--fuel" => {
                opts.config.default_fuel =
                    Some(value("--fuel")?.parse().map_err(|_| "bad --fuel".to_string())?);
            }
            "--timeout" => {
                let ms: u64 =
                    value("--timeout")?.parse().map_err(|_| "bad --timeout".to_string())?;
                opts.config.default_time_limit =
                    (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--io-timeout" => {
                let ms: u64 =
                    value("--io-timeout")?.parse().map_err(|_| "bad --io-timeout".to_string())?;
                opts.config.io_timeout = Duration::from_millis(ms.max(1));
            }
            "--frame-deadline" => {
                let ms: u64 = value("--frame-deadline")?
                    .parse()
                    .map_err(|_| "bad --frame-deadline".to_string())?;
                opts.config.frame_deadline = Duration::from_millis(ms.max(1));
            }
            "--max-conns" => {
                opts.config.max_connections =
                    value("--max-conns")?.parse().map_err(|_| "bad --max-conns".to_string())?;
            }
            "--retry-after" => {
                let ms: u64 = value("--retry-after")?
                    .parse()
                    .map_err(|_| "bad --retry-after".to_string())?;
                opts.config.retry_after = Duration::from_millis(ms);
            }
            "--write-delay-ms" => {
                let ms: u64 = value("--write-delay-ms")?
                    .parse()
                    .map_err(|_| "bad --write-delay-ms".to_string())?;
                opts.config.write_delay = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("sxed: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let cache_dir = opts.config.cache_dir.clone();
    let server = match Server::start(opts.port, opts.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sxed: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("sxed: listening on 127.0.0.1:{} cache={}", server.port(), cache_dir.display());
    let _ = std::io::stdout().flush();
    server.wait();
    println!("sxed: shut down cleanly");
    ExitCode::SUCCESS
}
