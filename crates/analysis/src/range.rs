//! Value-range analysis over UD chains.
//!
//! The paper's array-subscript theorems (§3) "depend on knowledge of the
//! value range, which can be determined at compile time using one of the
//! value range analysis techniques [4, 7]". This module provides interval
//! bounds for the **low 32 bits of a register interpreted as an `i32`** —
//! exactly the quantity the theorems constrain (`LS(e)`, `0 <= j <=
//! 0x7fffffff`, `-1 <= i`), since for a sign-extended operand the low-32
//! value *is* the full value.
//!
//! The analysis is demand-driven: a query recursively walks the UD chains
//! of the defining instructions with memoization, returning the full
//! `i32` range on cycles or at a depth limit (always sound).

use std::cell::RefCell;
use std::collections::HashMap;

use sxe_ir::{BinOp, Function, Inst, InstId, Reg, Ty, UnOp};

use crate::udu::{DefId, DefSite, UdDu};

/// An inclusive interval of `i32` values (stored as `i64` for convenient
/// arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl Interval {
    /// The full signed 32-bit range (the analysis "don't know" value).
    pub const TOP: Interval = Interval { lo: i32::MIN as i64, hi: i32::MAX as i64 };

    /// A singleton interval.
    #[must_use]
    pub fn constant(v: i32) -> Interval {
        Interval { lo: v as i64, hi: v as i64 }
    }

    /// An interval from bounds, clamped to the `i32` range.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Interval {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval {
            lo: lo.max(i32::MIN as i64),
            hi: hi.min(i32::MAX as i64),
        }
    }

    /// Whether every value in the interval is within `[min, max]`.
    #[must_use]
    pub fn within(self, min: i64, max: i64) -> bool {
        min <= self.lo && self.hi <= max
    }

    /// Whether the interval is the full `i32` range.
    #[must_use]
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// Union (convex hull).
    #[must_use]
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Intersection. An empty intersection (contradictory facts — the
    /// program point is unreachable for those values) collapses to a
    /// singleton, which is sound for every consumer here.
    #[must_use]
    pub fn intersect(self, other: Interval) -> Interval {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            Interval { lo, hi: lo }
        } else {
            Interval { lo, hi }
        }
    }

    /// Whether every value is non-negative.
    #[must_use]
    pub fn is_nonneg(self) -> bool {
        self.lo >= 0
    }

    fn from_checked(lo: i64, hi: i64) -> Interval {
        if lo < i32::MIN as i64 || hi > i32::MAX as i64 || lo > hi {
            // The 32-bit result may have wrapped; give up.
            Interval::TOP
        } else {
            Interval { lo, hi }
        }
    }
}

/// Demand-driven range analysis for one function.
#[derive(Debug)]
pub struct RangeAnalysis<'a> {
    f: &'a Function,
    udu: &'a UdDu,
    memo: RefCell<HashMap<DefId, Interval>>,
    in_progress: RefCell<Vec<DefId>>,
}

const MAX_DEPTH: usize = 64;

impl<'a> RangeAnalysis<'a> {
    /// Create an analysis bound to a function and its UD/DU chains.
    #[must_use]
    pub fn new(f: &'a Function, udu: &'a UdDu) -> RangeAnalysis<'a> {
        RangeAnalysis {
            f,
            udu,
            memo: RefCell::new(HashMap::new()),
            in_progress: RefCell::new(Vec::new()),
        }
    }

    /// Range of the low-32 value of `reg` as used at `inst`: the join over
    /// all reaching definitions. Returns [`Interval::TOP`] if no
    /// definition information is available.
    #[must_use]
    pub fn range_at(&self, inst: InstId, reg: Reg) -> Interval {
        let defs = self.udu.defs_reaching(inst, reg);
        if defs.is_empty() {
            return Interval::TOP;
        }
        let mut acc: Option<Interval> = None;
        for d in defs {
            let r = self.range_of_def(d, 0);
            acc = Some(match acc {
                None => r,
                Some(a) => a.join(r),
            });
        }
        acc.unwrap_or(Interval::TOP)
    }

    /// Range produced by one definition site.
    #[must_use]
    pub fn range_of(&self, d: DefId) -> Interval {
        self.range_of_def(d, 0)
    }

    fn range_of_def(&self, d: DefId, depth: usize) -> Interval {
        if depth > MAX_DEPTH {
            return Interval::TOP;
        }
        if let Some(&r) = self.memo.borrow().get(&d) {
            return r;
        }
        if self.in_progress.borrow().contains(&d) {
            // Cycle through a loop-carried definition: no invariant
            // reasoning here, so the sound answer is TOP.
            return Interval::TOP;
        }
        self.in_progress.borrow_mut().push(d);
        let result = match self.udu.site(d) {
            DefSite::Param(_) => Interval::TOP,
            DefSite::Inst(id) => self.range_of_inst(id, depth),
        };
        self.in_progress.borrow_mut().pop();
        self.memo.borrow_mut().insert(d, result);
        result
    }

    fn operand(&self, id: InstId, r: Reg, depth: usize) -> Interval {
        let defs = self.udu.defs_reaching(id, r);
        if defs.is_empty() {
            return Interval::TOP;
        }
        let mut acc: Option<Interval> = None;
        for d in defs {
            let rr = self.range_of_def(d, depth + 1);
            acc = Some(match acc {
                None => rr,
                Some(a) => a.join(rr),
            });
        }
        acc.unwrap_or(Interval::TOP)
    }

    fn range_of_inst(&self, id: InstId, depth: usize) -> Interval {
        match *self.f.inst(id) {
            Inst::Const { value, .. } => Interval::constant(value as i32),
            Inst::Copy { src, ty, .. } if ty != Ty::F64 => self.operand(id, src, depth),
            // Extensions do not change the low 32 bits for W32; for W8/W16
            // they bound the result.
            Inst::Extend { src, from, .. } | Inst::JustExtended { src, from, .. } => {
                match from.bits() {
                    32 => self.operand(id, src, depth),
                    16 => Interval::new(i16::MIN as i64, i16::MAX as i64),
                    _ => Interval::new(i8::MIN as i64, i8::MAX as i64),
                }
            }
            Inst::Setcc { .. } => Interval::new(0, 1),
            Inst::ArrayLen { .. } => Interval::new(0, i32::MAX as i64),
            Inst::ArrayLoad { elem, .. } => match elem {
                Ty::I8 => Interval::new(i8::MIN as i64, i8::MAX as i64),
                Ty::I16 => Interval::new(i16::MIN as i64, i16::MAX as i64),
                _ => Interval::TOP,
            },
            Inst::Un { op, src, ty, .. } => match op {
                UnOp::Zext(w) => match w.bits() {
                    8 => Interval::new(0, 0xFF),
                    16 => Interval::new(0, 0xFFFF),
                    // zext32 leaves the low 32 bits unchanged.
                    _ => self.operand(id, src, depth),
                },
                UnOp::Neg if ty != Ty::F64 => {
                    let s = self.operand(id, src, depth);
                    if s.lo == i32::MIN as i64 {
                        Interval::TOP // -INT_MIN wraps
                    } else {
                        Interval::from_checked(-s.hi, -s.lo)
                    }
                }
                UnOp::Not if ty != Ty::F64 => {
                    let s = self.operand(id, src, depth);
                    Interval::from_checked(-s.hi - 1, -s.lo - 1)
                }
                _ => Interval::TOP,
            },
            Inst::Bin { op, ty, lhs, rhs, .. } if ty != Ty::F64 => {
                let l = self.operand(id, lhs, depth);
                let r = self.operand(id, rhs, depth);
                self.bin_range(op, ty, l, r)
            }
            _ => Interval::TOP,
        }
    }

    fn bin_range(&self, op: BinOp, ty: Ty, l: Interval, r: Interval) -> Interval {
        binop_range(op, ty, l, r)
    }
}

/// Interval transfer function for a binary operation on low-32 values.
///
/// For I64 operations the low 32 bits can wrap arbitrarily relative
/// to the 64-bit value except when the bounds stay in i32 range, in
/// which case the math below is still exact — so the same rules
/// apply (`from_checked` returns TOP otherwise).
///
/// **Contract for full-register ops**: the rules for `Div`, `Rem`, and
/// `Shr` describe the result only when the machine's *full-register*
/// inputs equal the low-32 values the intervals bound, i.e. when the
/// operands are sign-extended. Every consumer in the eliminator checks
/// that guard (`operand_facts(..).sign_extended`) before trusting these
/// rules; the unconditional [`crate::FlowRanges`] stays conservative for
/// them instead.
#[must_use]
pub fn binop_range(op: BinOp, ty: Ty, l: Interval, r: Interval) -> Interval {
    {
        let _ = ty;
        match op {
            BinOp::Add => Interval::from_checked(l.lo + r.lo, l.hi + r.hi),
            BinOp::Sub => Interval::from_checked(l.lo - r.hi, l.hi - r.lo),
            BinOp::Mul => {
                let cands = [l.lo * r.lo, l.lo * r.hi, l.hi * r.lo, l.hi * r.hi];
                let lo = cands.iter().copied().min().expect("non-empty");
                let hi = cands.iter().copied().max().expect("non-empty");
                Interval::from_checked(lo, hi)
            }
            BinOp::And => {
                if l.is_nonneg() && r.is_nonneg() {
                    Interval::new(0, l.hi.min(r.hi))
                } else if l.is_nonneg() {
                    Interval::new(0, l.hi)
                } else if r.is_nonneg() {
                    Interval::new(0, r.hi)
                } else {
                    Interval::TOP
                }
            }
            BinOp::Or | BinOp::Xor => {
                if l.is_nonneg() && r.is_nonneg() {
                    // Both below 2^k for the smallest covering mask.
                    let mask = fill_ones(l.hi as u64 | r.hi as u64) as i64;
                    Interval::new(0, mask.min(i32::MAX as i64))
                } else {
                    Interval::TOP
                }
            }
            BinOp::Shl => {
                if let Some(s) = singleton(r).filter(|&s| (0..=31).contains(&s)) {
                    if l.is_nonneg() {
                        Interval::from_checked(l.lo << s, l.hi << s)
                    } else {
                        Interval::TOP
                    }
                } else {
                    Interval::TOP
                }
            }
            BinOp::Shr => {
                if let Some(s) = singleton(r).filter(|&s| (0..=31).contains(&s)) {
                    Interval::new(l.lo >> s, l.hi >> s)
                } else if l.is_nonneg() {
                    // Arithmetic shift of a non-negative value stays in
                    // [0, hi] for any amount in 0..=31.
                    Interval::new(0, l.hi)
                } else {
                    Interval::TOP
                }
            }
            BinOp::Shru => {
                if let Some(s) = singleton(r).filter(|&s| (1..=31).contains(&s)) {
                    if l.is_nonneg() {
                        Interval::new(l.lo >> s, l.hi >> s)
                    } else {
                        // Low 32 bits as u32, shifted: bounded by 2^(32-s)-1.
                        Interval::new(0, (u32::MAX as i64) >> s)
                    }
                } else if singleton(r) == Some(0) {
                    l
                } else if l.is_nonneg() {
                    Interval::new(0, l.hi)
                } else {
                    Interval::TOP
                }
            }
            BinOp::Div => {
                if let Some(c) = singleton(r).filter(|&c| c > 0) {
                    Interval::new(l.lo / c, l.hi / c)
                } else {
                    Interval::TOP
                }
            }
            BinOp::Rem => {
                if let Some(c) = singleton(r).filter(|&c| c != 0) {
                    let m = c.abs() - 1;
                    if l.is_nonneg() {
                        Interval::new(0, m)
                    } else {
                        Interval::new(-m, m)
                    }
                } else {
                    Interval::TOP
                }
            }
        }
    }
}

fn singleton(i: Interval) -> Option<i64> {
    (i.lo == i.hi).then_some(i.lo)
}

/// Smallest all-ones mask covering `v` (e.g. `0b1010 -> 0b1111`).
fn fill_ones(mut v: u64) -> u64 {
    v |= v >> 1;
    v |= v >> 2;
    v |= v >> 4;
    v |= v >> 8;
    v |= v >> 16;
    v |= v >> 32;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId, Cfg};

    fn analyse(src: &str) -> (Function, UdDu) {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::compute(&f);
        let udu = UdDu::compute(&f, &cfg);
        (f, udu)
    }

    #[test]
    fn constants_and_masks() {
        let (f, udu) = analyse(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 268435455\n    r2 = and.i32 r0, r1\n    ret r2\n}\n",
        );
        let ra = RangeAnalysis::new(&f, &udu);
        // The and-result at the ret: [0, 0x0fffffff] — paper Figure 3 (6).
        let r = ra.range_at(InstId::new(BlockId(0), 2), Reg(2));
        assert_eq!(r, Interval::new(0, 0x0FFF_FFFF));
        assert!(r.is_nonneg());
    }

    #[test]
    fn add_of_bounded_values() {
        let (f, udu) = analyse(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 10\n    r1 = const.i32 -3\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
        );
        let ra = RangeAnalysis::new(&f, &udu);
        assert_eq!(ra.range_at(InstId::new(BlockId(0), 3), Reg(2)), Interval::constant(7));
    }

    #[test]
    fn overflow_goes_top() {
        let (f, udu) = analyse(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 2147483647\n    r1 = const.i32 1\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
        );
        let ra = RangeAnalysis::new(&f, &udu);
        assert!(ra.range_at(InstId::new(BlockId(0), 3), Reg(2)).is_top());
    }

    #[test]
    fn loop_carried_is_top_but_mask_recovers() {
        // i decremented in a loop: top; but i & 0xff after: [0, 255].
        let (f, udu) = analyse(
            "func @f(i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r1 = const.i32 1\n    r0 = sub.i32 r0, r1\n    r2 = const.i32 255\n    r3 = and.i32 r0, r2\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    ret r3\n}\n",
        );
        let ra = RangeAnalysis::new(&f, &udu);
        assert!(ra.range_at(InstId::new(BlockId(1), 4), Reg(0)).is_top());
        assert_eq!(
            ra.range_at(InstId::new(BlockId(2), 0), Reg(3)),
            Interval::new(0, 255)
        );
    }

    #[test]
    fn join_over_two_defs() {
        let (f, udu) = analyse(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 5\n    condbr gt.i32 r0, r1, b1, b2\n\
             b1:\n    r2 = const.i32 10\n    br b3\n\
             b2:\n    r2 = const.i32 -4\n    br b3\n\
             b3:\n    ret r2\n}\n",
        );
        let ra = RangeAnalysis::new(&f, &udu);
        assert_eq!(
            ra.range_at(InstId::new(BlockId(3), 0), Reg(2)),
            Interval::new(-4, 10)
        );
    }

    #[test]
    fn shifts_and_div() {
        let (f, udu) = analyse(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 255\n    r2 = and.i32 r0, r1\n    r3 = const.i32 2\n    r4 = shl.i32 r2, r3\n    r5 = div.i32 r4, r3\n    r6 = shru.i32 r5, r3\n    ret r6\n}\n",
        );
        let ra = RangeAnalysis::new(&f, &udu);
        let at = |i: usize, r: u32| ra.range_at(InstId::new(BlockId(0), i), Reg(r));
        assert_eq!(at(3, 2), Interval::new(0, 255));
        assert_eq!(at(4, 4), Interval::new(0, 1020));
        assert_eq!(at(5, 5), Interval::new(0, 510));
        assert_eq!(at(6, 6), Interval::new(0, 127));
    }

    #[test]
    fn setcc_len_and_byte_load() {
        let (f, udu) = analyse(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = newarray.i8 r0\n    r2 = len r1\n    r3 = aload.i8 r1, r0\n    r4 = set.lt.i32 r2, r3\n    ret r4\n}\n",
        );
        let ra = RangeAnalysis::new(&f, &udu);
        let at = |i: usize, r: u32| ra.range_at(InstId::new(BlockId(0), i), Reg(r));
        assert_eq!(at(3, 2), Interval::new(0, i32::MAX as i64));
        assert_eq!(at(3, 3), Interval::new(-128, 127));
        assert_eq!(at(4, 4), Interval::new(0, 1));
    }

    #[test]
    fn negative_constant_for_countdown() {
        // The Theorem 4 countdown case: j = const -1 has range [-1, -1].
        let (f, udu) = analyse(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 -1\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
        );
        let ra = RangeAnalysis::new(&f, &udu);
        let r = ra.range_at(InstId::new(BlockId(0), 1), Reg(1));
        assert_eq!(r, Interval::constant(-1));
        assert!(r.within(-1, 0x7FFF_FFFF));
    }
}
