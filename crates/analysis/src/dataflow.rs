//! A generic iterative bit-vector dataflow solver.
//!
//! Both directions are supported; transfer functions are supplied as
//! per-block gen/kill sets, the classic formulation used for reaching
//! definitions and liveness.

use sxe_ir::{BlockId, Cfg};

use crate::bitset::BitSet;

/// Direction of a dataflow problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Information flows from predecessors to successors.
    Forward,
    /// Information flows from successors to predecessors.
    Backward,
}

/// How facts from multiple incoming edges are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meet {
    /// Union ("may" problems: reaching definitions, liveness).
    Union,
    /// Intersection ("must" problems: available expressions).
    Intersection,
}

/// A gen/kill dataflow problem over bit vectors.
#[derive(Debug)]
pub struct GenKillProblem {
    /// Direction of propagation.
    pub direction: Direction,
    /// Edge meet operator.
    pub meet: Meet,
    /// Universe size of the bit vectors.
    pub universe: usize,
    /// Per-block generated facts.
    pub gen: Vec<BitSet>,
    /// Per-block killed facts.
    pub kill: Vec<BitSet>,
    /// Facts at the boundary (entry for forward, exits for backward).
    pub boundary: BitSet,
}

/// The fixed-point solution: facts at block entry and exit.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Facts at the entry of each block.
    pub block_in: Vec<BitSet>,
    /// Facts at the exit of each block.
    pub block_out: Vec<BitSet>,
}

/// Solve a gen/kill problem to its fixed point with a worklist.
///
/// For [`Meet::Intersection`] problems the interior blocks are initialized
/// to the full set (optimistic), which yields the greatest fixed point.
///
/// # Panics
/// Panics if the gen/kill vectors do not match the CFG block count.
#[must_use]
pub fn solve(cfg: &Cfg, problem: &GenKillProblem) -> Solution {
    let n = cfg.num_blocks();
    assert_eq!(problem.gen.len(), n, "gen sets per block");
    assert_eq!(problem.kill.len(), n, "kill sets per block");
    let full = || {
        let mut s = BitSet::new(problem.universe);
        for i in 0..problem.universe {
            s.insert(i);
        }
        s
    };
    let empty = || BitSet::new(problem.universe);

    // in_[b] is the input facts (block entry for forward, block exit for
    // backward); out[b] is the transferred result.
    let init = match problem.meet {
        Meet::Union => empty(),
        Meet::Intersection => full(),
    };
    let mut input: Vec<BitSet> = vec![init.clone(); n];
    let mut output: Vec<BitSet> = vec![init; n];

    // Process in an order that converges quickly.
    let order: Vec<BlockId> = match problem.direction {
        Direction::Forward => cfg.rpo().to_vec(),
        Direction::Backward => {
            let mut v = cfg.rpo().to_vec();
            v.reverse();
            v
        }
    };

    // Apply boundary conditions.
    let is_boundary = |b: BlockId| match problem.direction {
        Direction::Forward => cfg.rpo().first() == Some(&b),
        Direction::Backward => cfg.succs(b).is_empty(),
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            // Meet over incoming edges.
            let incoming: Vec<BlockId> = match problem.direction {
                Direction::Forward => cfg.preds(b).to_vec(),
                Direction::Backward => cfg.succs(b).to_vec(),
            };
            let mut new_in = if is_boundary(b) {
                problem.boundary.clone()
            } else {
                match problem.meet {
                    Meet::Union => empty(),
                    Meet::Intersection => full(),
                }
            };
            for p in incoming {
                match problem.meet {
                    Meet::Union => {
                        new_in.union_with(&output[p.index()]);
                    }
                    Meet::Intersection => {
                        new_in.intersect_with(&output[p.index()]);
                    }
                }
            }
            // Transfer: out = gen ∪ (in − kill).
            let mut new_out = new_in.clone();
            new_out.subtract(&problem.kill[b.index()]);
            new_out.union_with(&problem.gen[b.index()]);
            if new_in != input[b.index()] || new_out != output[b.index()] {
                input[b.index()] = new_in;
                output[b.index()] = new_out;
                changed = true;
            }
        }
    }

    match problem.direction {
        Direction::Forward => Solution { block_in: input, block_out: output },
        Direction::Backward => Solution { block_in: output, block_out: input },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{BinOp, Cond, FunctionBuilder, Ty};

    /// Reaching-defs style smoke test on a loop:
    /// entry(def0) -> head -> body(def1) -> head; head -> exit.
    #[test]
    fn forward_union_loop() {
        let mut fb = FunctionBuilder::new("f", vec![Ty::I32], None);
        let x = fb.param(0);
        let zero = fb.iconst(Ty::I32, 0);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        fb.cond_br(Cond::Gt, Ty::I32, x, zero, body, exit);
        fb.switch_to(body);
        let one = fb.iconst(Ty::I32, 1);
        fb.bin_to(BinOp::Sub, Ty::I32, x, x, one);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);

        // Universe: {0 = def of x in entry (param), 1 = def of x in body}.
        let mut gen = vec![BitSet::new(2); 4];
        let mut kill = vec![BitSet::new(2); 4];
        gen[0].insert(0);
        kill[0].insert(1);
        gen[2].insert(1);
        kill[2].insert(0);
        let sol = solve(
            &cfg,
            &GenKillProblem {
                direction: Direction::Forward,
                meet: Meet::Union,
                universe: 2,
                gen,
                kill,
                boundary: BitSet::new(2),
            },
        );
        // At the loop head both defs reach.
        assert_eq!(sol.block_in[1].iter().collect::<Vec<_>>(), vec![0, 1]);
        // At the body entry both reach; at its exit only def 1.
        assert_eq!(sol.block_out[2].iter().collect::<Vec<_>>(), vec![1]);
        // At exit both reach.
        assert_eq!(sol.block_in[3].iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    /// Liveness-style backward test on a diamond.
    #[test]
    fn backward_union_diamond() {
        let mut fb = FunctionBuilder::new("f", vec![Ty::I32, Ty::I32], Some(Ty::I32));
        let a = fb.param(0);
        let b = fb.param(1);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        let zero = fb.iconst(Ty::I32, 0);
        fb.cond_br(Cond::Lt, Ty::I32, a, zero, t, e);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(e);
        fb.copy_to(Ty::I32, a, b);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(Some(a));
        let f = fb.finish();
        let cfg = Cfg::compute(&f);

        // Universe: {0 = a live, 1 = b live}.
        let n = cfg.num_blocks();
        let mut gen = vec![BitSet::new(2); n];
        let mut kill = vec![BitSet::new(2); n];
        // join block uses a.
        gen[3].insert(0);
        // else block uses b, then defines a.
        gen[2].insert(1);
        kill[2].insert(0);
        // entry uses a (branch cond).
        gen[0].insert(0);
        let sol = solve(
            &cfg,
            &GenKillProblem {
                direction: Direction::Backward,
                meet: Meet::Union,
                universe: 2,
                gen,
                kill,
                boundary: BitSet::new(2),
            },
        );
        // a is live into then-block; b is live into else-block (a is not,
        // since else redefines it before the join's use).
        assert!(sol.block_in[1].contains(0));
        assert!(sol.block_in[2].contains(1));
        assert!(!sol.block_in[2].contains(0));
        // Into the entry both a (cond) and b (via else path) are live.
        assert!(sol.block_in[0].contains(0));
        assert!(sol.block_in[0].contains(1));
    }
}
