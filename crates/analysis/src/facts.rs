//! Flow-sensitive *available extension facts*: at each program point,
//! which registers are known sign-extended / upper-zero.
//!
//! This forward analysis backs two places in the pipeline:
//!
//! * the 64-bit conversion pass skips generating an `extend` after a
//!   definition "unless the destination operand of the instruction I is
//!   guaranteed to be sign-extended" (paper Fig 5 step 1);
//! * the insertion phase skips inserting before a use "unless its variable
//!   is obviously sign-extended" (paper §2.1).

use sxe_ir::semantics::{def_facts, param_facts};
use sxe_ir::{BlockId, Cfg, ExtFacts, Function, Inst, Reg, Target, Width};

/// Per-block-entry extension facts for every register, at one query width.
#[derive(Debug, Clone)]
pub struct AvailableExt {
    /// `entry[b][r]` = facts of register `r` at the entry of block `b`.
    entry: Vec<Vec<ExtFacts>>,
    target: Target,
    width: Width,
    inherent: bool,
}

impl AvailableExt {
    /// Compute the analysis for `f` at query width `width`.
    #[must_use]
    pub fn compute(f: &Function, cfg: &Cfg, target: Target, width: Width) -> AvailableExt {
        Self::compute_mode(f, cfg, target, width, false)
    }

    /// Like [`AvailableExt::compute`], but explicit `extend`/`justext`
    /// instructions contribute **no** facts of their own (they behave as
    /// plain copies). The result answers "is this value *inherently*
    /// sign-extended, independent of any explicit extension instruction"
    /// — the check behind the insertion phase's "unless its variable is
    /// obviously sign-extended": a value that is extended only because an
    /// extension instruction exists elsewhere should still receive an
    /// inserted extension, so the existing one can be eliminated.
    #[must_use]
    pub fn compute_inherent(f: &Function, cfg: &Cfg, target: Target, width: Width) -> AvailableExt {
        Self::compute_mode(f, cfg, target, width, true)
    }

    fn compute_mode(
        f: &Function,
        cfg: &Cfg,
        target: Target,
        width: Width,
        inherent: bool,
    ) -> AvailableExt {
        let nregs = f.reg_count as usize;
        let nblocks = f.blocks.len();

        // Entry state: parameters carry their convention facts; all other
        // registers are zero-initialized by the machine, and zero is both
        // sign-extended and upper-zero.
        let mut entry_state = vec![ExtFacts::NONNEG; nregs];
        for (i, &(r, ty)) in f.params.iter().enumerate() {
            let _ = i;
            entry_state[r.index()] = param_facts(ty, width);
        }

        // Optimistic (top) initialization elsewhere; meet = pointwise AND.
        let top = vec![ExtFacts::NONNEG; nregs];
        let mut entry: Vec<Vec<ExtFacts>> = vec![top; nblocks];
        entry[0] = entry_state;

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo() {
                // Meet over predecessors' transferred outputs.
                let new_in = if b == BlockId(0) {
                    entry[0].clone()
                } else {
                    let mut acc: Option<Vec<ExtFacts>> = None;
                    for &p in cfg.preds(b) {
                        if !cfg.is_reachable(p) {
                            continue;
                        }
                        let out = transfer_block(f, p, &entry[p.index()], target, width, inherent);
                        acc = Some(match acc {
                            None => out,
                            Some(mut a) => {
                                for (x, y) in a.iter_mut().zip(out) {
                                    *x = x.meet(y);
                                }
                                a
                            }
                        });
                    }
                    acc.unwrap_or_else(|| entry[b.index()].clone())
                };
                if new_in != entry[b.index()] {
                    entry[b.index()] = new_in;
                    changed = true;
                }
            }
        }
        AvailableExt { entry, target, width, inherent }
    }

    /// Facts for `r` at the entry of `b`.
    #[must_use]
    pub fn at_block_entry(&self, b: BlockId, r: Reg) -> ExtFacts {
        self.entry[b.index()][r.index()]
    }

    /// A walker that steps through block `b` instruction by instruction,
    /// exposing the facts in force *before* each instruction.
    #[must_use]
    pub fn walk_block<'a>(&'a self, f: &'a Function, b: BlockId) -> FactsWalker<'a> {
        FactsWalker {
            f,
            b,
            idx: 0,
            state: self.entry[b.index()].clone(),
            target: self.target,
            width: self.width,
            inherent: self.inherent,
        }
    }
}

fn transfer_block(
    f: &Function,
    b: BlockId,
    input: &[ExtFacts],
    target: Target,
    width: Width,
    inherent: bool,
) -> Vec<ExtFacts> {
    let mut state = input.to_vec();
    for inst in &f.block(b).insts {
        transfer_inst(inst, &mut state, target, width, inherent);
    }
    state
}

fn transfer_inst(inst: &Inst, state: &mut [ExtFacts], target: Target, width: Width, inherent: bool) {
    if matches!(inst, Inst::Nop) {
        return;
    }
    if let Some(d) = inst.dst() {
        // In inherent mode, explicit extensions and dummies behave like
        // copies: they pass their source's facts through unchanged.
        let facts = match inst {
            Inst::Extend { src, .. } | Inst::JustExtended { src, .. } if inherent => {
                state[src.index()]
            }
            _ => def_facts(inst, target, width, &mut |r: Reg| state[r.index()]),
        };
        state[d.index()] = facts;
    }
}

/// Iterator-style cursor over one block; see [`AvailableExt::walk_block`].
#[derive(Debug)]
pub struct FactsWalker<'a> {
    f: &'a Function,
    b: BlockId,
    idx: usize,
    state: Vec<ExtFacts>,
    target: Target,
    width: Width,
    inherent: bool,
}

impl FactsWalker<'_> {
    /// Facts for `r` before the instruction the cursor is at.
    #[must_use]
    pub fn facts(&self, r: Reg) -> ExtFacts {
        self.state[r.index()]
    }

    /// Advance past the instruction at the cursor.
    ///
    /// # Panics
    /// Panics when stepping past the end of the block.
    pub fn step(&mut self) {
        let inst = &self.f.block(self.b).insts[self.idx];
        transfer_inst(inst, &mut self.state, self.target, self.width, self.inherent);
        self.idx += 1;
    }

    /// Index of the instruction the cursor is at.
    #[must_use]
    pub fn position(&self) -> usize {
        self.idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_function;

    #[test]
    fn params_are_extended_locals_start_zero() {
        let f = parse_function(
            "func @f(i32, i64) -> i32 {\n\
             b0:\n    r2 = add.i32 r0, r0\n    ret r2\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let av = AvailableExt::compute(&f, &cfg, Target::Ia64, Width::W32);
        assert_eq!(av.at_block_entry(BlockId(0), Reg(0)), ExtFacts::EXTENDED);
        assert_eq!(av.at_block_entry(BlockId(0), Reg(1)), ExtFacts::NONE); // i64 param
        assert_eq!(av.at_block_entry(BlockId(0), Reg(2)), ExtFacts::NONNEG); // zero-init
    }

    #[test]
    fn add_destroys_facts_extend_restores() {
        let f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = add.i32 r0, r0\n    r1 = extend.32 r1\n    ret r1\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let av = AvailableExt::compute(&f, &cfg, Target::Ia64, Width::W32);
        let mut w = av.walk_block(&f, BlockId(0));
        w.step(); // past the add
        assert_eq!(w.facts(Reg(1)), ExtFacts::NONE);
        w.step(); // past the extend
        assert_eq!(w.facts(Reg(1)), ExtFacts::EXTENDED);
    }

    #[test]
    fn loop_meet_loses_facts() {
        // r0 extended at entry (param) but redefined by add in the loop:
        // at the loop head the meet must drop the fact.
        let f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r1 = const.i32 1\n    r0 = add.i32 r0, r1\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    ret r0\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let av = AvailableExt::compute(&f, &cfg, Target::Ia64, Width::W32);
        assert_eq!(av.at_block_entry(BlockId(1), Reg(0)), ExtFacts::NONE);
        assert_eq!(av.at_block_entry(BlockId(2), Reg(0)), ExtFacts::NONE);
    }

    #[test]
    fn loop_invariant_fact_survives() {
        // r0 is extended before the loop and never redefined inside.
        let f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r0 = extend.32 r0\n    br b1\n\
             b1:\n    r1 = add.i32 r1, r0\n    condbr gt.i32 r1, r0, b1, b2\n\
             b2:\n    ret r1\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let av = AvailableExt::compute(&f, &cfg, Target::Ia64, Width::W32);
        assert!(av.at_block_entry(BlockId(1), Reg(0)).sign_extended);
        assert!(av.at_block_entry(BlockId(2), Reg(0)).sign_extended);
    }

    #[test]
    fn inherent_mode_sees_through_extends() {
        // r0 is extended in the loop, so the normal analysis says
        // extended at b2 — but inherently it is not (the fact exists only
        // because of the explicit instruction).
        let f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r2 = const.i32 1\n    r0 = sub.i32 r0, r2\n    r0 = extend.32 r0\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    ret r0\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let normal = AvailableExt::compute(&f, &cfg, Target::Ia64, Width::W32);
        assert!(normal.at_block_entry(BlockId(2), Reg(0)).sign_extended);
        let inherent = AvailableExt::compute_inherent(&f, &cfg, Target::Ia64, Width::W32);
        assert!(!inherent.at_block_entry(BlockId(2), Reg(0)).sign_extended);
        // A parameter that is never overwritten stays inherently extended.
        assert!(inherent.at_block_entry(BlockId(2), Reg(1)).sign_extended);
    }

    #[test]
    fn ia64_load_is_upper_zero() {
        let f = parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r2 = aload.i32 r1, r0\n    ret r2\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        for (target, expect) in [
            (Target::Ia64, ExtFacts::UPPER_ZERO),
            (Target::Ppc64, ExtFacts::EXTENDED),
        ] {
            let av = AvailableExt::compute(&f, &cfg, target, Width::W32);
            let mut w = av.walk_block(&f, BlockId(0));
            w.step();
            w.step();
            assert_eq!(w.facts(Reg(2)), expect, "{target}");
        }
    }
}
