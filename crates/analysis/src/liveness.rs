//! Register liveness (backward dataflow), used by dead-code elimination
//! and by tests.

use sxe_ir::{BlockId, Cfg, Function, Inst, Reg};

use crate::bitset::BitSet;
use crate::dataflow::{solve, Direction, GenKillProblem, Meet};

/// Live-in/live-out register sets per block.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
}

impl Liveness {
    /// Compute liveness for `f`.
    #[must_use]
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let nregs = f.reg_count as usize;
        let n = cfg.num_blocks();
        let mut gen = vec![BitSet::new(nregs); n]; // upward-exposed uses
        let mut kill = vec![BitSet::new(nregs); n]; // defs
        let mut buf = Vec::new();
        for b in f.block_ids() {
            let bi = b.index();
            for inst in &f.block(b).insts {
                if matches!(inst, Inst::Nop) {
                    continue;
                }
                buf.clear();
                inst.collect_uses(&mut buf);
                for &u in &buf {
                    if !kill[bi].contains(u.index()) {
                        gen[bi].insert(u.index());
                    }
                }
                if let Some(d) = inst.dst() {
                    kill[bi].insert(d.index());
                }
            }
        }
        let sol = solve(
            cfg,
            &GenKillProblem {
                direction: Direction::Backward,
                meet: Meet::Union,
                universe: nregs,
                gen,
                kill,
                boundary: BitSet::new(nregs),
            },
        );
        Liveness { live_in: sol.block_in, live_out: sol.block_out }
    }

    /// Registers live at the entry of `b`.
    #[must_use]
    pub fn live_in(&self, b: BlockId) -> &BitSet {
        &self.live_in[b.index()]
    }

    /// Registers live at the exit of `b`.
    #[must_use]
    pub fn live_out(&self, b: BlockId) -> &BitSet {
        &self.live_out[b.index()]
    }

    /// Whether `r` is live at the exit of `b`.
    #[must_use]
    pub fn is_live_out(&self, b: BlockId, r: Reg) -> bool {
        self.live_out[b.index()].contains(r.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_function;

    #[test]
    fn loop_liveness() {
        let f = parse_function(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    r2 = const.i32 0\n    br b1\n\
             b1:\n    r2 = add.i32 r2, r0\n    r3 = const.i32 1\n    r0 = sub.i32 r0, r3\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    ret r2\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        // r0 (counter), r1 (bound), r2 (acc) live around the loop.
        assert!(lv.is_live_out(BlockId(1), Reg(0)));
        assert!(lv.is_live_out(BlockId(1), Reg(1)));
        assert!(lv.is_live_out(BlockId(1), Reg(2)));
        // r3 is block-local.
        assert!(!lv.is_live_out(BlockId(1), Reg(3)));
        // Only r2 is live into the exit block.
        assert!(lv.live_in(BlockId(2)).contains(2));
        assert!(!lv.live_in(BlockId(2)).contains(0));
    }

    #[test]
    fn dead_def_not_live() {
        let f = parse_function(
            "func @g(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 9\n    ret r0\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.live_in(BlockId(0)).contains(1));
        assert!(lv.live_in(BlockId(0)).contains(0));
    }
}
