//! Execution-frequency estimation for basic blocks (paper §2.2).
//!
//! "For each basic block B, this can be estimated from both the loop
//! nesting level of B and the execution frequency of B within its acyclic
//! region based on the probability of each conditional branch.
//! Additionally, we use profile information collected for conditional
//! branches by our combined interpreter and dynamic compiler."
//!
//! [`Freq::estimate`] implements the static estimate (each loop level
//! multiplies by [`LOOP_MULTIPLIER`], conditional branches split their
//! probability evenly); [`Freq::from_counts`] wraps exact block counts
//! collected by the interpreter (`sxe-vm` profile mode).

use sxe_ir::{BlockId, Cfg, LoopForest};

/// Static weight multiplier per loop-nesting level.
pub const LOOP_MULTIPLIER: f64 = 10.0;

/// Estimated (or measured) execution frequency per basic block.
#[derive(Debug, Clone)]
pub struct Freq {
    freq: Vec<f64>,
}

impl Freq {
    /// Statically estimate frequencies from loop nesting and branch
    /// probabilities.
    #[must_use]
    pub fn estimate(cfg: &Cfg, loops: &LoopForest) -> Freq {
        let n = cfg.num_blocks();
        // Acyclic propagation: ignore back edges (edges to a block with a
        // smaller-or-equal RPO index that is a loop header), split
        // probability evenly among the remaining successors.
        let mut p = vec![0.0f64; n];
        if let Some(&entry) = cfg.rpo().first() {
            p[entry.index()] = 1.0;
        }
        for &b in cfg.rpo() {
            let weight = p[b.index()];
            if weight == 0.0 {
                continue;
            }
            let succs = cfg.succs(b);
            if succs.is_empty() {
                continue;
            }
            let share = weight / succs.len() as f64;
            for &s in succs {
                let is_back_edge = cfg
                    .rpo_index(s)
                    .zip(cfg.rpo_index(b))
                    .is_some_and(|(si, bi)| si <= bi);
                if !is_back_edge {
                    p[s.index()] += share;
                }
            }
        }
        // Headers may receive probability only through back edges in
        // degenerate shapes; give every reachable block a floor so the
        // loop multiplier still orders them sensibly.
        let freq = (0..n)
            .map(|i| {
                let b = BlockId(i as u32);
                if !cfg.is_reachable(b) {
                    return 0.0;
                }
                let base = p[i].max(1.0e-6);
                base * LOOP_MULTIPLIER.powi(loops.depth(b) as i32)
            })
            .collect();
        Freq { freq }
    }

    /// Wrap measured block execution counts (profile-guided mode).
    ///
    /// # Panics
    /// Panics if `counts` is empty.
    #[must_use]
    pub fn from_counts(counts: &[u64]) -> Freq {
        assert!(!counts.is_empty(), "need at least one block");
        Freq { freq: counts.iter().map(|&c| c as f64).collect() }
    }

    /// The frequency of block `b` (0 for unreachable blocks).
    #[must_use]
    pub fn of(&self, b: BlockId) -> f64 {
        self.freq.get(b.index()).copied().unwrap_or(0.0)
    }

    /// Number of blocks covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.freq.len()
    }

    /// Whether no blocks are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.freq.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, DomTree};

    fn freqs(src: &str) -> (Freq, usize) {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let loops = LoopForest::compute(&cfg, &dom);
        let n = cfg.num_blocks();
        (Freq::estimate(&cfg, &loops), n)
    }

    #[test]
    fn loop_body_hotter_than_exit() {
        let (fr, _) = freqs(
            "func @f(i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r1 = const.i32 1\n    r0 = sub.i32 r0, r1\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    ret r0\n}\n",
        );
        assert!(fr.of(BlockId(1)) > fr.of(BlockId(0)));
        assert!(fr.of(BlockId(1)) > fr.of(BlockId(2)));
    }

    #[test]
    fn nested_loop_hotter_than_outer() {
        let (fr, _) = freqs(
            "func @f(i32, i32) {\n\
             b0:\n    br b1\n\
             b1:\n    condbr gt.i32 r0, r1, b2, b5\n\
             b2:\n    br b3\n\
             b3:\n    condbr gt.i32 r1, r0, b3, b4\n\
             b4:\n    br b1\n\
             b5:\n    ret\n}\n",
        );
        assert!(fr.of(BlockId(3)) > fr.of(BlockId(2)));
        assert!(fr.of(BlockId(2)) > fr.of(BlockId(0)));
        assert!(fr.of(BlockId(5)) < fr.of(BlockId(1)));
    }

    #[test]
    fn diamond_arms_split_probability() {
        let (fr, _) = freqs(
            "func @f(i32) {\n\
             b0:\n    condbr gt.i32 r0, r0, b1, b2\n\
             b1:\n    br b3\n\
             b2:\n    br b3\n\
             b3:\n    ret\n}\n",
        );
        assert!((fr.of(BlockId(1)) - 0.5).abs() < 1e-9);
        assert!((fr.of(BlockId(2)) - 0.5).abs() < 1e-9);
        assert!((fr.of(BlockId(3)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_counts_override() {
        let fr = Freq::from_counts(&[1, 1000, 5]);
        assert_eq!(fr.of(BlockId(1)), 1000.0);
        assert_eq!(fr.of(BlockId(2)), 5.0);
        assert_eq!(fr.len(), 3);
    }
}
