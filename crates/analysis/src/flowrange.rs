//! Flow-sensitive symbolic range propagation (the paper's reference [4],
//! Blume & Eigenmann) with branch refinement.
//!
//! A forward abstract interpretation over [`Interval`]s of the **low 32
//! bits as `i32`** of every register, with:
//!
//! * per-instruction transfer functions shared with the UD-chain
//!   [`RangeAnalysis`](crate::RangeAnalysis);
//! * refinement on conditional edges: after `if (i < n)` the true edge
//!   knows `i <= n.hi - 1` — which is what bounds loop induction
//!   variables (`for (i = 0; i < n; i++)` gives `i ∈ [0, n-1]` in the
//!   body);
//! * widening after a bounded number of visits per block, so the
//!   fixpoint terminates quickly.
//!
//! Soundness note: intervals describe low-32 values, which no
//! sign-extension instruction changes — so a state computed once remains
//! valid while extensions are inserted or deleted.

use sxe_ir::{Cfg, Cond, Function, Inst, Reg, Ty, UnOp};

use crate::range::{binop_range, Interval};

/// Per-block-entry intervals for every register.
#[derive(Debug, Clone)]
pub struct FlowRanges {
    entry: Vec<Vec<Interval>>,
}

/// How many times a block may be revisited before widening kicks in.
const WIDEN_AFTER: u32 = 3;

impl FlowRanges {
    /// Compute the analysis for `f`.
    #[must_use]
    pub fn compute(f: &Function, cfg: &Cfg) -> FlowRanges {
        let nregs = f.reg_count as usize;
        let nblocks = f.blocks.len();
        // Registers start at 0 (machine zero-initialization); parameters
        // are unknown.
        let mut entry_state = vec![Interval::constant(0); nregs];
        for &(r, _) in &f.params {
            entry_state[r.index()] = Interval::TOP;
        }

        // `None` = unreached so far (bottom).
        let mut entry: Vec<Option<Vec<Interval>>> = vec![None; nblocks];
        entry[0] = Some(entry_state);
        let mut visits = vec![0u32; nblocks];
        // Widening points: back-edge targets (loop headers). Widening at
        // arbitrary joins would wipe out edge refinements.
        let mut is_header = vec![false; nblocks];
        for b in f.block_ids() {
            if let Some(bi) = cfg.rpo_index(b) {
                for &s2 in cfg.succs(b) {
                    if cfg.rpo_index(s2).is_some_and(|si| si <= bi) {
                        is_header[s2.index()] = true;
                    }
                }
            }
        }

        let mut work: Vec<usize> = vec![0];
        while let Some(bi) = work.pop() {
            let state = entry[bi].clone().expect("queued blocks are reached");
            // Transfer through the block, then propagate along each edge
            // with branch refinement.
            let mut out = state;
            let b = sxe_ir::BlockId(bi as u32);
            for inst in &f.block(b).insts {
                transfer(inst, &mut out);
            }
            let term = f.block(b).insts.last();
            for &succ in cfg.succs(b).iter() {
                let mut edge_state = out.clone();
                if let Some(Inst::CondBr { cond, ty, lhs, rhs, then_bb, else_bb }) = term {
                    if *ty != Ty::F64 && *ty != Ty::I64 {
                        let taken = if succ == *then_bb { Some(*cond) } else { None };
                        let not_taken =
                            if succ == *else_bb { Some(cond.negated()) } else { None };
                        // (When then == else, both apply; refine with the
                        // taken sense only — conservative.)
                        if let Some(c) = taken.or(not_taken) {
                            refine(&mut edge_state, c, *lhs, *rhs);
                        }
                    }
                }
                let si = succ.index();
                let changed = match &mut entry[si] {
                    None => {
                        entry[si] = Some(edge_state);
                        true
                    }
                    Some(cur) => {
                        let mut any = false;
                        for (c, n) in cur.iter_mut().zip(&edge_state) {
                            let joined = c.join(*n);
                            let widened = if is_header[si] && visits[si] >= WIDEN_AFTER {
                                widen(*c, joined)
                            } else {
                                joined
                            };
                            if widened != *c {
                                *c = widened;
                                any = true;
                            }
                        }
                        any
                    }
                };
                if changed {
                    visits[si] += 1;
                    if !work.contains(&si) {
                        work.push(si);
                    }
                }
            }
        }

        FlowRanges {
            entry: entry
                .into_iter()
                .map(|s| s.unwrap_or_else(|| vec![Interval::TOP; nregs]))
                .collect(),
        }
    }

    /// Interval of `r` at the entry of block `b`.
    #[must_use]
    pub fn at_block_entry(&self, b: sxe_ir::BlockId, r: Reg) -> Interval {
        self.entry[b.index()][r.index()]
    }

    /// Intervals in force immediately **before** instruction `index` of
    /// block `b` (recomputed by walking the block).
    #[must_use]
    pub fn before_inst(&self, f: &Function, b: sxe_ir::BlockId, index: usize) -> Vec<Interval> {
        let mut state = self.entry[b.index()].clone();
        for inst in f.block(b).insts.iter().take(index) {
            transfer(inst, &mut state);
        }
        state
    }

    /// Materialize the per-instruction states of one block:
    /// `result[i][r]` is the interval of register `r` immediately before
    /// instruction `i`.
    ///
    /// Deleting or inserting sign extensions does not change low-32
    /// values, so one materialization remains valid across an entire
    /// elimination run.
    #[must_use]
    pub fn materialize_block(&self, f: &Function, b: sxe_ir::BlockId) -> Vec<Vec<Interval>> {
        let mut state = self.entry[b.index()].clone();
        let insts = &f.block(b).insts;
        let mut per_inst = Vec::with_capacity(insts.len());
        for inst in insts {
            per_inst.push(state.clone());
            transfer(inst, &mut state);
        }
        per_inst
    }
}

/// Widening thresholds (absolute magnitudes). Jumping to the next rung
/// instead of straight to ±∞ keeps a growing bound *below* the i32
/// overflow point long enough for branch refinements elsewhere in the
/// loop nest to stabilize the system — otherwise an incremented
/// already-widened counter wraps to TOP and poisons every lower bound it
/// joins with.
const RUNGS: [i64; 6] = [
    0xFF,
    0xFFFF,
    1 << 24,
    (1 << 30) - 1,
    i32::MAX as i64 - 1,
    i32::MAX as i64,
];

fn widen(old: Interval, new: Interval) -> Interval {
    let hi = if new.hi > old.hi {
        RUNGS
            .iter()
            .copied()
            .find(|&t| t >= new.hi)
            .unwrap_or(i32::MAX as i64)
    } else {
        new.hi
    };
    let lo = if new.lo < old.lo {
        RUNGS
            .iter()
            .copied()
            .find(|&t| -t <= new.lo)
            .map(|t| -t)
            .unwrap_or(i32::MIN as i64)
            .max(i32::MIN as i64)
    } else {
        new.lo
    };
    Interval { lo, hi }
}

/// Intersect `i` with the half-line demanded by `cond` against `bound`.
fn apply_signed(i: Interval, cond: Cond, bound: Interval) -> Interval {
    let (lo, hi) = match cond {
        Cond::Lt => (i.lo, i.hi.min(bound.hi - 1)),
        Cond::Le => (i.lo, i.hi.min(bound.hi)),
        Cond::Gt => (i.lo.max(bound.lo + 1), i.hi),
        Cond::Ge => (i.lo.max(bound.lo), i.hi),
        Cond::Eq => (i.lo.max(bound.lo), i.hi.min(bound.hi)),
        // Ne and the unsigned conditions carry no convex information
        // usable here (unsigned compares see a different order).
        _ => (i.lo, i.hi),
    };
    if lo > hi {
        // Contradiction: the edge is unreachable for these values; any
        // sound answer works, keep it tight.
        Interval { lo, hi: lo }
    } else {
        Interval { lo, hi }
    }
}

fn refine(state: &mut [Interval], cond: Cond, lhs: Reg, rhs: Reg) {
    let l = state[lhs.index()];
    let r = state[rhs.index()];
    state[lhs.index()] = apply_signed(l, cond, r);
    state[rhs.index()] = apply_signed(r, cond.swapped(), l);
}

/// Per-instruction interval transfer (low-32 semantics).
fn transfer(inst: &Inst, state: &mut [Interval]) {
    let get = |state: &[Interval], r: Reg| state[r.index()];
    let set = |state: &mut [Interval], r: Reg, v: Interval| state[r.index()] = v;
    match *inst {
        Inst::Const { dst, value, .. } => set(state, dst, Interval::constant(value as i32)),
        Inst::Copy { dst, src, ty } if ty != Ty::F64 => {
            let v = get(state, src);
            set(state, dst, v);
        }
        Inst::Extend { dst, src, from } | Inst::JustExtended { dst, src, from } => {
            let v = match from.bits() {
                32 => get(state, src),
                16 => Interval::new(i16::MIN as i64, i16::MAX as i64),
                _ => Interval::new(i8::MIN as i64, i8::MAX as i64),
            };
            set(state, dst, v);
        }
        Inst::Setcc { dst, .. } => set(state, dst, Interval::new(0, 1)),
        Inst::ArrayLen { dst, .. } => set(state, dst, Interval::new(0, i32::MAX as i64)),
        Inst::ArrayLoad { dst, elem, .. } => {
            let v = match elem {
                Ty::I8 => Interval::new(i8::MIN as i64, i8::MAX as i64),
                Ty::I16 => Interval::new(i16::MIN as i64, i16::MAX as i64),
                _ => Interval::TOP,
            };
            set(state, dst, v);
        }
        Inst::Un { op, ty, dst, src } => {
            let s = get(state, src);
            let v = match op {
                UnOp::Zext(w) => match w.bits() {
                    8 => Interval::new(0, 0xFF),
                    16 => Interval::new(0, 0xFFFF),
                    _ => s,
                },
                UnOp::Neg if ty != Ty::F64 => {
                    if s.lo == i32::MIN as i64 {
                        Interval::TOP
                    } else {
                        Interval::new((-s.hi).max(i32::MIN as i64), (-s.lo).min(i32::MAX as i64))
                    }
                }
                UnOp::Not if ty != Ty::F64 => {
                    Interval::new(
                        (-s.hi - 1).max(i32::MIN as i64),
                        (-s.lo - 1).min(i32::MAX as i64),
                    )
                }
                _ => Interval::TOP,
            };
            set(state, dst, v);
        }
        Inst::Bin { op, ty, dst, lhs, rhs } if ty != Ty::F64 => {
            // Div/Rem/Shr (and 64-bit Shru) read the FULL register: their
            // low-32 result depends on upper bits this analysis does not
            // track, so [`binop_range`]'s rules for them are valid only
            // under an operand-extension guard the flow analysis cannot
            // provide. Stay conservative here; the guarded consumers in
            // the eliminator recompute those rules themselves.
            use sxe_ir::BinOp;
            let full_register_read = matches!(op, BinOp::Div | BinOp::Rem | BinOp::Shr)
                || (op == BinOp::Shru && ty == Ty::I64);
            let v = if full_register_read {
                Interval::TOP
            } else {
                binop_range(op, ty, get(state, lhs), get(state, rhs))
            };
            set(state, dst, v);
        }
        _ => {
            if let Some(d) = inst.dst() {
                set(state, d, Interval::TOP);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId};

    fn ranges(src: &str) -> (Function, FlowRanges) {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::compute(&f);
        let fr = FlowRanges::compute(&f, &cfg);
        (f, fr)
    }

    #[test]
    fn counted_loop_bounds_induction_variable() {
        // for (i = 0; i < 100; i++) body(i)
        let (f, fr) = ranges(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 0\n    r1 = const.i32 100\n    br b1\n\
             b1:\n    condbr lt.i32 r0, r1, b2, b3\n\
             b2:\n    r2 = const.i32 1\n    r0 = add.i32 r0, r2\n    br b1\n\
             b3:\n    ret r0\n}\n",
        );
        let _ = f;
        // In the body, i ∈ [0, 99].
        assert_eq!(fr.at_block_entry(BlockId(2), sxe_ir::Reg(0)), Interval::new(0, 99));
        // At the exit, i >= 100 (and bounded by the increment: 100).
        let exit = fr.at_block_entry(BlockId(3), sxe_ir::Reg(0));
        assert!(exit.lo >= 100, "{exit:?}");
    }

    #[test]
    fn countdown_loop_bounds() {
        // for (i = n; i > 0; i--) with n unknown: body knows i >= 1.
        let (_, fr) = ranges(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    br b1\n\
             b1:\n    condbr gt.i32 r0, r1, b2, b3\n\
             b2:\n    r2 = const.i32 1\n    r0 = sub.i32 r0, r2\n    br b1\n\
             b3:\n    ret r0\n}\n",
        );
        let body = fr.at_block_entry(BlockId(2), sxe_ir::Reg(0));
        assert!(body.lo >= 1, "{body:?}");
    }

    #[test]
    fn widening_terminates_and_is_sound() {
        // An unbounded accumulator: must reach TOP-ish, not hang.
        let (_, fr) = ranges(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    br b1\n\
             b1:\n    r2 = const.i32 3\n    r1 = add.i32 r1, r2\n    condbr lt.i32 r1, r0, b1, b2\n\
             b2:\n    ret r1\n}\n",
        );
        let h = fr.at_block_entry(BlockId(1), sxe_ir::Reg(1));
        // The accumulator is unbounded: the upper bound must climb the
        // widening ladder to (at least) i32::MAX - 1 — the point is
        // termination with a sound bound.
        assert!(h.hi >= i32::MAX as i64 - 1, "{h:?}");
    }

    #[test]
    fn zero_initialized_locals() {
        let (_, fr) = ranges(
            "func @f(i32) -> i32 {\n\
             b0:\n    ret r1\n}\n",
        );
        assert_eq!(fr.at_block_entry(BlockId(0), sxe_ir::Reg(1)), Interval::constant(0));
        assert!(fr.at_block_entry(BlockId(0), sxe_ir::Reg(0)).is_top());
    }

    #[test]
    fn before_inst_walks_the_block() {
        let (f, fr) = ranges(
            "func @f() -> i32 {\n\
             b0:\n    r0 = const.i32 5\n    r1 = add.i32 r0, r0\n    ret r1\n}\n",
        );
        let st = fr.before_inst(&f, BlockId(0), 2);
        assert_eq!(st[1], Interval::constant(10));
    }

    #[test]
    fn unsigned_conditions_ignored() {
        // ult must not produce signed bounds.
        let (_, fr) = ranges(
            "func @f(i32, i32) -> i32 {\n\
             b0:\n    condbr ult.i32 r0, r1, b1, b2\n\
             b1:\n    ret r0\n\
             b2:\n    ret r1\n}\n",
        );
        assert!(fr.at_block_entry(BlockId(1), sxe_ir::Reg(0)).is_top());
    }
}
