//! Reaching definitions and UD/DU chains.
//!
//! The paper's elimination operates on UD/DU chains ("It utilizes UD/DU
//! chains for the above two goals"). Chains are built once after the
//! insertion phase and then maintained *incrementally* as extensions are
//! deleted: removing a transparent definition like `r = extend(r)` splices
//! the definitions that reached the extension into every use the extension
//! reached.

use std::collections::{BTreeMap, BTreeSet};

use sxe_ir::{Cfg, Function, Inst, InstId, Reg};

use crate::bitset::BitSet;
use crate::dataflow::{solve, Direction, GenKillProblem, Meet};

/// Identifies one definition site in [`UdDu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DefId(pub u32);

impl DefId {
    /// Index into dense tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a definition comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// The `i`-th function parameter (defined at entry, sign-extended per
    /// the calling convention if narrow).
    Param(usize),
    /// An instruction.
    Inst(InstId),
}

/// A use site: instruction plus the register it reads. One key covers all
/// operand slots of that register in the instruction.
pub type UseKey = (InstId, Reg);

/// UD/DU chains for one function.
#[derive(Debug, Clone)]
pub struct UdDu {
    defs: Vec<DefSite>,
    def_reg: Vec<Reg>,
    removed: Vec<bool>,
    def_of_inst: BTreeMap<InstId, DefId>,
    ud: BTreeMap<UseKey, BTreeSet<DefId>>,
    du: Vec<BTreeSet<UseKey>>,
}

impl UdDu {
    /// Build the chains for `f` using reaching-definitions dataflow.
    #[must_use]
    pub fn compute(f: &Function, cfg: &Cfg) -> UdDu {
        // Enumerate definition sites: parameters first, then instructions.
        let mut defs: Vec<DefSite> = Vec::new();
        let mut def_reg: Vec<Reg> = Vec::new();
        let mut def_of_inst: BTreeMap<InstId, DefId> = BTreeMap::new();
        for (i, &(r, _)) in f.params.iter().enumerate() {
            defs.push(DefSite::Param(i));
            def_reg.push(r);
        }
        for (id, inst) in f.insts() {
            if let Some(d) = inst.dst() {
                def_of_inst.insert(id, DefId(defs.len() as u32));
                defs.push(DefSite::Inst(id));
                def_reg.push(d);
            }
        }
        let universe = defs.len();

        // Per-register def sets.
        let mut defs_of_reg: BTreeMap<Reg, BitSet> = BTreeMap::new();
        for (i, &r) in def_reg.iter().enumerate() {
            defs_of_reg
                .entry(r)
                .or_insert_with(|| BitSet::new(universe))
                .insert(i);
        }

        // Gen/kill per block.
        let n = cfg.num_blocks();
        let mut gen = vec![BitSet::new(universe); n];
        let mut kill = vec![BitSet::new(universe); n];
        for b in f.block_ids() {
            let bi = b.index();
            for (i, inst) in f.block(b).insts.iter().enumerate() {
                if inst.dst().is_some() {
                    let id = InstId::new(b, i);
                    let d = def_of_inst[&id];
                    let r = def_reg[d.index()];
                    let all = &defs_of_reg[&r];
                    // This def kills every other def of r and supersedes
                    // any earlier gen of r in this block.
                    gen[bi].subtract(all);
                    kill[bi].union_with(all);
                    gen[bi].insert(d.index());
                }
            }
        }

        // Boundary: parameter defs reach the entry.
        let mut boundary = BitSet::new(universe);
        for i in 0..f.params.len() {
            boundary.insert(i);
        }

        let sol = solve(
            cfg,
            &GenKillProblem {
                direction: Direction::Forward,
                meet: Meet::Union,
                universe,
                gen,
                kill,
                boundary,
            },
        );

        // Walk each block computing per-use chains.
        let mut ud: BTreeMap<UseKey, BTreeSet<DefId>> = BTreeMap::new();
        let mut du: Vec<BTreeSet<UseKey>> = vec![BTreeSet::new(); universe];
        let mut use_buf: Vec<Reg> = Vec::new();
        for b in f.block_ids() {
            if !cfg.is_reachable(b) {
                continue;
            }
            let mut current = sol.block_in[b.index()].clone();
            for (i, inst) in f.block(b).insts.iter().enumerate() {
                if matches!(inst, Inst::Nop) {
                    continue;
                }
                let id = InstId::new(b, i);
                use_buf.clear();
                inst.collect_uses(&mut use_buf);
                use_buf.sort_unstable();
                use_buf.dedup();
                for &r in &use_buf {
                    let Some(all) = defs_of_reg.get(&r) else { continue };
                    let mut reaching = current.clone();
                    reaching.intersect_with(all);
                    let set: BTreeSet<DefId> =
                        reaching.iter().map(|i| DefId(i as u32)).collect();
                    for &d in &set {
                        du[d.index()].insert((id, r));
                    }
                    ud.insert((id, r), set);
                }
                if inst.dst().is_some() {
                    let d = def_of_inst[&id];
                    let r = def_reg[d.index()];
                    current.subtract(&defs_of_reg[&r]);
                    current.insert(d.index());
                }
            }
        }

        UdDu {
            removed: vec![false; defs.len()],
            defs,
            def_reg,
            def_of_inst,
            ud,
            du,
        }
    }

    /// The definition made by instruction `id`, if it defines a register
    /// and has not been removed.
    #[must_use]
    pub fn def_of_inst(&self, id: InstId) -> Option<DefId> {
        self.def_of_inst
            .get(&id)
            .copied()
            .filter(|d| !self.removed[d.index()])
    }

    /// Where definition `d` comes from.
    ///
    /// # Panics
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn site(&self, d: DefId) -> DefSite {
        self.defs[d.index()]
    }

    /// The register defined by `d`.
    ///
    /// # Panics
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn reg_of(&self, d: DefId) -> Reg {
        self.def_reg[d.index()]
    }

    /// Definitions reaching the use of `reg` at `inst` (empty if `inst`
    /// does not use `reg` or the block is unreachable).
    #[must_use]
    pub fn defs_reaching(&self, inst: InstId, reg: Reg) -> BTreeSet<DefId> {
        self.ud.get(&(inst, reg)).cloned().unwrap_or_default()
    }

    /// Use sites reached by definition `d`.
    ///
    /// # Panics
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn uses_of(&self, d: DefId) -> BTreeSet<UseKey> {
        self.du[d.index()].clone()
    }

    /// Total number of definition sites (including removed ones).
    #[must_use]
    pub fn num_defs(&self) -> usize {
        self.defs.len()
    }

    /// Whether `d` has been removed by [`UdDu::remove_transparent_def`].
    #[must_use]
    pub fn is_removed(&self, d: DefId) -> bool {
        self.removed[d.index()]
    }

    /// Incrementally remove a *transparent* definition: an instruction
    /// like `r = extend(r)` or `r = justext(r)` whose destination equals
    /// its (single) source. The definitions that reached the instruction
    /// are spliced into every use the instruction's definition reached.
    ///
    /// The caller is responsible for tombstoning the instruction in the
    /// [`Function`] (see [`Function::delete_inst`]).
    ///
    /// # Panics
    /// Panics if `id` does not define a register, was already removed, or
    /// is not of the `dst == src` transparent shape.
    pub fn remove_transparent_def(&mut self, f: &Function, id: InstId) {
        let inst = f.inst(id);
        let (dst, src) = match *inst {
            Inst::Extend { dst, src, .. }
            | Inst::JustExtended { dst, src, .. }
            | Inst::Copy { dst, src, .. } => (dst, src),
            ref other => panic!("not a transparent def at {id}: {other:?}"),
        };
        assert_eq!(dst, src, "transparent def must have dst == src at {id}");
        let r = dst;
        let e_def = self.def_of_inst.get(&id).copied().expect("defines a register");
        assert!(!self.removed[e_def.index()], "{id} already removed");

        // Defs feeding the extension (may include e_def itself via a loop
        // back edge; drop it — after removal it no longer exists).
        let mut feeding = self.ud.remove(&(id, r)).unwrap_or_default();
        feeding.remove(&e_def);
        // Uses the extension's def reached (exclude its own use key).
        let mut consumers = std::mem::take(&mut self.du[e_def.index()]);
        consumers.remove(&(id, r));

        for &u in &consumers {
            let entry = self.ud.entry(u).or_default();
            entry.remove(&e_def);
            entry.extend(feeding.iter().copied());
        }
        for &d in &feeding {
            let du = &mut self.du[d.index()];
            du.remove(&(id, r));
            du.extend(consumers.iter().copied());
        }
        self.removed[e_def.index()] = true;
        self.def_of_inst.remove(&id);
    }

    /// Flatten the chains into a canonical set of `(def site, use site)`
    /// edges for comparison in tests.
    #[must_use]
    pub fn edges(&self) -> BTreeSet<(String, UseKey)> {
        let mut out = BTreeSet::new();
        for (d, uses) in self.du.iter().enumerate() {
            if self.removed[d] {
                continue;
            }
            let site = match self.defs[d] {
                DefSite::Param(i) => format!("param{i}"),
                DefSite::Inst(id) => format!("{id}"),
            };
            for &u in uses {
                out.insert((site.clone(), u));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId, Width};

    const LOOP: &str = "\
func @f(i32) -> i32 {
b0:
    r1 = const.i32 0
    br b1
b1:
    r2 = const.i32 1
    r0 = sub.i32 r0, r2
    r0 = extend.32 r0
    r1 = add.i32 r1, r0
    condbr gt.i32 r0, r2, b1, b2
b2:
    ret r1
}
";

    fn setup() -> (Function, Cfg, UdDu) {
        let f = parse_function(LOOP).unwrap();
        let cfg = Cfg::compute(&f);
        let udu = UdDu::compute(&f, &cfg);
        (f, cfg, udu)
    }

    #[test]
    fn param_def_reaches_first_use() {
        let (_, _, udu) = setup();
        // The `sub` at b1:1 uses r0; reaching defs are the param and the
        // extend at b1:2 (via the back edge).
        let sub_id = InstId::new(BlockId(1), 1);
        let defs = udu.defs_reaching(sub_id, Reg(0));
        let sites: Vec<DefSite> = defs.iter().map(|&d| udu.site(d)).collect();
        assert_eq!(sites.len(), 2);
        assert!(sites.contains(&DefSite::Param(0)));
        assert!(sites.contains(&DefSite::Inst(InstId::new(BlockId(1), 2))));
    }

    #[test]
    fn extend_def_reaches_loop_uses() {
        let (_, _, udu) = setup();
        let ext_id = InstId::new(BlockId(1), 2);
        let d = udu.def_of_inst(ext_id).unwrap();
        let uses = udu.uses_of(d);
        // extend's r0 reaches: add (b1:3), condbr (b1:4), sub (b1:1 via
        // back edge).
        assert!(uses.contains(&(InstId::new(BlockId(1), 3), Reg(0))));
        assert!(uses.contains(&(InstId::new(BlockId(1), 4), Reg(0))));
        assert!(uses.contains(&(InstId::new(BlockId(1), 1), Reg(0))));
        assert_eq!(uses.len(), 3);
    }

    #[test]
    fn removal_matches_recompute() {
        let (mut f, cfg, mut udu) = setup();
        let ext_id = InstId::new(BlockId(1), 2);
        udu.remove_transparent_def(&f, ext_id);
        f.delete_inst(ext_id);
        let fresh = UdDu::compute(&f, &cfg);
        assert_eq!(udu.edges(), fresh.edges());
    }

    #[test]
    fn removal_splices_defs() {
        let (f, _, mut udu) = setup();
        let ext_id = InstId::new(BlockId(1), 2);
        udu.remove_transparent_def(&f, ext_id);
        // Now the sub's def (b1:1) directly reaches the add and the branch.
        let sub_def = udu.def_of_inst(InstId::new(BlockId(1), 1)).unwrap();
        let uses = udu.uses_of(sub_def);
        assert!(uses.contains(&(InstId::new(BlockId(1), 3), Reg(0))));
        assert!(uses.contains(&(InstId::new(BlockId(1), 4), Reg(0))));
        // And the param def reaches the sub (unchanged) but the extension
        // def is gone.
        assert!(udu.def_of_inst(ext_id).is_none());
    }

    #[test]
    fn self_reaching_extend_removal() {
        // A loop where the extend is the only def of r0 inside the loop:
        // its def reaches its own use around the back edge.
        let f = parse_function(
            "func @g(i32) -> i32 {\n\
             b0:\n    br b1\n\
             b1:\n    r0 = extend.32 r0\n    condbr gt.i32 r0, r0, b1, b2\n\
             b2:\n    ret r0\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let mut udu = UdDu::compute(&f, &cfg);
        let ext_id = InstId::new(BlockId(1), 0);
        let d = udu.def_of_inst(ext_id).unwrap();
        assert!(udu.uses_of(d).contains(&(ext_id, Reg(0))));
        let mut f2 = f.clone();
        udu.remove_transparent_def(&f2, ext_id);
        f2.delete_inst(ext_id);
        let fresh = UdDu::compute(&f2, &cfg);
        assert_eq!(udu.edges(), fresh.edges());
    }

    #[test]
    fn multiple_extends_in_sequence() {
        let f = parse_function(
            "func @h(i32) -> i32 {\n\
             b0:\n    r0 = extend.32 r0\n    r0 = extend.32 r0\n    ret r0\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let mut udu = UdDu::compute(&f, &cfg);
        let e1 = InstId::new(BlockId(0), 0);
        let e2 = InstId::new(BlockId(0), 1);
        // Remove the second first: the ret should then be fed by e1.
        let mut f2 = f.clone();
        udu.remove_transparent_def(&f2, e2);
        f2.delete_inst(e2);
        let ret_defs = udu.defs_reaching(InstId::new(BlockId(0), 2), Reg(0));
        assert_eq!(ret_defs.len(), 1);
        assert_eq!(udu.site(*ret_defs.iter().next().unwrap()), DefSite::Inst(e1));
        // Then remove the first: the ret is fed by the parameter.
        udu.remove_transparent_def(&f2, e1);
        f2.delete_inst(e1);
        let ret_defs = udu.defs_reaching(InstId::new(BlockId(0), 2), Reg(0));
        assert_eq!(ret_defs.len(), 1);
        assert_eq!(udu.site(*ret_defs.iter().next().unwrap()), DefSite::Param(0));
        let fresh = UdDu::compute(&f2, &cfg);
        assert_eq!(udu.edges(), fresh.edges());
    }

    #[test]
    #[should_panic(expected = "transparent")]
    fn non_transparent_removal_panics() {
        let f = parse_function(
            "func @x(i32) -> i32 {\n\
             b0:\n    r1 = extend.32 r0\n    ret r1\n}\n",
        )
        .unwrap();
        let cfg = Cfg::compute(&f);
        let mut udu = UdDu::compute(&f, &cfg);
        udu.remove_transparent_def(&f, InstId::new(BlockId(0), 0));
        let _ = Width::W32;
    }
}
