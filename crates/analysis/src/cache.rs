//! Memoized per-function analysis facts with generation-based
//! invalidation.
//!
//! The compilation pipeline recomputes [`Cfg`], [`Liveness`], and UD/DU
//! chains over and over: every fixpoint round of the general optimizer
//! and every step-3 stage historically called `*::compute` from scratch,
//! even when the function had not changed since the previous query — the
//! per-method JIT-cost concern that motivates the paper's Table 3
//! split. [`AnalysisCache`] memoizes those facts per function:
//!
//! * a query ([`cfg`](AnalysisCache::cfg), [`liveness`](AnalysisCache::liveness),
//!   [`udu`](AnalysisCache::udu)) returns the memoized fact when the
//!   function is unchanged, and recomputes (then re-memoizes) otherwise;
//! * each rewriting pass bumps the function's *generation*
//!   ([`note_rewrites`](AnalysisCache::note_rewrites) /
//!   [`invalidate`](AnalysisCache::invalidate)), dropping the facts;
//! * as a safety net, every query also validates the entry against
//!   [`Function::fingerprint`], so a pass that forgets to invalidate
//!   (or a rollback that restores an older body) can never be served
//!   stale facts — the mismatch is detected and counted as an
//!   invalidation of its own.
//!
//! The cache is deliberately *not* shared between threads: a sharded
//! compilation gives each worker its own cache (functions are
//! partitioned across workers, so sharing would buy nothing and cost a
//! lock).
//!
//! ```
//! use sxe_ir::parse_function;
//! use sxe_analysis::AnalysisCache;
//!
//! let f = parse_function("func @f(i32) -> i32 {\nb0:\n    ret r0\n}\n")?;
//! let mut cache = AnalysisCache::new();
//! let a = cache.cfg(&f);
//! let b = cache.cfg(&f); // served from the cache
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! assert_eq!((cache.hits(), cache.misses()), (1, 1));
//! # Ok::<(), sxe_ir::ParseError>(())
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use sxe_ir::{Cfg, Function};
use sxe_telemetry::Lane;

use crate::liveness::Liveness;
use crate::udu::UdDu;

/// Aggregated cache effectiveness counters, merged across workers by the
/// driver and exported as the `cache.{hit,miss,invalidation}` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries served from memoized facts.
    pub hits: u64,
    /// Queries that had to compute.
    pub misses: u64,
    /// Times memoized facts were dropped (explicit, rewrite-noted, or
    /// fingerprint-detected).
    pub invalidations: u64,
}

impl CacheStats {
    /// Accumulate another worker's counters.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }
}

/// Memoized facts for one function.
#[derive(Debug, Default)]
struct Entry {
    /// Bumped on every invalidation (explicit or fingerprint-detected).
    generation: u64,
    /// Fingerprint of the function state the facts below describe;
    /// `None` when the entry holds no valid facts.
    fingerprint: Option<u64>,
    cfg: Option<Arc<Cfg>>,
    liveness: Option<Arc<Liveness>>,
    udu: Option<Arc<UdDu>>,
}

impl Entry {
    fn clear(&mut self) {
        self.generation += 1;
        self.fingerprint = None;
        self.cfg = None;
        self.liveness = None;
        self.udu = None;
    }
}

/// A per-compilation memo of [`Cfg`], [`Liveness`], and [`UdDu`] facts,
/// keyed by function name. See the [module docs](self) for the
/// invalidation contract.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    entries: HashMap<String, Entry>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    trace: Lane,
}

impl AnalysisCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Number of queries served from memoized facts.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of queries that had to compute.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of times memoized facts were dropped, whatever the trigger.
    #[must_use]
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// The three effectiveness counters as one mergeable value.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
        }
    }

    /// Record every subsequent lookup as a micro-span on `lane` (one
    /// complete event per query, tagged `hit`). The cache starts with a
    /// disabled lane, which costs one branch per query.
    pub fn attach_trace(&mut self, lane: Lane) {
        self.trace = lane;
    }

    /// Take the trace lane back (for the driver's deterministic merge),
    /// leaving a disabled one.
    #[must_use]
    pub fn detach_trace(&mut self) -> Lane {
        std::mem::take(&mut self.trace)
    }

    /// Invalidation count ("generation") of `name`: how many times the
    /// memoized facts for that function have been dropped. Zero for a
    /// function never invalidated (or never seen).
    #[must_use]
    pub fn generation(&self, name: &str) -> u64 {
        self.entries.get(name).map_or(0, |e| e.generation)
    }

    /// Drop all memoized facts for `name` and bump its generation. Call
    /// after rewriting the function (rewriting passes do this via
    /// [`note_rewrites`](Self::note_rewrites)).
    pub fn invalidate(&mut self, name: &str) {
        self.entries.entry(name.to_string()).or_default().clear();
        self.invalidations += 1;
    }

    /// Record the outcome of one pass over `name`: `rewrites > 0` bumps
    /// the generation and drops the facts; a clean pass keeps them.
    pub fn note_rewrites(&mut self, name: &str, rewrites: usize) {
        if rewrites > 0 {
            self.invalidate(name);
        }
    }

    /// Validate (or create) the entry for `f`, dropping facts computed
    /// for a different function state.
    fn entry_for(&mut self, f: &Function) -> &mut Entry {
        let fp = f.fingerprint();
        let e = self.entries.entry(f.name.clone()).or_default();
        if e.fingerprint != Some(fp) {
            if e.fingerprint.is_some() {
                // Stale facts nobody told us about (e.g. a rollback
                // restored an older body): invalidate on detection.
                e.clear();
                self.invalidations += 1;
            }
            e.fingerprint = Some(fp);
        }
        e
    }

    fn trace_lookup(&mut self, what: &'static str, start_ns: u64, hit: bool) {
        if self.trace.is_enabled() {
            self.trace.complete_since(what, "analysis", start_ns, vec![("hit", hit.into())]);
        }
    }

    /// The control-flow graph of `f`, memoized.
    pub fn cfg(&mut self, f: &Function) -> Arc<Cfg> {
        let start = self.trace.now_ns();
        if let Some(cfg) = self.entry_for(f).cfg.clone() {
            self.hits += 1;
            self.trace_lookup("cache.cfg", start, true);
            return cfg;
        }
        let cfg = Arc::new(Cfg::compute(f));
        self.entry_for(f).cfg = Some(Arc::clone(&cfg));
        self.misses += 1;
        self.trace_lookup("cache.cfg", start, false);
        cfg
    }

    /// Backward liveness of `f`, memoized.
    pub fn liveness(&mut self, f: &Function) -> Arc<Liveness> {
        let cfg = self.cfg(f);
        let start = self.trace.now_ns();
        if let Some(live) = self.entry_for(f).liveness.clone() {
            self.hits += 1;
            self.trace_lookup("cache.liveness", start, true);
            return live;
        }
        let live = Arc::new(Liveness::compute(f, &cfg));
        self.entry_for(f).liveness = Some(Arc::clone(&live));
        self.misses += 1;
        self.trace_lookup("cache.liveness", start, false);
        live
    }

    /// UD/DU chains of `f`, memoized.
    pub fn udu(&mut self, f: &Function) -> Arc<UdDu> {
        let cfg = self.cfg(f);
        let start = self.trace.now_ns();
        if let Some(udu) = self.entry_for(f).udu.clone() {
            self.hits += 1;
            self.trace_lookup("cache.udu", start, true);
            return udu;
        }
        let udu = Arc::new(UdDu::compute(f, &cfg));
        self.entry_for(f).udu = Some(Arc::clone(&udu));
        self.misses += 1;
        self.trace_lookup("cache.udu", start, false);
        udu
    }

    /// UD/DU chains of `f` by value, for consumers that maintain the
    /// chains incrementally while rewriting. The memoized copy is moved
    /// out (no clone when this cache holds the only reference) — the
    /// consumer is about to mutate `f`, so keeping a copy would only
    /// serve a guaranteed-stale hit.
    pub fn take_udu(&mut self, f: &Function) -> UdDu {
        let arc = self.udu(f);
        let e = self.entry_for(f);
        e.udu = None;
        Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, BlockId, Inst};

    fn sample() -> Function {
        parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 2\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
        )
        .unwrap()
    }

    #[test]
    fn clean_requery_hits_with_counters() {
        let f = sample();
        let mut cache = AnalysisCache::new();
        let _ = cache.cfg(&f);
        let _ = cache.liveness(&f);
        let _ = cache.udu(&f);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 2, "liveness and udu reuse the cfg");
        let _ = cache.cfg(&f);
        let _ = cache.liveness(&f);
        let _ = cache.udu(&f);
        assert_eq!(cache.misses(), 3, "no recompute on clean re-query");
        assert_eq!(cache.hits(), 7, "each re-query hits (incl. inner cfg lookups)");
        assert_eq!(cache.generation("f"), 0);
    }

    #[test]
    fn note_rewrites_invalidates() {
        let f = sample();
        let mut cache = AnalysisCache::new();
        let before = cache.cfg(&f);
        cache.note_rewrites("f", 0);
        assert!(Arc::ptr_eq(&before, &cache.cfg(&f)), "clean pass keeps facts");
        assert_eq!(cache.generation("f"), 0);

        cache.note_rewrites("f", 3);
        assert_eq!(cache.generation("f"), 1);
        let after = cache.cfg(&f);
        assert!(!Arc::ptr_eq(&before, &after), "rewrite recomputes");
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn fingerprint_mismatch_is_detected_without_notification() {
        let mut f = sample();
        let mut cache = AnalysisCache::new();
        let before = cache.udu(&f);
        // Rewrite without telling the cache.
        f.block_mut(BlockId(0)).insts.insert(
            0,
            Inst::Const { dst: sxe_ir::Reg(1), value: 7, ty: sxe_ir::Ty::I32 },
        );
        let after = cache.udu(&f);
        assert!(!Arc::ptr_eq(&before, &after), "stale facts never served");
        assert_eq!(cache.generation("f"), 1, "detected mismatch counts");
    }

    #[test]
    fn take_udu_moves_the_chains_out() {
        let f = sample();
        let mut cache = AnalysisCache::new();
        let taken = cache.take_udu(&f);
        assert_eq!(taken.num_defs(), UdDu::compute(&f, &Cfg::compute(&f)).num_defs());
        // The next query recomputes (the memoized copy was moved out).
        let misses = cache.misses();
        let _ = cache.udu(&f);
        assert_eq!(cache.misses(), misses + 1);
    }

    #[test]
    fn stats_count_every_invalidation_kind() {
        let mut f = sample();
        let mut cache = AnalysisCache::new();
        let _ = cache.cfg(&f);
        cache.note_rewrites("f", 2); // explicit
        f.block_mut(BlockId(0)).insts.insert(
            0,
            Inst::Const { dst: sxe_ir::Reg(1), value: 9, ty: sxe_ir::Ty::I32 },
        );
        cache.invalidate("f"); // resets the fingerprint too
        let _ = cache.cfg(&f);
        let s = cache.stats();
        assert_eq!(s.invalidations, 2);
        assert_eq!((s.hits, s.misses), (cache.hits(), cache.misses()));
        let mut total = CacheStats::default();
        total.merge(s);
        total.merge(s);
        assert_eq!(total.invalidations, 4);
    }

    #[test]
    fn attached_lane_records_one_event_per_query() {
        let f = sample();
        let mut cache = AnalysisCache::new();
        cache.attach_trace(Lane::new(Some(sxe_telemetry::Clock::new()), "cache:test"));
        let _ = cache.cfg(&f);
        let _ = cache.cfg(&f);
        let _ = cache.liveness(&f); // inner cfg hit + liveness miss
        let events = cache.detach_trace().into_events();
        let tags: Vec<(String, bool)> = events
            .iter()
            .map(|e| {
                let hit = matches!(
                    e.args.iter().find(|(k, _)| *k == "hit"),
                    Some((_, sxe_telemetry::ArgValue::Bool(true)))
                );
                (e.name.to_string(), hit)
            })
            .collect();
        assert_eq!(
            tags,
            [
                ("cache.cfg".to_string(), false),
                ("cache.cfg".to_string(), true),
                ("cache.cfg".to_string(), true),
                ("cache.liveness".to_string(), false),
            ]
        );
        // Detached: further queries record nothing.
        let _ = cache.cfg(&f);
        assert!(cache.detach_trace().is_empty());
    }

    #[test]
    fn functions_are_tracked_independently() {
        let f = sample();
        let mut g = sample();
        g.name = "g".into();
        let mut cache = AnalysisCache::new();
        let _ = cache.cfg(&f);
        let _ = cache.cfg(&g);
        cache.invalidate("g");
        assert_eq!(cache.generation("f"), 0);
        assert_eq!(cache.generation("g"), 1);
        let hits = cache.hits();
        let _ = cache.cfg(&f);
        assert_eq!(cache.hits(), hits + 1, "f unaffected by g's invalidation");
    }
}
