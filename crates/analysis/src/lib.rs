//! # sxe-analysis — dataflow analyses over the sxe IR
//!
//! Building blocks for the sign-extension elimination algorithms of the
//! sibling `sxe-core` crate:
//!
//! * [`BitSet`] and a generic gen/kill [`dataflow`] solver;
//! * [`UdDu`] — UD/DU chains with incremental removal of transparent
//!   definitions (`r = extend(r)`), the structure the paper's
//!   `EliminateOneExtend` walks;
//! * [`Liveness`] — classic backward liveness;
//! * [`AvailableExt`] — flow-sensitive "is this register already
//!   sign-extended / upper-zero here" facts;
//! * [`RangeAnalysis`] — demand-driven value ranges for the array-subscript
//!   theorems (paper §3);
//! * [`Freq`] — execution-frequency estimation for order determination
//!   (paper §2.2);
//! * [`AnalysisCache`] — per-function memoization of [`Cfg`](sxe_ir::Cfg),
//!   [`Liveness`], and [`UdDu`] with generation-based invalidation, so
//!   pipeline stages stop recomputing facts over unchanged functions.
//!
//! ```
//! use sxe_ir::{parse_function, Cfg};
//! use sxe_analysis::UdDu;
//!
//! let f = parse_function("func @f(i32) -> i32 {\nb0:\n    ret r0\n}\n")?;
//! let cfg = Cfg::compute(&f);
//! let udu = UdDu::compute(&f, &cfg);
//! assert_eq!(udu.num_defs(), 1); // just the parameter
//! # Ok::<(), sxe_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitset;
pub mod cache;
pub mod dataflow;
mod facts;
mod flowrange;
mod freq;
mod liveness;
mod range;
mod udu;

pub use bitset::BitSet;
pub use cache::{AnalysisCache, CacheStats};
pub use facts::{AvailableExt, FactsWalker};
pub use freq::{Freq, LOOP_MULTIPLIER};
pub use flowrange::FlowRanges;
pub use liveness::Liveness;
pub use range::{binop_range, Interval, RangeAnalysis};
pub use udu::{DefId, DefSite, UdDu, UseKey};
