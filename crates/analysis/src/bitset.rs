//! A dense fixed-capacity bit set used by the dataflow solvers.

/// A dense bit set with a fixed universe size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Create an empty set over a universe of `len` elements.
    #[must_use]
    pub fn new(len: usize) -> BitSet {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Universe size.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Remove `i`; returns `true` if it was present.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let nw = *a | *b;
            changed |= nw != *a;
            *a = nw;
        }
        changed
    }

    /// `self &= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let nw = *a & *b;
            changed |= nw != *a;
            *a = nw;
        }
        changed
    }

    /// `self -= other` (set difference).
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements present.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn set_operations() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(70);
        b.insert(70);
        b.insert(99);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 70, 99]);
        assert!(!u.union_with(&b));
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![70]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn iteration_order() {
        let mut s = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63, 64, 65, 199]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
