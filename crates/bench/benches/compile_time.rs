//! Criterion bench: per-phase compile time (the quantities behind the
//! paper's Table 3 — sign-extension optimizations vs UD/DU chain
//! creation vs everything else).

use criterion::{criterion_group, criterion_main, Criterion};
use sxe_analysis::UdDu;
use sxe_core::{GenStrategy, SxeConfig, Variant};
use sxe_ir::{Cfg, Target};
use sxe_opt::GeneralOpts;

fn prepared_function() -> sxe_ir::Function {
    let mut m = sxe_workloads::by_name("compress").expect("exists").build(256);
    sxe_core::convert_module(&mut m, Target::Ia64, GenStrategy::AfterDef);
    sxe_opt::run_module(&mut m, &GeneralOpts::default());
    let id = m.function_by_name("main").expect("main");
    m.function(id).clone()
}

fn bench_phases(c: &mut Criterion) {
    let source = sxe_workloads::by_name("compress").expect("exists").build(256);
    let prepared = prepared_function();

    c.bench_function("step1_conversion", |b| {
        b.iter(|| {
            let mut m = source.clone();
            std::hint::black_box(sxe_core::convert_module(
                &mut m,
                Target::Ia64,
                GenStrategy::AfterDef,
            ))
        })
    });

    c.bench_function("step2_general_opts", |b| {
        let mut converted = source.clone();
        sxe_core::convert_module(&mut converted, Target::Ia64, GenStrategy::AfterDef);
        b.iter(|| {
            let mut m = converted.clone();
            std::hint::black_box(sxe_opt::run_module(&mut m, &GeneralOpts::default()))
        })
    });

    c.bench_function("udu_chain_creation", |b| {
        let cfg = Cfg::compute(&prepared);
        b.iter(|| std::hint::black_box(UdDu::compute(&prepared, &cfg)))
    });

    c.bench_function("step3_sxe_all", |b| {
        let config = SxeConfig::for_variant(Variant::All);
        b.iter(|| {
            let mut f = prepared.clone();
            std::hint::black_box(sxe_core::run_step3(&mut f, &config, None))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_phases
}
criterion_main!(benches);
