//! Bench: per-phase compile time (the quantities behind the paper's
//! Table 3 — sign-extension optimizations vs UD/DU chain creation vs
//! everything else).

use sxe_analysis::UdDu;
use sxe_bench::bench_loop;
use sxe_core::{GenStrategy, SxeConfig, Variant};
use sxe_ir::{Cfg, Target};
use sxe_opt::GeneralOpts;

fn prepared_function() -> sxe_ir::Function {
    let mut m = sxe_workloads::by_name("compress").expect("exists").build(256);
    sxe_core::convert_module(&mut m, Target::Ia64, GenStrategy::AfterDef);
    sxe_opt::run_module(&mut m, &GeneralOpts::default(), Target::Ia64);
    let id = m.function_by_name("main").expect("main");
    m.function(id).clone()
}

fn main() {
    let source = sxe_workloads::by_name("compress").expect("exists").build(256);
    let prepared = prepared_function();

    bench_loop("step1_conversion", 3, 20, || {
        let mut m = source.clone();
        sxe_core::convert_module(&mut m, Target::Ia64, GenStrategy::AfterDef)
    });

    let mut converted = source.clone();
    sxe_core::convert_module(&mut converted, Target::Ia64, GenStrategy::AfterDef);
    bench_loop("step2_general_opts", 3, 20, || {
        let mut m = converted.clone();
        sxe_opt::run_module(&mut m, &GeneralOpts::default(), Target::Ia64)
    });

    let cfg = Cfg::compute(&prepared);
    bench_loop("udu_chain_creation", 3, 20, || UdDu::compute(&prepared, &cfg));

    let config = SxeConfig::for_variant(Variant::All);
    bench_loop("step3_sxe_all", 3, 20, || {
        let mut f = prepared.clone();
        sxe_core::run_step3(&mut f, &config, None)
    });
}
