//! Bench: full-pipeline compile time per algorithm variant (the
//! compile-time cost side of Tables 1–3).

use sxe_bench::bench_loop;
use sxe_core::Variant;
use sxe_jit::Compiler;

fn main() {
    let m = sxe_workloads::by_name("huffman").expect("exists").build(128);
    for v in Variant::ALL {
        let compiler = Compiler::for_variant(v);
        bench_loop(&format!("compile_huffman/{}", v.label()), 3, 20, || {
            compiler.compile(&m)
        });
    }
}
