//! Criterion bench: full-pipeline compile time per algorithm variant
//! (the compile-time cost side of Tables 1–3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sxe_core::Variant;
use sxe_jit::Compiler;

fn bench_variants(c: &mut Criterion) {
    let m = sxe_workloads::by_name("huffman").expect("exists").build(128);
    let mut group = c.benchmark_group("compile_huffman");
    for v in Variant::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, &v| {
            let compiler = Compiler::for_variant(v);
            b.iter(|| std::hint::black_box(compiler.compile(&m)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_variants
}
criterion_main!(benches);
