//! Criterion bench: interpreter wall-clock time of baseline-compiled vs
//! fully-optimized workloads — the real-time analogue of Figures 13/14
//! (fewer dynamic instructions means faster interpretation too).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sxe_core::Variant;
use sxe_ir::Target;
use sxe_jit::Compiler;
use sxe_vm::Machine;

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_execution");
    for name in ["compress", "huffman", "mpegaudio"] {
        let m = sxe_workloads::by_name(name).expect("exists").build(96);
        for v in [Variant::Baseline, Variant::All] {
            let compiled = Compiler::for_variant(v).compile(&m);
            group.bench_with_input(
                BenchmarkId::new(name, v.label()),
                &compiled.module,
                |b, module| {
                    b.iter(|| {
                        let mut vm = Machine::new(module, Target::Ia64);
                        std::hint::black_box(vm.run("main", &[]).expect("no trap"))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_execution
}
criterion_main!(benches);
