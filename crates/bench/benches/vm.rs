//! Bench: interpreter wall-clock time of baseline-compiled vs
//! fully-optimized workloads — the real-time analogue of Figures 13/14
//! (fewer dynamic instructions means faster interpretation too).

use sxe_bench::bench_loop;
use sxe_core::Variant;
use sxe_ir::Target;
use sxe_jit::Compiler;
use sxe_vm::{Engine, Vm};

fn main() {
    for name in ["compress", "huffman", "mpegaudio"] {
        let m = sxe_workloads::by_name(name).expect("exists").build(96);
        for v in [Variant::Baseline, Variant::All] {
            let compiled = Compiler::for_variant(v).compile(&m);
            for engine in [Engine::Decoded, Engine::Tree] {
                let mut vm =
                    Vm::builder(&compiled.module).target(Target::Ia64).engine(engine).build();
                bench_loop(
                    &format!("vm_execution/{name}/{}/{engine}", v.label()),
                    2,
                    15,
                    || {
                        vm.reset();
                        vm.run("main", &[]).expect("no trap")
                    },
                );
            }
        }
    }
}
