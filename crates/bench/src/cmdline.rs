//! Shared formatting for replay command lines.
//!
//! Every harness that finds a failure (the chaos sweep, the fuzz
//! campaign, the serve stress gate) prints the exact one-line `cargo
//! run` invocation that reproduces it. [`ReproCmd`] is the single
//! formatter behind those lines, so the flag syntax can never drift
//! between harnesses.

use std::fmt::{Display, Write as _};

/// Builder for a `cargo run --release -p <pkg> --bin <bin> -- ...`
/// reproduction command line.
#[derive(Debug, Clone)]
pub struct ReproCmd {
    cmd: String,
}

impl ReproCmd {
    /// Start a command for `--bin bin` of package `pkg`.
    #[must_use]
    pub fn new(pkg: &str, bin: &str) -> ReproCmd {
        ReproCmd { cmd: format!("cargo run --release -p {pkg} --bin {bin} --") }
    }

    /// Append a bare flag (`--plant`).
    #[must_use]
    pub fn flag(mut self, flag: &str) -> ReproCmd {
        let _ = write!(self.cmd, " {flag}");
        self
    }

    /// Append a valued flag (`--size 200`), formatting the value with
    /// [`Display`].
    #[must_use]
    pub fn opt(mut self, flag: &str, value: impl Display) -> ReproCmd {
        let _ = write!(self.cmd, " {flag} {value}");
        self
    }

    /// Append a valued flag whose value is formatted as `0x…` hex
    /// (`--module-seed 0x2a`) — the form the fuzz harness accepts back.
    #[must_use]
    pub fn opt_hex(mut self, flag: &str, value: u64) -> ReproCmd {
        let _ = write!(self.cmd, " {flag} {value:#x}");
        self
    }

    /// The finished command line.
    #[must_use]
    pub fn render(&self) -> String {
        self.cmd.clone()
    }
}

impl Display for ReproCmd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.cmd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_exact_flag_syntax() {
        let cmd = ReproCmd::new("sxe-jit", "sxec")
            .opt("--workload", "compress")
            .opt("--size", 200)
            .opt_hex("--chaos-seed", 42)
            .flag("--no-emit")
            .render();
        assert_eq!(
            cmd,
            "cargo run --release -p sxe-jit --bin sxec -- --workload compress \
             --size 200 --chaos-seed 0x2a --no-emit"
        );
    }
}
