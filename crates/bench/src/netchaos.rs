//! Network chaos campaign for the `sxed` wire path.
//!
//! Three deterministic probes behind the `netchaos` binary:
//!
//! * [`run_campaign`] — seeds × every [`NetFaultKind`] through a
//!   [`NetFaultProxy`] in front of a live in-process daemon, asserting
//!   every faulted request resolves to a typed outcome within its
//!   deadline and classifying it into a per-kind histogram;
//! * [`run_fuzz`] — seeded malformed frames ([`fuzz_frame`]) streamed
//!   straight at a daemon: every connection must end in zero or more
//!   complete, parseable response frames followed by a clean close —
//!   never a hang, never a torn frame, never a dead daemon;
//! * [`check_slow_loris`] — a one-byte-drip attacker against a daemon
//!   with a tight `frame_deadline`, asserting the typed cutoff arrives
//!   on time (not after `io_timeout × frame bytes`).
//!
//! Campaign reports contain no wall-clock data and classify outcomes
//! coarsely (cache hit/miss both count as `compiled`), so the rendered
//! report is byte-identical at any `--threads` — the same determinism
//! contract the compiler itself honors.

use std::io::{Cursor, Read as _, Write as _};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use sxe_jit::shard;
use sxe_serve::proto::read_frame;
use sxe_serve::{
    fuzz_frame, Client, ClientError, CompileRequest, FuzzDelivery, NetFaultKind, NetFaultPlan,
    NetFaultProxy, Response, ServeConfig, Server,
};

/// A small, fast-to-compile request source for campaign traffic.
const SRC: &str = "\
func @main(i32) -> i32 {
b0:
    r1 = const.i32 7
    r2 = add.i32 r0, r1
    ret r2
}
";

/// Campaign shape.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Seeds per fault kind.
    pub seeds: u64,
    /// Worker threads for running cases (reports are identical at any
    /// value).
    pub threads: usize,
    /// Base seed; case `i` of a kind uses `base_seed + i`.
    pub base_seed: u64,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions { seeds: 32, threads: 4, base_seed: 0xc4a05 }
    }
}

/// Coarse classification of one faulted request — coarse on purpose:
/// anything scheduling-dependent (hit vs. miss, retry counts, timing)
/// is folded away so the histogram is thread-count-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    /// A `Compiled` response (cache hit or miss — both typed success).
    Compiled,
    /// A typed `Refused` with a retry hint.
    Refused,
    /// A typed `Error` response.
    TypedError,
    /// The connection ended with no (or a partial) response — a typed
    /// client-side transport error, not a hang.
    TransportClosed,
}

impl OutcomeClass {
    /// All classes, in histogram column order.
    pub const ALL: [OutcomeClass; 4] = [
        OutcomeClass::Compiled,
        OutcomeClass::Refused,
        OutcomeClass::TypedError,
        OutcomeClass::TransportClosed,
    ];

    /// Stable report label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OutcomeClass::Compiled => "compiled",
            OutcomeClass::Refused => "refused",
            OutcomeClass::TypedError => "typed-error",
            OutcomeClass::TransportClosed => "transport-closed",
        }
    }
}

/// What a campaign produced: one outcome histogram per fault kind plus
/// any findings (a finding is a violated expectation — a hang, a dead
/// daemon, an outcome class the fault kind must never produce).
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Total cases run (seeds × kinds).
    pub cases: u64,
    /// Per-kind outcome counts, columns in [`OutcomeClass::ALL`] order.
    pub histogram: Vec<(NetFaultKind, [u64; 4])>,
    /// Violated expectations, in deterministic case order. Empty means
    /// the gate criterion "100% typed outcomes, 0 hangs, 0 panics"
    /// held.
    pub findings: Vec<String>,
}

impl CampaignReport {
    /// Render as deterministic aligned text (no timing, no absolute
    /// paths — byte-identical across runs and thread counts).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "netchaos campaign: {} cases", self.cases);
        let _ = write!(out, "{:>18}", "fault kind");
        for class in OutcomeClass::ALL {
            let _ = write!(out, "{:>17}", class.name());
        }
        let _ = writeln!(out);
        for (kind, counts) in &self.histogram {
            let _ = write!(out, "{:>18}", kind.name());
            for c in counts {
                let _ = write!(out, "{c:>17}");
            }
            let _ = writeln!(out);
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "findings: none");
        } else {
            let _ = writeln!(out, "findings: {}", self.findings.len());
            for f in &self.findings {
                let _ = writeln!(out, "  - {f}");
            }
        }
        out
    }
}

/// The outcome classes a fault kind is allowed to produce. Anything
/// else is a finding: the daemon (or client) broke its typed-outcome
/// contract under that fault.
fn expected(kind: NetFaultKind) -> &'static [OutcomeClass] {
    match kind {
        // Delays and dribbles are not protocol violations: the request
        // must still succeed.
        NetFaultKind::SlowResponse
        | NetFaultKind::DelayedAccept
        | NetFaultKind::DuplicateFrame => &[OutcomeClass::Compiled],
        // A truncated frame must come back as a typed daemon error.
        NetFaultKind::TruncateRequest => &[OutcomeClass::TypedError],
        // A dropped connection is a typed client transport error.
        NetFaultKind::MidFrameReset => &[OutcomeClass::TransportClosed],
        // Garbling usually yields a typed error (unknown kind, header
        // garbage, parse failure); a flip that keeps the source legal
        // compiles — also typed.
        NetFaultKind::GarbleFrame => &[OutcomeClass::TypedError, OutcomeClass::Compiled],
    }
}

fn classify(result: Result<Response, ClientError>) -> Result<OutcomeClass, String> {
    match result {
        Ok(Response::Compiled(..)) => Ok(OutcomeClass::Compiled),
        Ok(Response::Refused(_)) => Ok(OutcomeClass::Refused),
        Ok(Response::Error(_)) => Ok(OutcomeClass::TypedError),
        Ok(other) => Err(format!("unexpected response kind: {other:?}")),
        Err(ClientError::Io(e))
            if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) =>
        {
            Err(format!("HANG: request did not resolve within its deadline ({e})"))
        }
        Err(ClientError::Io(_) | ClientError::Proto(_)) => Ok(OutcomeClass::TransportClosed),
        Err(e) => Err(format!("unexpected client error: {e}")),
    }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sxe-netchaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the full campaign: `opts.seeds` seeds × every [`NetFaultKind`],
/// each through its own [`NetFaultProxy`] in front of one shared
/// in-process daemon, with a direct liveness ping after every case.
///
/// # Errors
/// Infrastructure failures only (daemon or proxy would not start);
/// protocol misbehavior is reported as findings, not an `Err`.
pub fn run_campaign(opts: &ChaosOptions) -> Result<CampaignReport, String> {
    let dir = fresh_dir("campaign");
    let server = Server::start(
        0,
        ServeConfig {
            cache_dir: dir.clone(),
            threads: 4, // fixed: daemon parallelism is not under test
            queue_capacity: 256,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("cannot start daemon: {e}"))?;
    let daemon_port = server.port();

    // Warm the cache so the faithful-relay kinds replay a hit and the
    // campaign's wall-clock stays dominated by the injected faults.
    let direct = Client::new(daemon_port);
    direct
        .compile_once(&CompileRequest::new(SRC))
        .map_err(|e| format!("warm-up compile failed: {e}"))?;

    let cases: Vec<NetFaultPlan> = NetFaultKind::ALL
        .iter()
        .flat_map(|&kind| {
            (0..opts.seeds).map(move |i| NetFaultPlan::with_kind(opts.base_seed + i, kind))
        })
        .collect();

    let results: Vec<(Result<OutcomeClass, String>, bool)> =
        shard::par_map(&cases, opts.threads, |_, plan| {
            let outcome = match NetFaultProxy::start(daemon_port, *plan) {
                Ok(proxy) => {
                    let client = Client::new(proxy.port())
                        .with_io_timeout(Duration::from_secs(4));
                    let outcome = classify(client.compile_once(&CompileRequest::new(SRC)));
                    proxy.stop();
                    outcome
                }
                Err(e) => Err(format!("proxy failed to start: {e}")),
            };
            // Liveness after every case: a fault must never take the
            // daemon down.
            let alive = Client::new(daemon_port)
                .with_io_timeout(Duration::from_secs(4))
                .ping()
                .is_ok();
            (outcome, alive)
        });

    let mut histogram: Vec<(NetFaultKind, [u64; 4])> =
        NetFaultKind::ALL.iter().map(|&k| (k, [0u64; 4])).collect();
    let mut findings = Vec::new();
    for (plan, (outcome, alive)) in cases.iter().zip(&results) {
        let label = format!("kind={} seed={:#x}", plan.kind.name(), plan.seed);
        match outcome {
            Ok(class) => {
                let row = &mut histogram
                    .iter_mut()
                    .find(|(k, _)| k == &plan.kind)
                    .expect("kind row exists")
                    .1;
                let col = OutcomeClass::ALL.iter().position(|c| c == class).expect("class col");
                row[col] += 1;
                if !expected(plan.kind).contains(class) {
                    findings.push(format!(
                        "{label}: outcome {} violates the {} contract (allowed: {:?})",
                        class.name(),
                        plan.kind.name(),
                        expected(plan.kind).iter().map(|c| c.name()).collect::<Vec<_>>(),
                    ));
                }
            }
            Err(msg) => findings.push(format!("{label}: {msg}")),
        }
        if !alive {
            findings.push(format!("{label}: DAEMON DEAD — ping failed after the case"));
        }
    }

    direct.shutdown().map_err(|e| format!("campaign shutdown: {e}"))?;
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(CampaignReport { cases: cases.len() as u64, histogram, findings })
}

/// What the protocol fuzzer observed.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Frames streamed.
    pub frames: u64,
    /// Complete response frames received across all connections.
    pub responses: u64,
    /// Per-shape frame counts, in first-seen order.
    pub shape_histogram: Vec<(&'static str, u64)>,
    /// Contract violations (hangs, torn response frames, dead daemon).
    pub findings: Vec<String>,
}

/// Stream `frames` seeded malformed frames ([`fuzz_frame`]) at a fresh
/// in-process daemon, one connection each: write the frame (whole or
/// byte-dripped), half-close, then read to EOF. The contract per
/// connection: every byte received parses as complete response frames,
/// EOF arrives within the socket timeout, and the daemon stays alive.
///
/// # Errors
/// Infrastructure failures only (daemon would not start); protocol
/// misbehavior is reported as findings.
pub fn run_fuzz(frames: u64, base_seed: u64) -> Result<FuzzReport, String> {
    let dir = fresh_dir("fuzz");
    let server = Server::start(
        0,
        ServeConfig {
            cache_dir: dir.clone(),
            threads: 2,
            // Tight enough that a lost typed-close would fail the run
            // quickly, loose enough for dripped frames to finish.
            io_timeout: Duration::from_secs(2),
            frame_deadline: Duration::from_secs(2),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("cannot start fuzz daemon: {e}"))?;
    let port = server.port();

    let mut shape_histogram: Vec<(&'static str, u64)> = Vec::new();
    let mut findings = Vec::new();
    let mut responses = 0u64;
    for i in 0..frames {
        let frame = fuzz_frame(base_seed + i);
        match shape_histogram.iter_mut().find(|(s, _)| *s == frame.shape) {
            Some((_, n)) => *n += 1,
            None => shape_histogram.push((frame.shape, 1)),
        }
        let label = format!("frame seed={:#x} shape={}", base_seed + i, frame.shape);
        match fuzz_one(port, &frame) {
            Ok(n) => responses += n,
            Err(msg) => findings.push(format!("{label}: {msg}")),
        }
        if findings.len() > 16 {
            findings.push("... aborting: too many findings".into());
            break;
        }
    }
    let alive = Client::new(port).ping().is_ok();
    if !alive {
        findings.push("DAEMON DEAD after the fuzz stream".into());
    } else {
        let _ = Client::new(port).shutdown();
        server.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(FuzzReport { frames, responses, shape_histogram, findings })
}

/// One fuzz connection; returns the number of complete response frames
/// received before the clean close.
fn fuzz_one(port: u16, frame: &sxe_serve::FuzzFrame) -> Result<u64, String> {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(4)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(4))))
        .and_then(|()| stream.set_nodelay(true))
        .map_err(|e| format!("socket setup: {e}"))?;
    let write_result = match frame.delivery {
        FuzzDelivery::Whole => stream.write_all(&frame.bytes),
        FuzzDelivery::Drip => frame.bytes.iter().try_for_each(|b| {
            stream.write_all(std::slice::from_ref(b))?;
            std::thread::sleep(Duration::from_micros(100));
            Ok(())
        }),
    };
    // The daemon may have typed-closed already (e.g. an oversize
    // prefix); a write error after that is the clean-close contract
    // working, not a finding.
    drop(write_result);
    let _ = stream.shutdown(Shutdown::Write);
    let mut received = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => received.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), std::io::ErrorKind::ConnectionReset) => break,
            Err(e) => return Err(format!("HANG or read failure awaiting close: {e}")),
        }
    }
    // Every received byte must belong to a complete, parseable frame.
    let mut cursor = Cursor::new(received);
    let mut n = 0u64;
    loop {
        match read_frame(&mut cursor) {
            Ok(Some(_)) => n += 1,
            Ok(None) => break,
            Err(e) => return Err(format!("torn or malformed response frame: {e}")),
        }
    }
    Ok(n)
}

/// Slow-loris the daemon: start a frame, then drip one byte per 50 ms.
/// The daemon must cut the connection off with a typed error close to
/// `frame_deadline` — not after `io_timeout` per byte. Returns the
/// observed cutoff latency.
///
/// # Errors
/// A message describing the violated deadline contract.
pub fn check_slow_loris() -> Result<Duration, String> {
    let deadline = Duration::from_millis(150);
    let dir = fresh_dir("loris");
    let server = Server::start(
        0,
        ServeConfig {
            cache_dir: dir.clone(),
            threads: 1,
            io_timeout: Duration::from_secs(10),
            frame_deadline: deadline,
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("cannot start loris daemon: {e}"))?;
    let mut stream = TcpStream::connect(("127.0.0.1", server.port()))
        .map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    // A frame claiming 64 bytes, dripped one byte per 50 ms: honest
    // arrival would take ~3.2 s, so a cutoff near 150 ms proves the
    // deadline, not the idle timeout, fired.
    let claimed: u32 = 64;
    let mut wire = claimed.to_be_bytes().to_vec();
    wire.push(0x01);
    let t0 = Instant::now();
    let mut sent = 0;
    let cutoff = loop {
        if sent < wire.len() {
            if stream.write_all(&wire[sent..=sent]).is_err() {
                break t0.elapsed(); // daemon already hung up
            }
            sent += 1;
        }
        // Poll for the daemon's verdict between drips.
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(|e| e.to_string())?;
        let mut chunk = [0u8; 512];
        match stream.read(&mut chunk) {
            Ok(_) => break t0.elapsed(),
            Err(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) => {}
            Err(_) => break t0.elapsed(),
        }
        if t0.elapsed() > Duration::from_secs(5) {
            return Err("HANG: no deadline cutoff after 5 s of one-byte drips".into());
        }
    };
    let hits = server
        .telemetry()
        .metrics_snapshot()
        .counter("serve.net.frame_deadline_hits");
    let _ = Client::new(server.port()).shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    if hits < 1 {
        return Err(format!(
            "cutoff after {cutoff:?} but serve.net.frame_deadline_hits is {hits} — the idle \
             timeout, not the frame deadline, fired"
        ));
    }
    let slack = deadline + Duration::from_millis(850);
    if cutoff > slack {
        return Err(format!(
            "slow-loris cutoff took {cutoff:?}; the {deadline:?} frame deadline allows at most \
             {slack:?}"
        ));
    }
    Ok(cutoff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_thread_count_invariant() {
        let base = ChaosOptions { seeds: 3, threads: 1, base_seed: 0xabc };
        let r1 = run_campaign(&base).unwrap();
        assert_eq!(r1.findings, Vec::<String>::new());
        assert_eq!(r1.cases, 3 * NetFaultKind::ALL.len() as u64);
        let r4 = run_campaign(&ChaosOptions { threads: 4, ..base }).unwrap();
        assert_eq!(r1.render(), r4.render(), "report must not depend on --threads");
    }

    #[test]
    fn small_fuzz_run_is_clean() {
        let r = run_fuzz(64, 0x5eed).unwrap();
        assert_eq!(r.findings, Vec::<String>::new());
        assert_eq!(r.frames, 64);
        assert!(r.shape_histogram.len() >= 4, "{:?}", r.shape_histogram);
    }

    #[test]
    fn slow_loris_is_cut_off_at_the_frame_deadline() {
        let cutoff = check_slow_loris().unwrap();
        assert!(cutoff < Duration::from_secs(1), "cutoff {cutoff:?}");
    }
}
