//! Chaos suite: compile the workloads under systematic fault injection
//! and prove the containment harness holds.
//!
//! For every workload and every seed, one deterministic fault (panic,
//! corruption, or budget exhaustion — see [`FaultPlan::from_seed`]) is
//! injected at a pseudo-random pass boundary. The sweep then asserts the
//! three containment guarantees:
//!
//! 1. **no aborts** — compilation never panics out of the pipeline;
//! 2. **incidents are visible** — every injected fault shows up in the
//!    [`CompileReport`](sxe_jit::CompileReport);
//! 3. **no miscompiles** — the differential oracle finds the recovered
//!    module behaviorally identical to the unoptimized original.

use std::panic::{self, AssertUnwindSafe};

use sxe_core::Variant;
use sxe_ir::Target;
use sxe_jit::{Compiler, FaultPlan, Telemetry};
use sxe_vm::{differential_check, OracleConfig};

/// One chaos compilation's outcome.
#[derive(Debug, Clone)]
pub struct ChaosRecord {
    /// Workload name.
    pub workload: String,
    /// Fault seed.
    pub seed: u64,
    /// The injected plan.
    pub plan: FaultPlan,
    /// Incidents the compile report recorded.
    pub incidents: usize,
    /// Comparisons the oracle performed.
    pub comparisons: usize,
}

/// Aggregate result of a sweep.
#[derive(Debug, Clone, Default)]
pub struct ChaosSummary {
    /// One record per (workload, seed) pair.
    pub runs: Vec<ChaosRecord>,
}

impl ChaosSummary {
    /// Total injected incidents across the sweep.
    #[must_use]
    pub fn incidents(&self) -> usize {
        self.runs.iter().map(|r| r.incidents).sum()
    }

    /// Total oracle comparisons across the sweep.
    #[must_use]
    pub fn comparisons(&self) -> usize {
        self.runs.iter().map(|r| r.comparisons).sum()
    }
}

/// Sweep `seeds` fault seeds over each named workload at `scale`,
/// compiling sequentially (one worker thread).
///
/// # Errors
/// A list of containment violations (aborted compilations, unrecorded
/// incidents, oracle mismatches); empty result list means every fault was
/// contained.
pub fn chaos_sweep(
    workloads: &[&str],
    scale: f64,
    seeds: std::ops::Range<u64>,
) -> Result<ChaosSummary, Vec<String>> {
    chaos_sweep_on(workloads, scale, seeds, 1)
}

/// [`chaos_sweep`] with an explicit worker-pool size: every faulted
/// compile runs through the sharded pipeline with `threads` workers, so
/// the sweep also proves containment holds when the fault lands inside a
/// worker.
///
/// # Errors
/// See [`chaos_sweep`].
pub fn chaos_sweep_on(
    workloads: &[&str],
    scale: f64,
    seeds: std::ops::Range<u64>,
    threads: usize,
) -> Result<ChaosSummary, Vec<String>> {
    chaos_sweep_with(workloads, scale, seeds, threads, &Telemetry::disabled())
}

/// [`chaos_sweep_on`] with a telemetry sink attached to every faulted
/// compile: the sink's registry accumulates `compile.incidents`,
/// `compile.rollbacks`, per-pass timing histograms, etc. across the
/// whole sweep, and its trace records a span per contained boundary.
///
/// # Errors
/// See [`chaos_sweep`].
pub fn chaos_sweep_with(
    workloads: &[&str],
    scale: f64,
    seeds: std::ops::Range<u64>,
    threads: usize,
    telemetry: &Telemetry,
) -> Result<ChaosSummary, Vec<String>> {
    let mut summary = ChaosSummary::default();
    let mut errors = Vec::new();
    for &name in workloads {
        let Some(w) = sxe_workloads::by_name(name) else {
            errors.push(format!("unknown workload `{name}`"));
            continue;
        };
        let size = ((w.default_size as f64 * scale) as u32).max(4);
        let module = w.build(size);
        // The oracle reference is the conversion-only (Baseline) compile:
        // the raw 32-bit module is not meaningful on the 64-bit machine
        // model until step 1 has inserted its sign extensions.
        let reference = Compiler::for_variant(Variant::Baseline).compile(&module).module;
        let dry = Compiler::for_variant(Variant::All).compile(&module);
        let boundaries = dry.report.boundaries() as u32;
        for seed in seeds.clone() {
            let plan = FaultPlan::from_seed(seed, boundaries);
            let compiler = Compiler::for_variant(Variant::All)
                .with_threads(threads)
                .with_telemetry(telemetry.clone())
                .with_fault_plan(plan);
            let compiled =
                match panic::catch_unwind(AssertUnwindSafe(|| compiler.try_compile(&module))) {
                    Ok(Ok(c)) => c,
                    Ok(Err(e)) => {
                        errors.push(format!(
                            "{name} seed {seed}: compilation REFUSED ({e}) — an injected \
                             fault must be contained, not surfaced (plan {plan:?})"
                        ));
                        continue;
                    }
                    Err(_) => {
                        errors.push(format!(
                            "{name} seed {seed}: compilation ABORTED (containment breach, \
                             plan {plan:?})"
                        ));
                        continue;
                    }
                };
            let incidents = compiled.report.incidents();
            if incidents == 0 {
                errors.push(format!(
                    "{name} seed {seed}: injected fault left no trace in the report \
                     (plan {plan:?})"
                ));
            }
            let oracle = OracleConfig::new().seed(seed);
            let comparisons =
                match differential_check(&reference, &compiled.module, Target::Ia64, &oracle) {
                    Ok(n) => n,
                    Err(m) => {
                        let repro = crate::cmdline::ReproCmd::new("sxe-jit", "sxec")
                            .opt("--workload", name)
                            .opt("--size", size)
                            .opt("--chaos-seed", seed)
                            .opt("--oracle-runs", oracle.runs)
                            .opt("--oracle-fuel", oracle.fuel)
                            .opt("--oracle-seed", oracle.seed)
                            .flag("--no-emit");
                        errors.push(format!(
                            "{name} seed {seed}: ORACLE MISMATCH: {m}\n    repro: {repro}"
                        ));
                        0
                    }
                };
            summary.runs.push(ChaosRecord {
                workload: name.to_string(),
                seed,
                plan,
                incidents,
                comparisons,
            });
        }
    }
    if errors.is_empty() {
        Ok(summary)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_sweep_is_contained() {
        let summary = chaos_sweep_on(&["compress"], 0.05, 0..4, 4)
            .unwrap_or_else(|e| panic!("containment violations: {e:#?}"));
        assert_eq!(summary.runs.len(), 4);
        assert!(summary.incidents() >= 4);
    }

    #[test]
    fn small_sweep_is_contained() {
        let summary = chaos_sweep(&["compress", "numeric sort"], 0.05, 0..6)
            .unwrap_or_else(|e| panic!("containment violations: {e:#?}"));
        assert_eq!(summary.runs.len(), 12);
        assert!(summary.incidents() >= 12, "every run records its incident");
        assert!(summary.comparisons() > 0);
    }
}
