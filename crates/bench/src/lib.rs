//! # sxe-bench — reproduction harness for every table and figure
//!
//! Regenerates the paper's evaluation artifacts on the synthetic
//! workloads:
//!
//! * [`dynamic_extend_table`] — Tables 1 and 2 (dynamic counts of
//!   remaining 32-bit sign extensions, twelve algorithm variants);
//! * [`figure_series`] — Figures 11 and 12 (the same data as percentage
//!   series);
//! * [`speedup_figure`] — Figures 13 and 14 (estimated run-time
//!   improvement over the baseline, via the VM cycle model);
//! * [`compile_time_table`] — Table 3 (JIT compile-time breakdown).
//!
//! The `repro` binary prints them: `cargo run -p sxe-bench --bin repro --release`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod cmdline;
pub mod netchaos;

pub use chaos::{chaos_sweep, chaos_sweep_on, chaos_sweep_with, ChaosRecord, ChaosSummary};
pub use cmdline::ReproCmd;

use std::fmt::Write as _;

use sxe_core::Variant;
use sxe_ir::{Target, Width};
use sxe_jit::{Compiled, Compiler};
use sxe_vm::Vm;
use sxe_workloads::{Suite, Workload};

/// Execution fuel for harness runs.
pub const FUEL: u64 = 4_000_000_000;

/// One table cell: dynamic count and percentage of the baseline.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Dynamic count of remaining 32-bit sign extensions.
    pub count: u64,
    /// Percentage of the baseline count (100.0 for the baseline row).
    pub pct: f64,
}

/// One table row (an algorithm variant across all workloads).
#[derive(Debug, Clone)]
pub struct Row {
    /// The variant.
    pub variant: Variant,
    /// Cells in workload order.
    pub cells: Vec<Cell>,
    /// Arithmetic mean of the percentages (the paper's "average" column).
    pub avg_pct: f64,
}

/// A full dynamic-count table (Table 1 or Table 2).
#[derive(Debug, Clone)]
pub struct CountTable {
    /// Which suite.
    pub suite: Suite,
    /// Workload names, in column order.
    pub workloads: Vec<String>,
    /// Rows in the paper's variant order.
    pub rows: Vec<Row>,
}

fn run_counting(compiled: &Compiled, target: Target) -> (u64, u64, u64) {
    let mut vm = Vm::builder(&compiled.module).target(target).fuel(FUEL).build();
    vm.run("main", &[]).expect("workload must not trap");
    (
        vm.counters().extend_count(Some(Width::W32)),
        vm.counters().cycles,
        vm.counters().insts,
    )
}

/// Scale a workload size by `scale` (at least 4).
fn scaled(w: &Workload, scale: f64) -> u32 {
    ((w.default_size as f64 * scale) as u32).max(4)
}

/// Compute Table 1 (`suite = JByteMark`) or Table 2 (`SpecJvm98`).
///
/// `scale` multiplies every workload's default size (use < 1.0 for quick
/// runs, 1.0 for the full reproduction).
///
/// # Panics
/// Panics if a workload traps — that would be a compiler bug.
#[must_use]
pub fn dynamic_extend_table(suite: Suite, scale: f64) -> CountTable {
    dynamic_extend_table_on(suite, scale, Target::Ia64)
}

/// [`dynamic_extend_table`] for an explicit target. On
/// [`Target::Ppc64`] the baseline itself is smaller (the `lwa` load
/// sign-extends), reproducing the paper's remark that elimination
/// matters even more on architectures without implicit sign extension.
///
/// # Panics
/// Panics if a workload traps — that would be a compiler bug.
#[must_use]
pub fn dynamic_extend_table_on(suite: Suite, scale: f64, target: Target) -> CountTable {
    let workloads: Vec<Workload> = sxe_workloads::all()
        .into_iter()
        .filter(|w| w.suite == suite)
        .collect();
    let mut baseline: Vec<u64> = Vec::new();
    let mut rows = Vec::new();
    for variant in Variant::ALL {
        let compiler = Compiler::for_variant(variant).with_target(target);
        let mut cells = Vec::new();
        for (i, w) in workloads.iter().enumerate() {
            let m = w.build(scaled(w, scale));
            // Paper-faithful: the combined interpreter + dynamic compiler
            // profiles the code before optimizing, feeding measured block
            // frequencies to order determination.
            let compiled = compiler.compile_profiled(&m, "main", &[]);
            let (count, _, _) = run_counting(&compiled, target);
            let base = if variant == Variant::Baseline {
                baseline.push(count.max(1));
                count.max(1)
            } else {
                baseline[i]
            };
            cells.push(Cell { count, pct: 100.0 * count as f64 / base as f64 });
        }
        let avg_pct = cells.iter().map(|c| c.pct).sum::<f64>() / cells.len() as f64;
        rows.push(Row { variant, cells, avg_pct });
    }
    CountTable {
        suite,
        workloads: workloads.iter().map(|w| w.name.to_string()).collect(),
        rows,
    }
}

/// Render a [`CountTable`] as aligned text in the paper's layout.
#[must_use]
pub fn render_table(t: &CountTable) -> String {
    let mut out = String::new();
    let label_w = 28;
    let col_w = 14;
    let _ = write!(out, "{:label_w$}", "");
    for name in &t.workloads {
        let _ = write!(out, "{name:>col_w$}");
    }
    let _ = writeln!(out, "{:>col_w$}", "average");
    for row in &t.rows {
        let _ = write!(out, "{:label_w$}", row.variant.label());
        for c in &row.cells {
            let _ = write!(out, "{:>col_w$}", c.count);
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:label_w$}", "");
        for c in &row.cells {
            let _ = write!(out, "{:>col_w$}", format!("({:.2}%)", c.pct));
        }
        let _ = writeln!(out, "{:>col_w$}", format!("({:.2}%)", row.avg_pct));
    }
    out
}

/// Figures 11/12: the percentage series per variant (one line per
/// variant: `label: p1 p2 ... pN avg`).
#[must_use]
pub fn figure_series(t: &CountTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} — % of baseline dynamic 32-bit sign extensions", t.suite);
    let _ = writeln!(out, "# columns: {}", t.workloads.join(", "));
    for row in &t.rows {
        let series: Vec<String> = row.cells.iter().map(|c| format!("{:.2}", c.pct)).collect();
        let _ = writeln!(out, "{:28} {}  avg={:.2}", row.variant.label(), series.join(" "), row.avg_pct);
    }
    out
}

/// One bar of Figures 13/14.
#[derive(Debug, Clone)]
pub struct SpeedupBar {
    /// Workload name.
    pub name: String,
    /// Estimated performance improvement over the baseline, in percent
    /// (flat cycle-model: `baseline / optimized - 1`).
    pub improvement_pct: f64,
    /// Improvement under the in-order dual-issue list-scheduling model
    /// ([`sxe_vm::sched`]), which additionally credits shortened
    /// dependence chains.
    pub scheduled_pct: f64,
}

/// Figures 13/14: per-workload estimated improvement of the full
/// algorithm over the baseline.
///
/// # Panics
/// Panics if a workload traps.
#[must_use]
pub fn speedup_figure(suite: Suite, scale: f64) -> Vec<SpeedupBar> {
    let base_compiler = Compiler::for_variant(Variant::Baseline);
    let all_compiler = Compiler::for_variant(Variant::All);
    sxe_workloads::all()
        .into_iter()
        .filter(|w| w.suite == suite)
        .map(|w| {
            let m = w.build(scaled(&w, scale));
            let base = base_compiler.compile_profiled(&m, "main", &[]);
            let all = all_compiler.compile_profiled(&m, "main", &[]);
            let (_, base_cycles, _) = run_counting(&base, Target::Ia64);
            let (_, all_cycles, _) = run_counting(&all, Target::Ia64);
            let sched = |c: &Compiled| -> u64 {
                let mut vm = Vm::builder(&c.module)
                    .target(Target::Ia64)
                    .profile(true)
                    .fuel(FUEL)
                    .build();
                vm.run("main", &[]).expect("no trap");
                c.module
                    .iter()
                    .map(|(id, f)| {
                        let counts = vm.profile_counts(id).expect("profiling on");
                        sxe_vm::sched::function_cycles(f, counts)
                    })
                    .sum()
            };
            let base_sched = sched(&base).max(1);
            let all_sched = sched(&all).max(1);
            SpeedupBar {
                name: w.name.to_string(),
                improvement_pct: 100.0 * (base_cycles as f64 / all_cycles as f64 - 1.0),
                scheduled_pct: 100.0 * (base_sched as f64 / all_sched as f64 - 1.0),
            }
        })
        .collect()
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct CompileTimeRow {
    /// Workload name.
    pub name: String,
    /// Percentage of compile time in the sign-extension optimizations.
    pub sxe_pct: f64,
    /// Percentage in UD/DU chain creation.
    pub chains_pct: f64,
    /// Everything else.
    pub others_pct: f64,
}

/// Table 3: the JIT compile-time breakdown for the full algorithm, per
/// workload, plus the average as the final row.
#[must_use]
pub fn compile_time_table(scale: f64, repeats: u32) -> Vec<CompileTimeRow> {
    let compiler = Compiler::for_variant(Variant::All);
    let mut rows: Vec<CompileTimeRow> = sxe_workloads::all()
        .into_iter()
        .map(|w| {
            let m = w.build(scaled(&w, scale));
            let mut times = sxe_jit::PhaseTimes::default();
            for _ in 0..repeats.max(1) {
                times.merge(compiler.compile(&m).times);
            }
            let total = times.total().as_secs_f64().max(1e-12);
            CompileTimeRow {
                name: w.name.to_string(),
                sxe_pct: 100.0 * times.sxe_opt.as_secs_f64() / total,
                chains_pct: 100.0 * times.chain_creation.as_secs_f64() / total,
                others_pct: 100.0 * times.others().as_secs_f64() / total,
            }
        })
        .collect();
    let n = rows.len() as f64;
    rows.push(CompileTimeRow {
        name: "average".into(),
        sxe_pct: rows.iter().map(|r| r.sxe_pct).sum::<f64>() / n,
        chains_pct: rows.iter().map(|r| r.chains_pct).sum::<f64>() / n,
        others_pct: rows.iter().map(|r| r.others_pct).sum::<f64>() / n,
    });
    rows
}

/// Render Figures 13/14 bars as text (both performance models).
#[must_use]
pub fn render_speedups(bars: &[SpeedupBar]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>14} {:>10} {:>10}", "", "flat-cost", "scheduled");
    for b in bars {
        let hashes = "#".repeat((b.scheduled_pct.max(0.0) / 0.5) as usize);
        let _ = writeln!(
            out,
            "{:>14} {:>9.2}% {:>9.2}% {}",
            b.name, b.improvement_pct, b.scheduled_pct, hashes
        );
    }
    out
}

/// One thread count's measurement in a [`compile_throughput`] sweep.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Worker-pool size for this measurement.
    pub threads: usize,
    /// Modules compiled per second (best of `repeats` rounds over the
    /// full workload batch).
    pub modules_per_sec: f64,
    /// Speedup over the sequential (`threads = 1`) point.
    pub speedup: f64,
}

/// Sweep batch-compile throughput over the full workload suite for each
/// worker-pool size in `threads_list`.
///
/// Every round compiles all 17 workload modules through
/// [`Compiler::compile_batch`] (whole modules sharded across the pool)
/// and the best of `repeats` rounds is kept, so a stray scheduling
/// hiccup does not poison a point. The first entry of `threads_list`
/// is the speedup reference; pass `&[1, ...]` for speedup-vs-sequential.
///
/// # Panics
/// Panics if a workload module fails to compile — that would be a
/// compiler bug.
#[must_use]
pub fn compile_throughput(scale: f64, threads_list: &[usize], repeats: u32) -> Vec<ThroughputPoint> {
    let modules: Vec<_> = sxe_workloads::all()
        .iter()
        .map(|w| w.build(scaled(w, scale)))
        .collect();
    let mut points: Vec<ThroughputPoint> = Vec::new();
    for &threads in threads_list {
        let compiler = Compiler::builder(Variant::All).threads(threads).build();
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let t0 = std::time::Instant::now();
            std::hint::black_box(compiler.compile_batch(&modules));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let modules_per_sec = modules.len() as f64 / best.max(1e-12);
        let reference = points.first().map_or(modules_per_sec, |p| p.modules_per_sec);
        points.push(ThroughputPoint {
            threads,
            modules_per_sec,
            speedup: modules_per_sec / reference.max(1e-12),
        });
    }
    points
}

/// Render a [`compile_throughput`] sweep as aligned text.
#[must_use]
pub fn render_throughput(points: &[ThroughputPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>8} {:>14} {:>9}", "threads", "modules/sec", "speedup");
    for p in points {
        let _ = writeln!(
            out,
            "{:>8} {:>14.1} {:>8.2}x",
            p.threads, p.modules_per_sec, p.speedup
        );
    }
    out
}

/// Render Table 3 as text.
#[must_use]
pub fn render_compile_times(rows: &[CompileTimeRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>14} {:>22} {:>22} {:>10}",
        "", "sign-ext opts (all)", "UD/DU chain creation", "others"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>14} {:>21.2}% {:>21.2}% {:>9.2}%",
            r.name, r.sxe_pct, r.chains_pct, r.others_pct
        );
    }
    out
}

/// Minimal timing harness backing the `benches/` targets — the workspace
/// builds with no registry access, so there is no external benchmark
/// framework. Runs `f` for `warmup` untimed rounds, then `iters` timed
/// rounds, and prints the mean wall-clock time per iteration.
pub fn bench_loop<T>(name: &str, warmup: u32, iters: u32, mut f: impl FnMut() -> T) {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = t0.elapsed() / iters.max(1);
    println!("{name:<40} {per_iter:>12.2?}/iter  ({iters} iters)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_table_has_expected_shape() {
        let t = dynamic_extend_table(Suite::JByteMark, 0.05);
        assert_eq!(t.rows.len(), 12);
        assert_eq!(t.workloads.len(), 10);
        // Baseline row is 100%.
        for c in &t.rows[0].cells {
            assert!((c.pct - 100.0).abs() < 1e-9);
        }
        // The full algorithm's average beats the first algorithm's.
        let avg = |v: Variant| t.rows.iter().find(|r| r.variant == v).unwrap().avg_pct;
        assert!(avg(Variant::All) < avg(Variant::FirstAlgorithm));
        assert!(avg(Variant::All) < 50.0, "majority eliminated");
        let text = render_table(&t);
        assert!(text.contains("new algorithm (all)"));
    }

    #[test]
    fn speedups_are_positive_for_integer_kernels() {
        let bars = speedup_figure(Suite::SpecJvm98, 0.05);
        assert_eq!(bars.len(), 7);
        let compress = bars.iter().find(|b| b.name == "compress").unwrap();
        assert!(compress.improvement_pct > 0.0);
        let text = render_speedups(&bars);
        assert!(text.contains("compress"));
    }

    #[test]
    fn compile_time_rows_sum_to_100() {
        let rows = compile_time_table(0.05, 1);
        assert_eq!(rows.len(), 18); // 17 workloads + average
        for r in &rows {
            let sum = r.sxe_pct + r.chains_pct + r.others_pct;
            assert!((sum - 100.0).abs() < 0.5, "{}: {sum}", r.name);
        }
    }

    #[test]
    fn throughput_sweep_has_one_point_per_thread_count() {
        let points = compile_throughput(0.02, &[1, 2], 1);
        assert_eq!(points.len(), 2);
        assert!((points[0].speedup - 1.0).abs() < 1e-9, "first point is the reference");
        assert!(points.iter().all(|p| p.modules_per_sec > 0.0));
        let text = render_throughput(&points);
        assert!(text.contains("threads"));
    }

    #[test]
    fn figure_series_renders() {
        let t = dynamic_extend_table(Suite::SpecJvm98, 0.05);
        let s = figure_series(&t);
        assert!(s.contains("SPECjvm98"));
        assert!(s.lines().count() >= 14);
    }
}
