//! `fuzz` — differential fuzzing campaign driver.
//!
//! ```text
//! cargo run --release -p sxe-bench --bin fuzz -- \
//!     [--count N] [--seed S] [--threads T] [--target ia64|ppc64|mips64] \
//!     [--exec native] [--chaos | --plant] [--no-reduce] [--out DIR] \
//!     [--oracle-runs N] [--oracle-fuel N] [--oracle-seed S] \
//!     [--metrics FILE] [--module-seed S]
//! ```
//!
//! Generates `N` structured modules (default 256), compiles each both
//! ways under panic containment, and diffs them with the differential
//! oracle. Unique findings are deduplicated by stable signature,
//! minimized by delta debugging (unless `--no-reduce`), written as
//! replayable `.sxir`/`.min.sxir` files under `--out`, and each is
//! printed with the exact one-line command that reproduces it.
//!
//! `--plant` injects a known deterministic miscompile into every compile
//! under test — the self-test mode: the run *succeeds* only if the bug
//! is found and minimized. `--chaos` composes a contained fault per
//! module and expects zero findings (containment must hold). Findings
//! are byte-identical at any `--threads` value.
//!
//! `--module-seed S` replays one module by its generator seed instead of
//! running a campaign, reporting its outcome (and, on a failure, the
//! minimized reproducer).
//!
//! `--exec <engine>` runs the oracle's *right* side (the optimized
//! compile) on that engine while the reference stays on the decoded
//! interpreter — `--exec native` turns every campaign into a combined
//! compiler × JIT differential: a finding means the optimizer or the
//! x86-64 code generator broke behaviour.

use std::process::ExitCode;

use sxe_fuzz::{
    check_module, generate_module, reduce, run_campaign, signature_of, Finding, FuzzConfig,
};
use sxe_ir::Target;
use sxe_jit::Telemetry;
use sxe_vm::Engine;

/// Parse an integer that may carry a `0x` prefix.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The exact one-line command that replays a finding: same module seed,
/// target, fault mode, and oracle configuration.
fn repro_command(module_seed: u64, config: &FuzzConfig) -> String {
    let mut c = sxe_bench::cmdline::ReproCmd::new("sxe-bench", "fuzz")
        .opt_hex("--module-seed", module_seed);
    if config.target != Target::default() {
        c = c.opt("--target", config.target);
    }
    if config.plant {
        c = c.flag("--plant");
    } else if config.chaos {
        c = c.flag("--chaos");
    }
    if let Some(engine) = config.oracle.engine_right {
        c = c.opt("--exec", engine);
    }
    c.opt("--oracle-runs", config.oracle.runs)
        .opt("--oracle-fuel", config.oracle.fuel)
        .opt_hex("--oracle-seed", config.oracle.seed)
        .render()
}

/// Write a finding's original and minimized modules under `dir`.
fn write_finding(dir: &str, finding: &Finding) -> Result<(), String> {
    let stem =
        format!("{dir}/finding-{:02}-{:016x}", finding.index, finding.signature.short_hash());
    let io = |e: std::io::Error| format!("cannot write under {dir}: {e}");
    std::fs::create_dir_all(dir).map_err(io)?;
    std::fs::write(format!("{stem}.sxir"), finding.module.to_string()).map_err(io)?;
    if let Some(min) = &finding.reduced {
        std::fs::write(format!("{stem}.min.sxir"), min.to_string()).map_err(io)?;
    }
    Ok(())
}

/// Replay a single module by generator seed; returns the process exit.
fn replay(module_seed: u64, config: &FuzzConfig) -> ExitCode {
    let module = generate_module(module_seed, &config.gen);
    println!(
        "fuzz: module seed {module_seed:#x}: {} function(s), {} instruction(s)",
        module.functions.len(),
        module.inst_count()
    );
    let outcome = check_module(&module, module_seed, config);
    let Some(failure) = outcome.failure else {
        println!("fuzz: OK ({} oracle comparisons agreed)", outcome.comparisons);
        return ExitCode::SUCCESS;
    };
    println!("fuzz: {failure}");
    println!("fuzz: signature: {}", signature_of(&failure));
    if config.reduce {
        let target = signature_of(&failure);
        let (min, stats) = reduce(&module, |cand| {
            match check_module(cand, module_seed, config).failure {
                Some(f) => signature_of(&f) == target,
                None => false,
            }
        });
        println!(
            "fuzz: minimized {} -> {} instruction(s) ({} accepted steps):",
            module.inst_count(),
            min.inst_count(),
            stats.steps_accepted
        );
        print!("{min}");
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = FuzzConfig::default();
    let mut out: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut single: Option<u64> = None;
    let usage = "usage: fuzz [--count N] [--seed S] [--threads T] [--target ia64|ppc64|mips64] \
                 [--exec decoded|tree|native] [--chaos] [--plant] [--no-reduce] [--out DIR] \
                 [--oracle-runs N] [--oracle-fuel N] [--oracle-seed S] [--metrics FILE] \
                 [--module-seed S]";
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--count" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.count = n,
                None => {
                    eprintln!("--count needs a module count");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().as_deref().and_then(parse_u64) {
                Some(s) => config.seed = s,
                None => {
                    eprintln!("--seed needs an integer seed");
                    return ExitCode::from(2);
                }
            },
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.threads = n,
                _ => {
                    eprintln!("--threads needs a worker count >= 1");
                    return ExitCode::from(2);
                }
            },
            "--target" => match it.next().as_deref().map(str::parse::<Target>) {
                Some(Ok(t)) => config.target = t,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--target needs ia64, ppc64, or mips64");
                    return ExitCode::from(2);
                }
            },
            "--exec" => match it.next().as_deref().map(str::parse::<Engine>) {
                Some(Ok(engine)) => config.oracle.engine_right = Some(engine),
                _ => {
                    eprintln!("--exec needs an engine: decoded, tree, or native");
                    return ExitCode::from(2);
                }
            },
            "--chaos" => config.chaos = true,
            "--plant" => config.plant = true,
            "--no-reduce" => config.reduce = false,
            "--out" => match it.next() {
                Some(dir) => out = Some(dir),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--oracle-runs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.oracle.runs = n,
                None => {
                    eprintln!("--oracle-runs needs a run count");
                    return ExitCode::from(2);
                }
            },
            "--oracle-fuel" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => config.oracle.fuel = n,
                None => {
                    eprintln!("--oracle-fuel needs a fuel count");
                    return ExitCode::from(2);
                }
            },
            "--oracle-seed" => match it.next().as_deref().and_then(parse_u64) {
                Some(s) => config.oracle.seed = s,
                None => {
                    eprintln!("--oracle-seed needs an integer seed");
                    return ExitCode::from(2);
                }
            },
            "--metrics" => match it.next() {
                Some(path) => metrics = Some(path),
                None => {
                    eprintln!("--metrics needs a file path");
                    return ExitCode::from(2);
                }
            },
            "--module-seed" => match it.next().as_deref().and_then(parse_u64) {
                Some(s) => single = Some(s),
                None => {
                    eprintln!("--module-seed needs an integer seed");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unexpected argument `{other}`");
                eprintln!("{usage}");
                return ExitCode::from(2);
            }
        }
    }
    if config.chaos && config.plant {
        eprintln!("--chaos and --plant are mutually exclusive");
        return ExitCode::from(2);
    }

    if let Some(seed) = single {
        return replay(seed, &config);
    }

    let mode = if config.plant {
        " [plant: deterministic miscompile injected]"
    } else if config.chaos {
        " [chaos: one contained fault per module]"
    } else {
        ""
    };
    let exec = match config.oracle.engine_right {
        Some(engine) => format!(" [right side on the {engine} engine]"),
        None => String::new(),
    };
    println!(
        "fuzz: {} modules, campaign seed {:#x}, {} worker thread(s){mode}{exec}",
        config.count, config.seed, config.threads
    );
    let telemetry = if metrics.is_some() { Telemetry::enabled() } else { Telemetry::disabled() };
    let campaign = run_campaign(&config, &telemetry);
    if let Some(path) = &metrics {
        if let Err(e) = std::fs::write(path, telemetry.metrics_json()) {
            eprintln!("fuzz: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("fuzz: metrics written to {path}");
    }

    for finding in &campaign.findings {
        println!("fuzz: FINDING [{:016x}] {}", finding.signature.short_hash(), finding.signature);
        println!("fuzz:   first hit: module {} (seed {:#x}), {} hit(s) total",
            finding.index, finding.module_seed, finding.hits);
        println!("fuzz:   {}", finding.detail);
        if let Some(min) = &finding.reduced {
            println!(
                "fuzz:   minimized: {} -> {} instruction(s)",
                finding.module.inst_count(),
                min.inst_count()
            );
        }
        println!("fuzz:   repro: {}", repro_command(finding.module_seed, &config));
        if let Some(dir) = &out {
            if let Err(e) = write_finding(dir, finding) {
                eprintln!("fuzz: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = &out {
        if !campaign.findings.is_empty() {
            println!("fuzz: reproducers written under {dir}/");
        }
    }
    println!(
        "fuzz: {} modules, {} oracle comparisons, {} failures ({} unique)",
        campaign.modules,
        campaign.comparisons,
        campaign.failures,
        campaign.findings.len()
    );

    if config.plant {
        // Self-test: success means the planted bug was found, and (unless
        // reduction was disabled) every finding carries a minimized repro.
        let found = !campaign.findings.is_empty();
        let minimized =
            !config.reduce || campaign.findings.iter().all(|f| f.reduced.is_some());
        if found && minimized {
            println!("fuzz: planted miscompile detected and minimized — harness works");
            ExitCode::SUCCESS
        } else {
            eprintln!("fuzz: SELF-TEST FAILED: planted miscompile was not detected");
            ExitCode::FAILURE
        }
    } else if campaign.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
