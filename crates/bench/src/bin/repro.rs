//! Reproduce the paper's tables and figures.
//!
//! ```text
//! repro [--scale S] [table1|table2|table3|fig11|fig12|fig13|fig14|all]
//! ```
//!
//! `--scale` multiplies every workload's default size (default 1.0; use
//! e.g. `--scale 0.1` for a quick pass).

use sxe_bench::{
    compile_time_table, dynamic_extend_table, dynamic_extend_table_on, figure_series,
    render_compile_times, render_speedups, render_table, speedup_figure, CountTable,
};
use sxe_ir::Target;
use sxe_workloads::Suite;

struct Lazy {
    scale: f64,
    t1: Option<CountTable>,
    t2: Option<CountTable>,
}

impl Lazy {
    fn table1(&mut self) -> &CountTable {
        let scale = self.scale;
        self.t1
            .get_or_insert_with(|| dynamic_extend_table(Suite::JByteMark, scale))
    }
    fn table2(&mut self) -> &CountTable {
        let scale = self.scale;
        self.t2
            .get_or_insert_with(|| dynamic_extend_table(Suite::SpecJvm98, scale))
    }
}

fn main() {
    let mut scale = 1.0f64;
    let mut what: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale S] [table1|table2|table3|fig11|fig12|fig13|fig14|ppc64|all]"
                );
                return;
            }
            other => what.push(other.to_string()),
        }
    }
    if what.is_empty() {
        what.push("all".into());
    }
    let wants = |k: &str| what.iter().any(|w| w == k || w == "all");
    let mut lazy = Lazy { scale, t1: None, t2: None };

    if wants("table1") {
        println!("== Table 1: dynamic counts of remaining 32-bit sign extensions (jBYTEmark) ==");
        println!("{}", render_table(lazy.table1()));
    }
    if wants("table2") {
        println!("== Table 2: dynamic counts of remaining 32-bit sign extensions (SPECjvm98) ==");
        println!("{}", render_table(lazy.table2()));
    }
    if wants("fig11") {
        println!("== Figure 11: percentages over baseline (jBYTEmark) ==");
        println!("{}", figure_series(lazy.table1()));
    }
    if wants("fig12") {
        println!("== Figure 12: percentages over baseline (SPECjvm98) ==");
        println!("{}", figure_series(lazy.table2()));
    }
    if wants("fig13") {
        println!("== Figure 13: estimated performance improvement (jBYTEmark) ==");
        println!("{}", render_speedups(&speedup_figure(Suite::JByteMark, scale)));
    }
    if wants("fig14") {
        println!("== Figure 14: estimated performance improvement (SPECjvm98) ==");
        println!("{}", render_speedups(&speedup_figure(Suite::SpecJvm98, scale)));
    }
    if wants("table3") {
        println!("== Table 3: breakdown of JIT compilation time ==");
        println!("{}", render_compile_times(&compile_time_table(scale, 5)));
    }
    if what.iter().any(|w| w == "ppc64") {
        println!("== Extra: Table 1 on PPC64 (lwa loads sign-extend) ==");
        println!(
            "{}",
            render_table(&dynamic_extend_table_on(Suite::JByteMark, scale, Target::Ppc64))
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
