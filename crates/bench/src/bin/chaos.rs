//! `chaos` — fault-injection sweep over the benchmark workloads.
//!
//! ```text
//! cargo run -p sxe-bench --bin chaos --release \
//!     [-- --seeds N --scale S --threads T --metrics FILE]
//! ```
//!
//! Compiles every specjvm/jbytemark workload `N` times (default 32),
//! each time with one deterministic injected fault (panic, IR
//! corruption, or budget exhaustion) at a pseudo-random pass boundary,
//! and asserts the containment guarantees: no aborts, every incident
//! recorded, zero differential-oracle mismatches. Exits non-zero on any
//! violation. `--metrics FILE` attaches a telemetry sink to every
//! faulted compile and writes the accumulated registry (incident
//! counts, rollbacks, per-pass timings) as flat JSON.

use std::process::ExitCode;

use sxe_bench::chaos_sweep_with;
use sxe_jit::Telemetry;

fn main() -> ExitCode {
    let mut seeds: u64 = 32;
    let mut scale: f64 = 0.05;
    let mut threads: usize = 1;
    let mut metrics: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seeds = n,
                None => {
                    eprintln!("--seeds needs a number");
                    return ExitCode::from(2);
                }
            },
            "--scale" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => scale = s,
                None => {
                    eprintln!("--scale needs a number");
                    return ExitCode::from(2);
                }
            },
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("--threads needs a worker count >= 1");
                    return ExitCode::from(2);
                }
            },
            "--metrics" => match it.next() {
                Some(path) => metrics = Some(path),
                None => {
                    eprintln!("--metrics needs a file path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unexpected argument `{other}`");
                eprintln!("usage: chaos [--seeds N] [--scale S] [--threads T] [--metrics FILE]");
                return ExitCode::from(2);
            }
        }
    }

    let names: Vec<&'static str> =
        sxe_workloads::all().iter().map(|w| w.name).collect();
    println!(
        "chaos: {} workloads x {} fault seeds (scale {scale}, {threads} worker thread(s))",
        names.len(),
        seeds
    );
    let telemetry =
        if metrics.is_some() { Telemetry::enabled() } else { Telemetry::disabled() };
    let outcome = chaos_sweep_with(&names, scale, 0..seeds, threads, &telemetry);
    if let Some(path) = &metrics {
        if let Err(e) = std::fs::write(path, telemetry.metrics_json()) {
            eprintln!("chaos: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("chaos: metrics written to {path}");
    }
    match outcome {
        Ok(summary) => {
            println!(
                "chaos: {} runs contained, {} incidents recorded, {} oracle \
                 comparisons, 0 mismatches",
                summary.runs.len(),
                summary.incidents(),
                summary.comparisons()
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("chaos: FAIL: {e}");
            }
            eprintln!("chaos: {} containment violations", errors.len());
            ExitCode::FAILURE
        }
    }
}
