//! `vmbench` — decoded-engine vs tree-engine interpreter throughput.
//!
//! ```text
//! cargo run -p sxe-bench --bin vmbench --release [-- options]
//!   --scale S     workload size multiplier            (default: 1.0)
//!   --repeats N   timing rounds per engine, best-of   (default: 3)
//!   --gate MIN    exit non-zero unless the aggregate decoded/tree
//!                 speedup is at least MIN (e.g. 3.0)
//! ```
//!
//! Every workload is compiled with the full algorithm, then `main()` is
//! run to completion on both engines. Beyond the timings, each pair of
//! runs is an identity check: return value, heap checksum, and executed
//! instruction count must agree or the bench aborts. The aggregate
//! speedup is total-work-over-total-time (sum of instructions divided by
//! sum of best wall-clock times, per engine), so long workloads weigh
//! proportionally — the same figure `tier1.sh` gates on.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use sxe_core::Variant;
use sxe_ir::Target;
use sxe_jit::Compiler;
use sxe_vm::{Engine, Outcome, Vm};

const FUEL: u64 = 4_000_000_000;

fn scaled(w: &sxe_workloads::Workload, scale: f64) -> u32 {
    ((w.default_size as f64 * scale) as u32).max(4)
}

/// Best-of-`repeats` wall-clock for `main()` under `engine`, plus the
/// observables the engines must agree on.
fn measure(
    module: &sxe_ir::Module,
    engine: Engine,
    repeats: u32,
) -> (Duration, Outcome, u64) {
    let mut vm = Vm::builder(module).target(Target::Ia64).engine(engine).fuel(FUEL).build();
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        vm.reset();
        let t0 = Instant::now();
        let o = vm.run("main", &[]).expect("workload must not trap");
        best = best.min(t0.elapsed());
        out = Some(o);
    }
    (best, out.expect("at least one round"), vm.counters().insts)
}

fn main() -> ExitCode {
    let mut scale = 1.0f64;
    let mut repeats = 3u32;
    let mut gate: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().ok_or(format!("{a} needs a value"));
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--scale" => scale = val()?.parse().map_err(|e| format!("--scale: {e}"))?,
                "--repeats" => {
                    repeats = val()?.parse().map_err(|e| format!("--repeats: {e}"))?;
                }
                "--gate" => {
                    gate = Some(val()?.parse().map_err(|e| format!("--gate: {e}"))?);
                }
                other => return Err(format!("unknown flag {other}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("vmbench: {e}");
            return ExitCode::FAILURE;
        }
    }

    let compiler = Compiler::for_variant(Variant::All);
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>9}",
        "workload", "insts", "tree Mi/s", "decoded Mi/s", "speedup"
    );
    let (mut tree_total, mut decoded_total) = (Duration::ZERO, Duration::ZERO);
    let mut insts_total = 0u64;
    for w in sxe_workloads::all() {
        let m = w.build(scaled(&w, scale));
        let compiled = compiler.compile(&m);
        let (tt, tout, tinsts) = measure(&compiled.module, Engine::Tree, repeats);
        let (dt, dout, dinsts) = measure(&compiled.module, Engine::Decoded, repeats);
        assert_eq!(
            (tout.ret, tout.heap_checksum, tinsts),
            (dout.ret, dout.heap_checksum, dinsts),
            "{}: engines diverged",
            w.name
        );
        let mips = |d: Duration| tinsts as f64 / d.as_secs_f64().max(1e-12) / 1e6;
        println!(
            "{:<16} {:>12} {:>14.1} {:>14.1} {:>8.2}x",
            w.name,
            tinsts,
            mips(tt),
            mips(dt),
            tt.as_secs_f64() / dt.as_secs_f64().max(1e-12),
        );
        tree_total += tt;
        decoded_total += dt;
        insts_total += tinsts;
    }
    let speedup = tree_total.as_secs_f64() / decoded_total.as_secs_f64().max(1e-12);
    let mips = |d: Duration| insts_total as f64 / d.as_secs_f64().max(1e-12) / 1e6;
    println!(
        "{:<16} {:>12} {:>14.1} {:>14.1} {:>8.2}x",
        "TOTAL",
        insts_total,
        mips(tree_total),
        mips(decoded_total),
        speedup
    );
    if let Some(min) = gate {
        if speedup < min {
            eprintln!("vmbench: GATE FAILED: aggregate speedup {speedup:.2}x < required {min}x");
            return ExitCode::FAILURE;
        }
        println!("vmbench: gate passed: {speedup:.2}x >= {min}x");
    }
    ExitCode::SUCCESS
}
