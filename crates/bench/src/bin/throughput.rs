//! `throughput` — sharded module-compile throughput sweep and
//! determinism check.
//!
//! ```text
//! cargo run -p sxe-bench --bin throughput --release [-- options]
//!   --scale S        workload size multiplier        (default: 0.3)
//!   --repeats N      timing rounds per point         (default: 3)
//!   --threads A,B,C  pool sizes to sweep             (default: 1,2,4,8)
//!   --check          instead of timing, assert the threads=4 compile of
//!                    every workload is byte-identical to the sequential
//!                    one (module text, stats, opt stats, pass records)
//!   --metrics FILE   after the sweep, batch-compile the suite once more
//!                    with the telemetry sink attached (at the last
//!                    sweep point's thread count) and write the
//!                    accumulated registry as flat JSON
//! ```
//!
//! The sweep compiles all 17 workload modules as one batch per point and
//! reports modules/sec plus speedup over the first (reference) point.
//! The timed rounds always run untraced, so `--metrics` never perturbs
//! the numbers. Exits non-zero if `--check` finds any divergence.

use std::process::ExitCode;

use sxe_bench::{compile_throughput, render_throughput};
use sxe_core::Variant;
use sxe_jit::{Compiled, Compiler, Telemetry};

/// Everything that must match across thread counts: function bodies,
/// elimination stats, optimizer stats, per-pass record shapes.
type Fingerprint = (String, String, String, Vec<(String, Option<String>, String)>);

/// Durations are excluded on purpose: wall-clock is the only thing
/// sharding may change.
fn fingerprint(c: &Compiled) -> Fingerprint {
    (
        c.module.iter().map(|(_, f)| f.to_string()).collect::<Vec<_>>().join("\n"),
        format!("{:?}", c.stats),
        format!("{:?}", c.opt_stats),
        c.report
            .records
            .iter()
            .map(|r| (r.pass.clone(), r.function.clone(), r.status.to_string()))
            .collect(),
    )
}

fn check_determinism(scale: f64) -> ExitCode {
    let sequential = Compiler::for_variant(Variant::All);
    let sharded = Compiler::for_variant(Variant::All).with_threads(4);
    let mut failures = 0u32;
    for w in sxe_workloads::all() {
        let size = ((w.default_size as f64 * scale) as u32).max(4);
        let m = w.build(size);
        let seq = fingerprint(&sequential.compile(&m));
        let par = fingerprint(&sharded.compile(&m));
        if seq == par {
            println!("throughput: {:<16} threads 1 vs 4: identical", w.name);
        } else {
            eprintln!("throughput: {:<16} threads 1 vs 4: DIVERGED", w.name);
            failures += 1;
        }
    }
    if failures == 0 {
        println!("throughput: determinism check passed on all workloads");
        ExitCode::SUCCESS
    } else {
        eprintln!("throughput: {failures} workload(s) diverged under sharding");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut scale: f64 = 0.3;
    let mut repeats: u32 = 3;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut check = false;
    let mut metrics: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => scale = s,
                None => {
                    eprintln!("--scale needs a number");
                    return ExitCode::from(2);
                }
            },
            "--repeats" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => repeats = n,
                None => {
                    eprintln!("--repeats needs a count");
                    return ExitCode::from(2);
                }
            },
            "--threads" => {
                let parsed: Option<Vec<usize>> = it
                    .next()
                    .map(|s| s.split(',').map(|t| t.parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(list) if !list.is_empty() => threads = list,
                    _ => {
                        eprintln!("--threads needs a comma-separated list, e.g. 1,2,4");
                        return ExitCode::from(2);
                    }
                }
            }
            "--check" => check = true,
            "--metrics" => match it.next() {
                Some(path) => metrics = Some(path),
                None => {
                    eprintln!("--metrics needs a file path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unexpected argument `{other}`");
                eprintln!(
                    "usage: throughput [--scale S] [--repeats N] [--threads A,B,C] \
                     [--check] [--metrics FILE]"
                );
                return ExitCode::from(2);
            }
        }
    }

    if check {
        return check_determinism(scale);
    }
    println!(
        "throughput: batch-compiling {} workloads per point (scale {scale}, best of {repeats})",
        sxe_workloads::all().len()
    );
    let points = compile_throughput(scale, &threads, repeats);
    print!("{}", render_throughput(&points));
    if let Some(path) = &metrics {
        let tel = Telemetry::enabled();
        let pool = *threads.last().unwrap_or(&1);
        let compiler =
            Compiler::builder(Variant::All).threads(pool).telemetry(tel.clone()).build();
        let modules: Vec<_> = sxe_workloads::all()
            .iter()
            .map(|w| w.build(((w.default_size as f64 * scale) as u32).max(4)))
            .collect();
        std::hint::black_box(compiler.compile_batch(&modules));
        if let Err(e) = std::fs::write(path, tel.metrics_json()) {
            eprintln!("throughput: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("throughput: metrics written to {path} (threads {pool})");
    }
    ExitCode::SUCCESS
}
