//! `netchaos` — deterministic network-chaos campaign and protocol
//! fuzzer for the `sxed` compile-service daemon.
//!
//! ```text
//! cargo run --release -p sxe-bench --bin netchaos -- \
//!     [--seeds N] [--frames N] [--threads N] [--seed S] [--gate]
//! ```
//!
//! Default mode runs one campaign (`--seeds` seeds × every
//! `NetFaultPlan` fault kind through a fault-injecting proxy) plus a
//! `--frames`-frame protocol-fuzz pass, and prints both reports.
//!
//! `--gate` is the tier-1 chaos gate: a ≥32-seed campaign run at
//! `--threads` 1 and 4 with byte-identical reports and zero findings,
//! a ≥10 000-frame protocol-fuzz smoke with zero findings, the
//! slow-loris frame-deadline check, and the artifact-store crash-point
//! sweep over every byte boundary of a realistic entry write.

use std::process::ExitCode;

use sxe_bench::netchaos::{check_slow_loris, run_campaign, run_fuzz, ChaosOptions};
use sxe_bench::ReproCmd;
use sxe_serve::{crash_point_sweep, CompiledArtifact};

struct Options {
    seeds: u64,
    frames: u64,
    threads: usize,
    seed: u64,
    gate: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options { seeds: 32, frames: 10_000, threads: 4, seed: 0xc4a05, gate: false }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        let bad = |name: &str| format!("bad value for {name}");
        match arg.as_str() {
            "--seeds" => opts.seeds = value("--seeds")?.parse().map_err(|_| bad("--seeds"))?,
            "--frames" => opts.frames = value("--frames")?.parse().map_err(|_| bad("--frames"))?,
            "--threads" => {
                opts.threads = value("--threads")?.parse().map_err(|_| bad("--threads"))?;
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|_| bad("--seed"))?,
            "--gate" => opts.gate = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// A realistic artifact-store entry for the crash-point sweep: the
/// encoded bytes of a `CompiledArtifact`, headers, text body and all.
fn sweep_payload() -> Vec<u8> {
    CompiledArtifact {
        key: 0xfeed_f00d_dead_beef,
        boundaries: 3,
        incidents: 0,
        budget_exhausted: false,
        eliminated: 2,
        text: "func @main(i32) -> i32 {\nb0:\n    r1 = const.i32 7\n    ret r1\n}\n".into(),
    }
    .to_bytes()
}

fn run_default(opts: &Options) -> Result<(), String> {
    let report = run_campaign(&ChaosOptions {
        seeds: opts.seeds,
        threads: opts.threads,
        base_seed: opts.seed,
    })?;
    print!("{}", report.render());
    let fuzz = run_fuzz(opts.frames, opts.seed)?;
    println!(
        "protocol fuzz: {} frames, {} typed responses, {} findings",
        fuzz.frames,
        fuzz.responses,
        fuzz.findings.len()
    );
    for (shape, n) in &fuzz.shape_histogram {
        println!("{shape:>22} {n:>8}");
    }
    for f in &fuzz.findings {
        println!("  - {f}");
    }
    if report.findings.is_empty() && fuzz.findings.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} campaign + {} fuzz findings",
            report.findings.len(),
            fuzz.findings.len()
        ))
    }
}

fn run_gate(opts: &Options) -> Result<(), String> {
    let seeds = opts.seeds.max(32);
    let frames = opts.frames.max(10_000);

    // Campaign at two thread counts: zero findings, and the rendered
    // reports must be byte-identical — classification may not depend on
    // scheduling.
    let base = ChaosOptions { seeds, threads: 1, base_seed: opts.seed };
    let r1 = run_campaign(&base)?;
    let r4 = run_campaign(&ChaosOptions { threads: 4, ..base })?;
    if !r1.findings.is_empty() {
        return Err(format!(
            "campaign (threads=1) produced {} finding(s):\n{}",
            r1.findings.len(),
            r1.render()
        ));
    }
    if r1.render() != r4.render() {
        return Err(format!(
            "campaign reports differ between --threads 1 and 4:\n--- threads=1\n{}\n--- threads=4\n{}",
            r1.render(),
            r4.render()
        ));
    }
    println!(
        "netchaos gate: campaign OK ({} cases, 0 findings, reports byte-identical at threads 1 vs 4)",
        r1.cases
    );

    let fuzz = run_fuzz(frames, opts.seed)?;
    if !fuzz.findings.is_empty() {
        return Err(format!(
            "protocol fuzz produced {} finding(s): {:?}",
            fuzz.findings.len(),
            fuzz.findings
        ));
    }
    println!(
        "netchaos gate: protocol fuzz OK ({} frames, {} typed responses, 0 hangs)",
        fuzz.frames, fuzz.responses
    );

    let cutoff = check_slow_loris()?;
    println!("netchaos gate: slow-loris cut off in {cutoff:?} (150ms frame deadline)");

    let dir = std::env::temp_dir()
        .join(format!("sxe-netchaos-{}-sweep", std::process::id()));
    let payload = sweep_payload();
    let sweep = crash_point_sweep(&dir, 0xfeed_f00d_dead_beef, &payload)?;
    println!(
        "netchaos gate: crash-point sweep OK ({} byte boundaries, {} recovered misses, {} intact)",
        sweep.boundaries, sweep.recovered_misses, sweep.intact_hits
    );

    println!("netchaos gate: OK");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("netchaos: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = if opts.gate { run_gate(&opts) } else { run_default(&opts) };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            let repro = ReproCmd::new("sxe-bench", "netchaos").opt_hex("--seed", opts.seed);
            let repro = if opts.gate { repro.flag("--gate") } else { repro };
            eprintln!("netchaos: FAILED: {msg}");
            eprintln!("    repro: {repro}");
            ExitCode::FAILURE
        }
    }
}
