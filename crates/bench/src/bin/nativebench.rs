//! `nativebench` — wall-clock measurement of the paper's real headline:
//! what sign-extension elimination buys on *native* x86-64 code, where a
//! deleted `Extend` is machine instructions that were never emitted, not
//! an interpreter dispatch that was skipped.
//!
//! ```text
//! cargo run -p sxe-bench --bin nativebench --release [-- options]
//!   --scale S     workload size multiplier            (default: 1.0)
//!   --repeats N   timing rounds per configuration     (default: 5)
//!   --gate MIN    exit non-zero unless native aggregate throughput on
//!                 the integer workloads is at least MIN× the decoded
//!                 interpreter's (e.g. 2.0)
//! ```
//!
//! Per workload, the module is compiled twice — `Baseline` (conversion
//! only: every `Extend` the 64-bit machine model needs is present) and
//! `All` (the paper's full elimination) — and both run to completion on
//! [`Engine::Native`], best-of-N. The pair must agree on return value
//! and heap checksum or the bench aborts; the executed instruction
//! counts legitimately differ (that difference *is* the eliminated
//! work). Reported per workload:
//!
//! * decoded vs native throughput on the `All` compile (the JIT's win
//!   over the interpreter — this is what `--gate` checks);
//! * `Baseline` vs `All` native wall-clock speedup (the paper's
//!   headline, now measured on machine code);
//! * the machine-code bytes of `movsxd`/`movsx` the elimination removed
//!   (`Baseline` extend bytes − `All` extend bytes).
//!
//! Read the speedup column honestly: on an out-of-order x86-64 core a
//! register-register `movsxd` is nearly free, so small ratios (even
//! ~1.0×) on extend-light workloads are the expected truth, not a bug —
//! the byte column shows how much code the elimination removed even
//! when the cycles don't move.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use sxe_core::Variant;
use sxe_ir::{Module, Target};
use sxe_jit::Compiler;
use sxe_vm::{Engine, Outcome, Vm};

const FUEL: u64 = 4_000_000_000;

fn scaled(w: &sxe_workloads::Workload, scale: f64) -> u32 {
    ((w.default_size as f64 * scale) as u32).max(4)
}

/// A float-free workload? The textual IR carries a `.f64` / `f64`
/// marker on every float-typed operation, so the emitted text is a
/// complete census. The `--gate` compares only integer workloads: float
/// traffic is dominated by SSE and helper calls on both engines and
/// would wash out the integer-pipeline contrast being gated.
fn is_integer_only(m: &Module) -> bool {
    !m.to_string().contains("f64")
}

/// Best-of-`repeats` wall clock for `main()`, plus the observables and
/// the total extend-attributed machine-code bytes (0 on the decoded
/// engine, which has no machine code).
fn measure(m: &Module, engine: Engine, repeats: u32) -> (Duration, Outcome, u64, usize) {
    let mut vm = Vm::builder(m).target(Target::Ia64).engine(engine).fuel(FUEL).build();
    if engine == Engine::Native {
        for (name, why) in vm.native_refusals() {
            eprintln!("nativebench:   fallback @{name}: {why}");
        }
    }
    let ext_bytes = vm.native_code_stats().iter().map(|&(_, _, e)| e).sum();
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        vm.reset();
        let t0 = Instant::now();
        let o = vm.run("main", &[]).expect("workload must not trap");
        best = best.min(t0.elapsed());
        out = Some(o);
    }
    (best, out.expect("at least one round"), vm.counters().insts, ext_bytes)
}

fn main() -> ExitCode {
    let mut scale = 1.0f64;
    let mut repeats = 5u32;
    let mut gate: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().ok_or(format!("{a} needs a value"));
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--scale" => scale = val()?.parse().map_err(|e| format!("--scale: {e}"))?,
                "--repeats" => {
                    repeats = val()?.parse().map_err(|e| format!("--repeats: {e}"))?;
                }
                "--gate" => {
                    gate = Some(val()?.parse().map_err(|e| format!("--gate: {e}"))?);
                }
                other => return Err(format!("unknown flag {other}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("nativebench: {e}");
            return ExitCode::FAILURE;
        }
    }

    let base_compiler = Compiler::for_variant(Variant::Baseline);
    let all_compiler = Compiler::for_variant(Variant::All);
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>9} {:>9} {:>8}",
        "workload", "insts(all)", "dec Mi/s", "nat Mi/s", "nat/dec", "base/all", "Δext B"
    );
    // Gate aggregates (integer workloads only, All compile).
    let (mut dec_total, mut nat_total) = (Duration::ZERO, Duration::ZERO);
    // Headline aggregates (all workloads, native engine).
    let (mut base_total, mut all_total) = (Duration::ZERO, Duration::ZERO);
    for w in sxe_workloads::all() {
        let m = w.build(scaled(&w, scale));
        let base = base_compiler.compile(&m).module;
        let all = all_compiler.compile(&m).module;
        let (bt, bout, _, bext) = measure(&base, Engine::Native, repeats);
        let (at, aout, ainsts, aext) = measure(&all, Engine::Native, repeats);
        assert_eq!(
            (bout.ret, bout.heap_checksum),
            (aout.ret, aout.heap_checksum),
            "{}: Baseline and All diverged on native code",
            w.name
        );
        let (dt, dout, dinsts, _) = measure(&all, Engine::Decoded, repeats);
        assert_eq!(
            (dout.ret, dout.heap_checksum, dinsts),
            (aout.ret, aout.heap_checksum, ainsts),
            "{}: native and decoded diverged",
            w.name
        );
        let mips = |d: Duration| ainsts as f64 / d.as_secs_f64().max(1e-12) / 1e6;
        println!(
            "{:<16} {:>12} {:>12.1} {:>12.1} {:>8.2}x {:>8.3}x {:>8}",
            w.name,
            ainsts,
            mips(dt),
            mips(at),
            dt.as_secs_f64() / at.as_secs_f64().max(1e-12),
            bt.as_secs_f64() / at.as_secs_f64().max(1e-12),
            bext.saturating_sub(aext),
        );
        base_total += bt;
        all_total += at;
        if is_integer_only(&all) {
            dec_total += dt;
            nat_total += at;
        }
    }
    let jit_speedup = dec_total.as_secs_f64() / nat_total.as_secs_f64().max(1e-12);
    let sxe_speedup = base_total.as_secs_f64() / all_total.as_secs_f64().max(1e-12);
    println!(
        "nativebench: integer workloads: native {jit_speedup:.2}x the decoded interpreter; \
         all workloads: elimination speedup {sxe_speedup:.3}x on native code"
    );
    if let Some(min) = gate {
        if jit_speedup < min {
            eprintln!(
                "nativebench: GATE FAILED: native/decoded {jit_speedup:.2}x < required {min}x"
            );
            return ExitCode::FAILURE;
        }
        println!("nativebench: gate passed: {jit_speedup:.2}x >= {min}x");
    }
    ExitCode::SUCCESS
}
