//! `stress` — many-client load driver and crash-recovery gate for the
//! `sxed` compile-service daemon.
//!
//! ```text
//! cargo run --release -p sxe-bench --bin stress -- \
//!     [--clients N] [--requests N] [--threads N] [--queue-capacity N] \
//!     [--scale F] [--seed S] [--gate]
//! ```
//!
//! Default mode starts an in-process daemon and hammers it with
//! `--clients` concurrent retrying clients, each issuing `--requests`
//! workload compiles; it reports modules/sec, cache hit rate, typed
//! refusals absorbed, and the daemon's p99 latency — the numbers behind
//! the serving table in EXPERIMENTS.md.
//!
//! `--gate` is the tier-1 robustness gate. It drives a **real `sxed`
//! subprocess** (found next to this binary, or via `$SXED_BIN`) through
//! the full fault story: warm the cache twice (second pass must hit ≥
//! 90%), shut down cleanly, SIGKILL a daemon mid-cache-write, corrupt a
//! committed entry on disk, restart, and prove every response after
//! recovery is byte-identical to the first pass with the corrupt entry
//! quarantined — plus an in-process overload burst that must shed load
//! with typed refusals and still complete under retry.

use std::io::BufRead as _;
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use sxe_bench::ReproCmd;
use sxe_ir::rng::XorShift;
use sxe_serve::{
    stat_value, CacheOutcome, Client, CompileRequest, CompiledArtifact, Response, RetryPolicy,
    ServeConfig, Server,
};

struct Options {
    clients: usize,
    requests: usize,
    threads: usize,
    queue_capacity: usize,
    scale: f64,
    seed: u64,
    gate: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            clients: 8,
            requests: 4,
            threads: 4,
            queue_capacity: 16,
            scale: 0.05,
            seed: 0xc0ffee,
            gate: false,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        let bad = |name: &str| format!("bad value for {name}");
        match arg.as_str() {
            "--clients" => opts.clients = value("--clients")?.parse().map_err(|_| bad("--clients"))?,
            "--requests" => {
                opts.requests = value("--requests")?.parse().map_err(|_| bad("--requests"))?;
            }
            "--threads" => opts.threads = value("--threads")?.parse().map_err(|_| bad("--threads"))?,
            "--queue-capacity" => {
                opts.queue_capacity =
                    value("--queue-capacity")?.parse().map_err(|_| bad("--queue-capacity"))?;
            }
            "--scale" => opts.scale = value("--scale")?.parse().map_err(|_| bad("--scale"))?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|_| bad("--seed"))?,
            "--gate" => opts.gate = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// The 17 workload modules as request sources. `bump` offsets every
/// size, so different bumps produce disjoint artifact keys.
fn workload_sources(scale: f64, bump: u32) -> Vec<(String, String)> {
    sxe_workloads::all()
        .iter()
        .map(|w| {
            let size = ((w.default_size as f64 * scale) as u32).max(4) + bump;
            (w.name.to_string(), w.build(size).to_string())
        })
        .collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sxe-stress-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------- load mode

fn run_load(opts: &Options) -> Result<(), String> {
    let sources = workload_sources(opts.scale, 0);
    let dir = fresh_dir("load");
    let server = Server::start(
        0,
        ServeConfig {
            cache_dir: dir.clone(),
            threads: opts.threads,
            queue_capacity: opts.queue_capacity,
            retry_after: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("cannot start daemon: {e}"))?;
    let client = Client::new(server.port());
    let policy = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };

    let t0 = Instant::now();
    let totals: Vec<(u32, u32, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|c| {
                let client = client.clone();
                let sources = &sources;
                let policy = &policy;
                let seed = opts.seed;
                let requests = opts.requests;
                s.spawn(move || {
                    let mut rng = XorShift::new(seed ^ (c as u64).wrapping_mul(0x9e37));
                    let (mut attempts, mut refusals, mut hits, mut misses) = (0, 0, 0u64, 0u64);
                    for r in 0..requests {
                        let (_, src) = &sources[(c + r) % sources.len()];
                        let (outcome, _, stats) = client
                            .compile_with_retry(&CompileRequest::new(src.clone()), policy, &mut rng)
                            .expect("stressed compile must eventually succeed");
                        attempts += stats.attempts;
                        refusals += stats.refusals;
                        match outcome {
                            CacheOutcome::Hit => hits += 1,
                            CacheOutcome::Miss => misses += 1,
                        }
                    }
                    (attempts, refusals, hits, misses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let wall = t0.elapsed();

    let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    client.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);

    let total_requests = (opts.clients * opts.requests) as u64;
    let attempts: u32 = totals.iter().map(|t| t.0).sum();
    let refusals: u32 = totals.iter().map(|t| t.1).sum();
    let hits: u64 = totals.iter().map(|t| t.2).sum();
    let misses: u64 = totals.iter().map(|t| t.3).sum();
    let p99_ms =
        stat_value(&stats, "serve.latency.p99_ns").unwrap_or(0) as f64 / 1_000_000.0;
    println!("stress: {} clients x {} requests, {} worker threads, queue {}", opts.clients, opts.requests, opts.threads, opts.queue_capacity);
    println!("{:>22} {:>12}", "metric", "value");
    println!("{:>22} {:>12}", "requests", total_requests);
    println!("{:>22} {:>12.1}", "modules/sec", total_requests as f64 / wall.as_secs_f64().max(1e-9));
    println!("{:>22} {:>11.1}%", "cache hit rate", 100.0 * hits as f64 / (hits + misses).max(1) as f64);
    println!("{:>22} {:>12}", "typed refusals", refusals);
    println!("{:>22} {:>12}", "attempts", attempts);
    println!("{:>22} {:>12.2}", "daemon p99 (ms)", p99_ms);
    Ok(())
}

// ---------------------------------------------------------------- gate mode

/// A `sxed` subprocess plus the port scraped from its first stdout line.
/// The stdout pipe is held open for the daemon's lifetime so its final
/// log line never hits a closed pipe.
struct Daemon {
    child: Child,
    client: Client,
    _stdout: std::io::BufReader<std::process::ChildStdout>,
}

fn sxed_binary() -> Result<PathBuf, String> {
    if let Ok(explicit) = std::env::var("SXED_BIN") {
        return Ok(PathBuf::from(explicit));
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me.with_file_name("sxed");
    if sibling.exists() {
        return Ok(sibling);
    }
    Err(format!(
        "cannot find the sxed binary next to {} — build it with `cargo build -p sxe-serve` \
         or set $SXED_BIN",
        me.display()
    ))
}

fn spawn_daemon(cache_dir: &std::path::Path, extra: &[&str]) -> Result<Daemon, String> {
    let bin = sxed_binary()?;
    let mut child = Command::new(&bin)
        .arg("--port")
        .arg("0")
        .arg("--cache-dir")
        .arg(cache_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().ok_or("no stdout from sxed")?;
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("reading sxed banner: {e}"))?;
    let port: u16 = line
        .rsplit_once("127.0.0.1:")
        .and_then(|(_, rest)| rest.split_whitespace().next())
        .and_then(|p| p.parse().ok())
        .ok_or_else(|| format!("unparseable sxed banner: {line:?}"))?;
    Ok(Daemon { child, client: Client::new(port), _stdout: reader })
}

fn compile_all(
    client: &Client,
    sources: &[(String, String)],
) -> Result<Vec<(CacheOutcome, CompiledArtifact)>, String> {
    sources
        .iter()
        .map(|(name, src)| match client.compile_once(&CompileRequest::new(src.clone())) {
            Ok(Response::Compiled(outcome, artifact)) => Ok((outcome, artifact)),
            Ok(other) => Err(format!("{name}: unexpected response {other:?}")),
            Err(e) => Err(format!("{name}: {e}")),
        })
        .collect()
}

fn gate_overload_burst() -> Result<u32, String> {
    let dir = fresh_dir("gate-overload");
    let server = Server::start(
        0,
        ServeConfig {
            cache_dir: dir.clone(),
            threads: 1,
            queue_capacity: 1,
            write_delay: Some(Duration::from_millis(200)),
            retry_after: Duration::from_millis(10),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("overload daemon: {e}"))?;
    let client = Client::new(server.port());
    let sources = workload_sources(0.05, 1000);
    let burst = &sources[..8.min(sources.len())];
    let responses: Vec<Response> = std::thread::scope(|s| {
        let handles: Vec<_> = burst
            .iter()
            .map(|(_, src)| {
                let client = client.clone();
                let src = src.clone();
                s.spawn(move || client.compile_once(&CompileRequest::new(src)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst client aborted — overload must never panic"))
            .collect::<Result<Vec<_>, _>>()
    })
    .map_err(|e| format!("burst transport error: {e}"))?;
    let refusals = responses.iter().filter(|r| matches!(r, Response::Refused(_))).count() as u32;
    if refusals == 0 {
        return Err("an 8-request burst against a 1-slot queue shed no load".into());
    }
    // Every refused request completes under the retrying client.
    let mut rng = XorShift::new(0xfeed);
    let policy = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
    for (name, src) in burst {
        client
            .compile_with_retry(&CompileRequest::new(src.clone()), &policy, &mut rng)
            .map_err(|e| format!("{name}: retry did not complete: {e}"))?;
    }
    client.shutdown().map_err(|e| format!("overload shutdown: {e}"))?;
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(refusals)
}

fn run_gate(opts: &Options) -> Result<(), String> {
    let sources = workload_sources(opts.scale, 0);
    let dir = fresh_dir("gate");

    // Pass 1 + 2: cold then warm; clean shutdown must drain and persist.
    let mut daemon = spawn_daemon(&dir, &["--threads", "4"])?;
    let pass1 = compile_all(&daemon.client, &sources)?;
    let pass2 = compile_all(&daemon.client, &sources)?;
    let hits = pass2.iter().filter(|(o, _)| *o == CacheOutcome::Hit).count();
    if hits * 10 < sources.len() * 9 {
        return Err(format!("second pass hit {hits}/{} — below the 90% floor", sources.len()));
    }
    for (i, ((_, a1), (_, a2))) in pass1.iter().zip(&pass2).enumerate() {
        if a1 != a2 {
            return Err(format!("{}: warm replay differs from cold compile", sources[i].0));
        }
    }
    daemon.client.shutdown().map_err(|e| format!("clean shutdown: {e}"))?;
    let status = daemon.child.wait().map_err(|e| format!("wait: {e}"))?;
    if !status.success() {
        return Err(format!("clean shutdown exited with {status}"));
    }
    println!("stress gate: warm pass hit {hits}/{} and drained cleanly", sources.len());

    // Crash phase: SIGKILL the daemon while cache writes are in flight.
    let mut daemon = spawn_daemon(&dir, &["--threads", "4", "--write-delay-ms", "400"])?;
    let fresh = workload_sources(opts.scale, 3);
    std::thread::scope(|s| {
        for (_, src) in fresh.iter().take(6) {
            let client = daemon.client.clone();
            let src = src.clone();
            s.spawn(move || {
                // The kill lands mid-request; errors are the point.
                let _ = client.compile_once(&CompileRequest::new(src));
            });
        }
        std::thread::sleep(Duration::from_millis(600));
        daemon.child.kill().expect("SIGKILL");
        let _ = daemon.child.wait();
    });

    // Corrupt one committed entry behind the daemon's back.
    let victim = dir.join(format!("{:016x}.art", pass1[0].1.key));
    let mut bytes = std::fs::read(&victim).map_err(|e| format!("read {}: {e}", victim.display()))?;
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&victim, bytes).map_err(|e| format!("corrupt {}: {e}", victim.display()))?;

    // Recovery: restart, replay the original 17 — byte-identical
    // responses, corrupt entry quarantined, no wrong answers.
    let mut daemon = spawn_daemon(&dir, &["--threads", "4"])?;
    let pass3 = compile_all(&daemon.client, &sources)?;
    for (i, ((_, a1), (_, a3))) in pass1.iter().zip(&pass3).enumerate() {
        if a1 != a3 {
            return Err(format!(
                "{}: post-crash response differs from pre-crash (corrupt cache served?)",
                sources[i].0
            ));
        }
    }
    if pass3[0].0 != CacheOutcome::Miss {
        return Err("the corrupted entry was served as a hit instead of quarantined".into());
    }
    let stats = daemon.client.stats().map_err(|e| format!("stats: {e}"))?;
    let quarantined = stat_value(&stats, "serve.cache.quarantined").unwrap_or(0);
    if quarantined < 1 {
        return Err(format!("expected >= 1 quarantined entry, stats say {quarantined}"));
    }
    daemon.client.shutdown().map_err(|e| format!("post-crash shutdown: {e}"))?;
    let status = daemon.child.wait().map_err(|e| format!("wait: {e}"))?;
    if !status.success() {
        return Err(format!("post-crash daemon exited with {status}"));
    }
    println!(
        "stress gate: crash recovery OK ({quarantined} quarantined, {} byte-identical replays)",
        sources.len()
    );

    let refusals = gate_overload_burst()?;
    println!("stress gate: overload shed {refusals} request(s) with typed refusals, retries completed");

    let _ = std::fs::remove_dir_all(&dir);
    println!("stress gate: OK");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("stress: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = if opts.gate { run_gate(&opts) } else { run_load(&opts) };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            let repro = ReproCmd::new("sxe-bench", "stress");
            let repro = if opts.gate { repro.flag("--gate") } else { repro };
            eprintln!("stress: FAILED: {msg}");
            eprintln!("    repro: {repro}");
            ExitCode::FAILURE
        }
    }
}
