//! Cross-process artifact keys: what a compiled module's identity is.
//!
//! The compile-service daemon (`sxed`, in `sxe-serve`) caches whole
//! compiled modules on disk and across process restarts. A cached
//! artifact may be served *instead of* compiling only if the key
//! captures everything the compiled text depends on:
//!
//! * **the input functions** — folded in as each
//!   [`Function::fingerprint`] in module order (the same
//!   structural fingerprint the [`sxe_analysis::AnalysisCache`]
//!   validates its facts against, extended here from per-function
//!   analysis facts to whole compiled functions). Because step-2
//!   inlining can splice one function's body into another, a single
//!   function's compiled form depends on its callees; combining *every*
//!   function fingerprint makes the key sound in the presence of
//!   inlining at the cost of caching per module rather than per
//!   function;
//! * **the pipeline configuration** — the step-3 [`SxeConfig`] and the
//!   step-2 [`GeneralOpts`] ([`config_key`]), which are the only
//!   compiler knobs that change the emitted text;
//! * **the pipeline revision** — [`ARTIFACT_VERSION`], bumped whenever
//!   a change to the optimizer can alter output for an unchanged input,
//!   so a cache directory written by an older build misses instead of
//!   serving stale code.
//!
//! Deliberately *excluded* from the key — and therefore part of the
//! caller's contract:
//!
//! * `threads`, `cache`, `verify`, `telemetry` — proven byte-identical
//!   by the tier-1 determinism gates, so they cannot change the artifact;
//! * `fuel` / `time_limit` / `fault_plan` — these *can* change the
//!   output (budget salvage, contained rollbacks), so **callers must
//!   only cache artifacts from clean compilations**
//!   ([`CompileReport::clean`] and no fault plan). A clean report means
//!   every pass ran to completion, which is exactly the case where the
//!   output equals an unlimited-budget run.
//!
//! [`SxeConfig`]: sxe_core::SxeConfig
//! [`GeneralOpts`]: sxe_opt::GeneralOpts
//! [`CompileReport::clean`]: crate::CompileReport::clean

use sxe_ir::{Function, Module};

use crate::Compiler;

/// Revision of the compiled-artifact format and of the pipeline's
/// output-affecting behavior. Mixed into every [`artifact_key`]; bump it
/// when an optimizer change can alter the compiled text for an
/// unchanged input + configuration.
///
/// History: `2` introduced the [`Backend`] dimension — older caches
/// hold keys that never name a backend, and the bump retires them
/// wholesale rather than letting a VM-era artifact answer a native-era
/// request.
pub const ARTIFACT_VERSION: u32 = 2;

/// The execution backend an artifact is compiled *for*. The emitted IR
/// text is backend-independent today, but the artifact contract is not:
/// a consumer asking for a native-backend artifact must never be served
/// an entry recorded under the VM backend (and vice versa), so the
/// backend is part of the cache identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backend {
    /// The interpreting engines (`decoded`/`tree`) — the default.
    #[default]
    Vm,
    /// The `sxe-native` x86-64 code generator.
    Native,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Vm => "vm",
            Backend::Native => "native",
        })
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "vm" => Ok(Backend::Vm),
            "native" => Ok(Backend::Native),
            other => Err(format!("unknown backend `{other}` (expected `vm` or `native`)")),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a accumulator.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of the output-affecting compiler configuration: the
/// step-3 [`sxe_core::SxeConfig`] and step-2 [`sxe_opt::GeneralOpts`],
/// plus [`ARTIFACT_VERSION`]. Budget, fault-plan, thread-count, and
/// telemetry knobs are excluded (see the [module docs](self)).
#[must_use]
pub fn config_key(compiler: &Compiler) -> u64 {
    config_key_for(compiler, Backend::Vm)
}

/// [`config_key`] for an explicit [`Backend`].
#[must_use]
pub fn config_key_for(compiler: &Compiler, backend: Backend) -> u64 {
    // Debug formatting enumerates every field of both config structs, so
    // a new output-affecting option cannot silently escape the key.
    let desc = format!(
        "v{ARTIFACT_VERSION}|{backend:?}|{:?}|{:?}",
        compiler.sxe, compiler.general
    );
    fnv1a(FNV_OFFSET, desc.as_bytes())
}

/// Fingerprint of a module's functions: each [`Function::fingerprint`]
/// folded in module order (order matters — it is the merge order of the
/// sharded pipeline and the emission order of the compiled text).
#[must_use]
pub fn module_key(module: &Module) -> u64 {
    let mut h = FNV_OFFSET;
    for (_, f) in module.iter() {
        h = fnv1a(h, &f.fingerprint().to_le_bytes());
    }
    h
}

/// The cross-process cache key for compiling `module` with `compiler`
/// for the default [`Backend::Vm`]: [`config_key`] and [`module_key`]
/// combined.
#[must_use]
pub fn artifact_key(compiler: &Compiler, module: &Module) -> u64 {
    artifact_key_for(compiler, Backend::Vm, module)
}

/// [`artifact_key`] for an explicit [`Backend`].
#[must_use]
pub fn artifact_key_for(compiler: &Compiler, backend: Backend, module: &Module) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &config_key_for(compiler, backend).to_le_bytes());
    h = fnv1a(h, &module_key(module).to_le_bytes());
    h
}

/// [`Function::fingerprint`] of one function — re-exported entry point so
/// artifact-cache consumers name the same primitive the analysis cache
/// validates against.
#[must_use]
pub fn function_key(f: &Function) -> u64 {
    f.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_core::Variant;
    use sxe_ir::{parse_module, Target};

    const A: &str = "func @f(i32) -> i32 {\nb0:\n    r1 = const.i32 2\n    r2 = add.i32 r0, r1\n    ret r2\n}\n";
    const B: &str = "func @f(i32) -> i32 {\nb0:\n    r1 = const.i32 3\n    r2 = add.i32 r0, r1\n    ret r2\n}\n";

    #[test]
    fn key_is_deterministic_and_body_sensitive() {
        let c = Compiler::for_variant(Variant::All);
        let a = parse_module(A).unwrap();
        let b = parse_module(B).unwrap();
        assert_eq!(artifact_key(&c, &a), artifact_key(&c, &a));
        assert_ne!(
            artifact_key(&c, &a),
            artifact_key(&c, &b),
            "same name, different body must miss"
        );
    }

    #[test]
    fn key_is_config_sensitive() {
        let a = parse_module(A).unwrap();
        let all = Compiler::for_variant(Variant::All);
        let base = Compiler::for_variant(Variant::Baseline);
        let ppc = Compiler::for_variant(Variant::All).with_target(Target::Ppc64);
        assert_ne!(artifact_key(&all, &a), artifact_key(&base, &a));
        assert_ne!(artifact_key(&all, &a), artifact_key(&ppc, &a));
        // Every target pair keys distinctly: a mips64 artifact (built
        // under canonical-form folding) must never answer another
        // target's request, and vice versa.
        let keys: Vec<u64> = Target::ALL
            .iter()
            .map(|&t| artifact_key(&Compiler::for_variant(Variant::All).with_target(t), &a))
            .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "{:?} vs {:?}", Target::ALL[i], Target::ALL[j]);
            }
        }
    }

    #[test]
    fn key_ignores_output_neutral_knobs() {
        let a = parse_module(A).unwrap();
        let plain = Compiler::for_variant(Variant::All);
        let tuned = Compiler::for_variant(Variant::All)
            .with_threads(8)
            .with_cache(false)
            .with_budget(Some(10), None);
        assert_eq!(
            artifact_key(&plain, &a),
            artifact_key(&tuned, &a),
            "threads/cache/budget are not part of the artifact identity"
        );
    }

    #[test]
    fn backend_is_part_of_the_identity() {
        let c = Compiler::for_variant(Variant::All);
        let a = parse_module(A).unwrap();
        assert_ne!(
            artifact_key_for(&c, Backend::Vm, &a),
            artifact_key_for(&c, Backend::Native, &a),
            "a VM-era artifact must never answer a native-era request"
        );
        // The legacy entry points are the VM backend.
        assert_eq!(artifact_key(&c, &a), artifact_key_for(&c, Backend::Vm, &a));
        assert_eq!(config_key(&c), config_key_for(&c, Backend::Vm));
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("vm".parse::<Backend>(), Ok(Backend::Vm));
        assert_eq!("native".parse::<Backend>(), Ok(Backend::Native));
        assert!("jit".parse::<Backend>().is_err());
        assert_eq!(Backend::Vm.to_string(), "vm");
        assert_eq!(Backend::Native.to_string(), "native");
        assert_eq!(Backend::default(), Backend::Vm);
    }

    #[test]
    fn function_key_matches_fingerprint() {
        let a = parse_module(A).unwrap();
        let (_, f) = a.iter().next().unwrap();
        assert_eq!(function_key(f), f.fingerprint());
    }
}
