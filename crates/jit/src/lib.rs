//! # sxe-jit — the Figure 5 compilation pipeline
//!
//! Drives the three steps of the paper's flow diagram over a module
//! written in 32-bit form:
//!
//! 1. conversion for a 64-bit architecture ([`sxe_core::convert`]);
//! 2. general optimizations ([`sxe_opt`]);
//! 3. elimination and movement of sign extensions ([`sxe_core::run_step3`]).
//!
//! The compiler measures per-phase wall-clock time (the paper's Table 3
//! breakdown) and supports the paper's combined interpreter + dynamic
//! compiler mode: [`Compiler::compile_profiled`] interprets the
//! pre-step-3 code once to collect block frequencies, then feeds them to
//! order determination.
//!
//! Two throughput levers ride on top of the pipeline:
//!
//! * **sharded compilation** — [`Compiler::threads`] splits the per-
//!   function work of steps 2 and 3 (and whole modules in
//!   [`Compiler::compile_batch`]) across a fixed-size worker pool, with a
//!   merge in function order so the output is byte-identical to a
//!   sequential run;
//! * **memoized analyses** — [`Compiler::cache`] keeps each worker's
//!   [`sxe_analysis::AnalysisCache`] of CFG / liveness / UD/DU facts warm
//!   across pipeline stages, invalidated whenever a pass rewrites the
//!   function.
//!
//! Construction goes through [`Compiler::builder`]; fallible entry points
//! ([`Compiler::try_compile`]) return [`CompileError`] instead of
//! panicking on bad input.
//!
//! ```
//! use sxe_ir::parse_module;
//! use sxe_jit::prelude::*;
//!
//! // i = x & 0xff is provably sign-extended: the generated extension
//! // before the i2d conversion is eliminated.
//! let source = parse_module(
//!     "func @main(i32) -> f64 {\nb0:\n    r1 = const.i32 255\n    r2 = and.i32 r0, r1\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n",
//! )?;
//! let compiler = Compiler::builder(Variant::All).threads(2).build();
//! let compiled = compiler.try_compile(&source).expect("valid input");
//! assert_eq!(compiled.module.count_extends(None), 0);
//! # Ok::<(), sxe_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod harness;
pub mod report;
pub mod shard;

use std::fmt;
use std::time::{Duration, Instant};

use sxe_analysis::{AnalysisCache, CacheStats};
use sxe_core::{GenStrategy, SxeConfig, SxeStats, Variant};
use sxe_ir::{verify_function, verify_module, Budget, Function, Module, Target, VerifyError};
use sxe_opt::{GeneralOpts, OptStats};
use sxe_telemetry::{ArgValue, Event, Lane};
use sxe_vm::Vm;

pub use artifact::Backend;
pub use harness::FaultPlan;
pub use report::{CompileReport, InjectedFault, PassRecord, PassStatus, RollbackCause};
pub use sxe_telemetry::Telemetry;

use harness::{corrupt_function, corrupt_module, Harness, SharedState};
use shard::{par_map, par_map_mut};

/// One-stop imports for driving the compiler.
///
/// ```
/// use sxe_jit::prelude::*;
/// let compiler = Compiler::builder(Variant::All).build();
/// ```
pub mod prelude {
    pub use crate::artifact::{artifact_key, artifact_key_for, config_key, config_key_for, module_key, Backend};
    pub use crate::{
        CompileError, CompileReport, Compiled, Compiler, CompilerBuilder, FaultPlan, PassRecord,
        PassStatus, PhaseTimes, Telemetry,
    };
    pub use sxe_core::{SxeConfig, SxeStats, Variant};
    pub use sxe_ir::Target;
    pub use sxe_opt::{GeneralOpts, OptStats};
}

/// Why a compilation was refused or could not produce a verified module.
///
/// Non-exhaustive: downstream matches need a wildcard arm so future
/// refusal reasons are not a breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The input module failed verification (or — an internal bug — the
    /// compiled output did).
    Verify(VerifyError),
    /// The requested profiling entry function does not exist.
    MissingEntry(String),
    /// The compile budget was already exhausted before any pass ran;
    /// nothing would be compiled, so the input is refused outright
    /// instead of returning it untouched.
    BudgetExhaustedBeforeStart,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Verify(e) => write!(f, "verification failed: {e}"),
            CompileError::MissingEntry(name) => {
                write!(f, "profiling entry function @{name} does not exist")
            }
            CompileError::BudgetExhaustedBeforeStart => {
                f.write_str("compile budget exhausted before compilation started")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

/// The compilation pipeline configuration.
///
/// Build one with [`Compiler::builder`] (or [`Compiler::for_variant`] for
/// the defaults); the fields remain public for direct tweaking.
#[derive(Debug, Clone)]
pub struct Compiler {
    /// Step 3 configuration (variant, target, widths, array bound).
    pub sxe: SxeConfig,
    /// Step 2 configuration.
    pub general: GeneralOpts,
    /// Verify the module before and after compilation (cheap; on by
    /// default). Independent of the per-pass verification gates, which
    /// always run.
    pub verify: bool,
    /// Compile budget in fuel units (one unit per pass boundary, one per
    /// extension examined by elimination). `None` = unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock compile budget. `None` = unlimited.
    pub time_limit: Option<Duration>,
    /// Deterministic fault to inject (chaos testing). `None` in
    /// production.
    pub fault_plan: Option<FaultPlan>,
    /// Worker threads for sharded compilation: functions of a module in
    /// [`try_compile`](Self::try_compile), whole modules in
    /// [`try_compile_batch`](Self::try_compile_batch). `1` (the default)
    /// is fully sequential — no thread is spawned. With an unlimited
    /// budget and no fault plan the output is byte-identical across
    /// thread counts.
    pub threads: usize,
    /// Memoize per-function analyses (CFG, liveness, UD/DU chains) across
    /// pipeline stages, invalidated on every rewrite. On by default; the
    /// output is identical either way, so `false` is only useful for
    /// measuring the cache's effect.
    pub cache: bool,
    /// Telemetry sink: spans around every containment boundary plus the
    /// pipeline's metrics, exported via [`Telemetry::chrome_trace`] /
    /// [`Telemetry::metrics_json`]. Disabled by default (a null sink
    /// whose per-boundary cost is one branch); the compiled output is
    /// byte-identical either way.
    pub telemetry: Telemetry,
}

impl Compiler {
    /// A compiler running the full paper pipeline for `variant` on IA64.
    #[must_use]
    pub fn for_variant(variant: Variant) -> Compiler {
        Compiler {
            sxe: SxeConfig::for_variant(variant),
            general: GeneralOpts::default(),
            verify: true,
            fuel: None,
            time_limit: None,
            fault_plan: None,
            threads: 1,
            cache: true,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Start building a compiler for `variant`.
    #[must_use]
    pub fn builder(variant: Variant) -> CompilerBuilder {
        CompilerBuilder { compiler: Compiler::for_variant(variant) }
    }

    /// Override the target architecture.
    #[must_use]
    pub fn with_target(mut self, target: Target) -> Compiler {
        self.sxe.target = target;
        self
    }

    /// Bound the work this compiler may spend per compilation.
    #[must_use]
    pub fn with_budget(mut self, fuel: Option<u64>, time_limit: Option<Duration>) -> Compiler {
        self.fuel = fuel;
        self.time_limit = time_limit;
        self
    }

    /// Inject a deterministic fault (chaos testing).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Compiler {
        self.fault_plan = Some(plan);
        self
    }

    /// Set the worker-pool size for sharded compilation.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Compiler {
        self.threads = threads.max(1);
        self
    }

    /// Enable or disable the per-worker analysis cache.
    #[must_use]
    pub fn with_cache(mut self, cache: bool) -> Compiler {
        self.cache = cache;
        self
    }

    /// Attach a telemetry sink. Every compilation through this compiler
    /// (including batch members, which share the handle) records into
    /// the sink's one session.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Compiler {
        self.telemetry = telemetry;
        self
    }

    fn budget(&self) -> Budget {
        match (self.fuel, self.time_limit) {
            (None, None) => Budget::unlimited(),
            (fuel, time) => Budget::new(fuel.unwrap_or(u64::MAX), time),
        }
    }

    /// Compile `source` (32-bit-form IR).
    ///
    /// # Errors
    /// [`CompileError::Verify`] when the input does not verify;
    /// [`CompileError::BudgetExhaustedBeforeStart`] when the budget is
    /// empty before the first pass.
    pub fn try_compile(&self, source: &Module) -> Result<Compiled, CompileError> {
        self.compile_inner(source, None)
    }

    /// Compile with interpreter-collected profile guidance: the module is
    /// converted and generally optimized, executed once in the VM with
    /// block profiling (the paper's interpreter stage), and then step 3
    /// runs with the measured frequencies.
    ///
    /// The profiling run executes `entry(args)`; a trapped profiling run
    /// simply yields no profile.
    ///
    /// # Errors
    /// Everything [`try_compile`](Self::try_compile) reports, plus
    /// [`CompileError::MissingEntry`] when `entry` is not in the module.
    pub fn try_compile_profiled(
        &self,
        source: &Module,
        entry: &str,
        args: &[i64],
    ) -> Result<Compiled, CompileError> {
        if source.function_by_name(entry).is_none() {
            return Err(CompileError::MissingEntry(entry.to_string()));
        }
        self.compile_inner(source, Some((entry, args)))
    }

    /// Compile a batch of independent modules, sharding whole modules
    /// across the worker pool (each individual compile runs sequentially
    /// so the pool is not oversubscribed). Results come back in input
    /// order; the first error aborts the batch.
    ///
    /// # Errors
    /// The first [`CompileError`] any module produces.
    pub fn try_compile_batch(&self, sources: &[Module]) -> Result<Vec<Compiled>, CompileError> {
        let inner = self.clone().with_threads(1);
        par_map(sources, self.threads, |_, m| inner.try_compile(m))
            .into_iter()
            .collect()
    }

    /// Infallible [`try_compile`](Self::try_compile).
    ///
    /// # Panics
    /// Panics on any [`CompileError`] — the input or an optimizer is
    /// broken.
    #[must_use]
    pub fn compile(&self, source: &Module) -> Compiled {
        self.try_compile(source).unwrap_or_else(|e| panic!("compile failed: {e}"))
    }

    /// Infallible [`try_compile_profiled`](Self::try_compile_profiled).
    ///
    /// # Panics
    /// Panics on any [`CompileError`].
    #[must_use]
    pub fn compile_profiled(&self, source: &Module, entry: &str, args: &[i64]) -> Compiled {
        self.try_compile_profiled(source, entry, args)
            .unwrap_or_else(|e| panic!("compile failed: {e}"))
    }

    /// Infallible [`try_compile_batch`](Self::try_compile_batch).
    ///
    /// # Panics
    /// Panics on any [`CompileError`].
    #[must_use]
    pub fn compile_batch(&self, sources: &[Module]) -> Vec<Compiled> {
        self.try_compile_batch(sources).unwrap_or_else(|e| panic!("compile failed: {e}"))
    }

    fn compile_inner(
        &self,
        source: &Module,
        profile_run: Option<(&str, &[i64])>,
    ) -> Result<Compiled, CompileError> {
        if self.verify {
            verify_module(source).map_err(CompileError::Verify)?;
        }
        let tel = &self.telemetry;
        let shared = SharedState::new(self.fault_plan, self.budget(), tel.clock());
        if shared.budget.exhausted() {
            return Err(CompileError::BudgetExhaustedBeforeStart);
        }

        let mut module = source.clone();
        let mut times = PhaseTimes::default();
        let mut report = CompileReport {
            seed: self.fault_plan.map(|p| p.seed),
            ..CompileReport::default()
        };
        let mut opt_stats = OptStats::default();
        let mut cache_stats = CacheStats::default();

        // Driver-scope trace: one `compile` span enclosing everything,
        // plus one per pipeline section. Worker lanes are accumulated
        // here and submitted in one deterministic batch at the end —
        // function order, mirroring the report merge, so the trace is
        // identical at any thread count (modulo thread ids).
        let mut driver = tel.lane("compile");
        let compile_span = driver.begin("compile", "jit");
        let mut events: Vec<Event> = Vec::new();

        // Sequential prologue: the two module-scope boundaries. Ordinals
        // 0 (convert) and, when inlining, 1 — exactly the sequential
        // numbering, so chaos seeds target the same boundaries at any
        // thread count.
        let mut prologue = Harness::new(&shared, "module");

        // Step 1: conversion for a 64-bit architecture.
        let strategy = if self.sxe.variant.gen_use() {
            GenStrategy::BeforeUse
        } else {
            GenStrategy::AfterDef
        };
        let step1_span = driver.begin("step1-convert", "jit");
        let t = Instant::now();
        let target = self.sxe.target;
        let generated = prologue.run_boundary(
            "convert",
            None,
            &mut module,
            verify_module,
            corrupt_module,
            |m, _| sxe_core::convert_module(m, target, strategy),
        );
        // A rolled-back conversion leaves the (verified) 32-bit module;
        // count its extensions so the stats stay meaningful.
        let generated = generated.unwrap_or_else(|| module.count_extends(None));
        times.conversion = t.elapsed();
        driver.end_with(step1_span, vec![("generated", ArgValue::U64(generated as u64))]);

        // Step 2: general optimizations — inlining module-wide, then the
        // scalar fixpoint per function, each function sharded onto the
        // worker pool with its own harness and analysis cache.
        let step2_span = driver.begin("step2-general-opts", "jit");
        let t = Instant::now();
        if let Some(inline_opts) = self.general.inline {
            let inlined = prologue.run_boundary(
                "inline",
                None,
                &mut module,
                verify_module,
                corrupt_module,
                |m, _| sxe_opt::inline::run_module(m, &inline_opts),
            );
            opt_stats.inline = inlined.unwrap_or(0);
        }
        let (prologue_report, prologue_events) = prologue.finish();
        report.absorb(prologue_report);
        events.extend(prologue_events);

        let general = &self.general;
        let use_cache = self.cache;
        let step2_target = self.sxe.target;
        let step2 = par_map_mut(&mut module.functions, self.threads, |_, f| {
            step2_function(f, general, &shared, use_cache, step2_target)
        });
        for out in step2 {
            report.absorb(out.report);
            opt_stats.merge(out.opt);
            cache_stats.merge(out.cache);
            events.extend(out.events);
        }
        times.general_opts = t.elapsed();
        driver.end(step2_span);

        // Optional interpreter stage: profile the pre-step-3 code.
        let profile_span =
            profile_run.is_some().then(|| driver.begin("profile-interpret", "vm"));
        let mut use_profile = self.sxe.use_profile;
        let profile: Option<sxe_core::ModuleProfile> = profile_run.and_then(|(entry, args)| {
            let mut vm = Vm::builder(&module).target(self.sxe.target).profile(true).build();
            let ok = vm.run(entry, args).is_ok();
            ok.then(|| {
                (0..module.functions.len())
                    .map(|i| {
                        vm.profile_counts(sxe_ir::FuncId(i as u32))
                            .expect("profiling enabled")
                            .to_vec()
                    })
                    .collect()
            })
        });
        if profile.is_some() {
            use_profile = true;
        }
        if let Some(span) = profile_span {
            driver.end_with(span, vec![("profiled", ArgValue::Bool(profile.is_some()))]);
        }

        // Step 3: elimination and movement of sign extensions, sharded
        // per function; each stage (insertion / ordering / elimination)
        // gets its own boundary so a fault in one costs only that stage.
        let step3_span = driver.begin("step3-sxe", "jit");
        let mut config = self.sxe.clone();
        config.use_profile = use_profile;
        let mut stats = SxeStats::default();
        let t_section = Instant::now();
        let profile = profile.as_ref();
        let config = &config;
        let step3 = par_map_mut(&mut module.functions, self.threads, |i, f| {
            let p = profile.and_then(|p| p.get(i)).map(Vec::as_slice);
            step3_function(f, config, p, &shared, use_cache)
        });
        let mut sxe_opt_time = Duration::ZERO;
        for out in step3 {
            report.absorb(out.report);
            stats.merge(out.stats);
            cache_stats.merge(out.cache);
            events.extend(out.events);
            times.chain_creation += out.chain_creation;
            sxe_opt_time += out.sxe_opt;
        }
        times.sxe_opt = sxe_opt_time;
        times.step3_overhead =
            t_section.elapsed().saturating_sub(times.chain_creation + times.sxe_opt);
        driver.end(step3_span);

        if self.verify {
            verify_module(&module).map_err(CompileError::Verify)?;
        }
        stats.generated = generated;

        driver.end_with(
            compile_span,
            vec![
                ("functions", ArgValue::U64(module.functions.len() as u64)),
                ("incidents", ArgValue::U64(report.incidents() as u64)),
            ],
        );
        if tel.is_enabled() {
            // Driver lane first, then the per-function lanes in the
            // fixed order accumulated above.
            let mut all = driver.into_events();
            all.extend(events);
            tel.submit(all);
            tel.metrics(|m| record_compile_metrics(m, &stats, &opt_stats, &report, cache_stats));
        }

        Ok(Compiled { module, stats, opt_stats, times, report })
    }
}

/// Fold one compilation's already-aggregated statistics into the metrics
/// registry. Emitting centrally from the same values [`Compiled`]
/// carries is what guarantees `--metrics` totals reconcile exactly with
/// [`CompileReport`] / [`OptStats`] / [`SxeStats`].
fn record_compile_metrics(
    m: &mut sxe_telemetry::Registry,
    stats: &SxeStats,
    opt_stats: &OptStats,
    report: &CompileReport,
    cache: CacheStats,
) {
    m.add("compile.modules", 1);
    stats.record_into(m);
    opt_stats.record_into(m);
    m.add("cache.hit", cache.hits);
    m.add("cache.miss", cache.misses);
    m.add("cache.invalidation", cache.invalidations);
    m.add("compile.boundaries", report.boundaries() as u64);
    m.add("compile.rollbacks", report.rollbacks().count() as u64);
    m.add("compile.incidents", report.incidents() as u64);
    // The fuel model: one unit per boundary whose body actually ran
    // (skipped and budget-stopped boundaries spend nothing), one per
    // extension site the elimination examined.
    let ran = report
        .records
        .iter()
        .filter(|r| matches!(r.status, PassStatus::Ok | PassStatus::RolledBack(_)))
        .count();
    m.add("compile.fuel_spent", (ran + stats.examined) as u64);
    for r in &report.records {
        m.observe(
            format!("pass.{}.wall_ns", r.pass),
            u64::try_from(r.duration.as_nanos()).unwrap_or(u64::MAX),
        );
    }
}

/// Builder-style construction of a [`Compiler`].
///
/// ```
/// use sxe_jit::prelude::*;
/// let compiler = Compiler::builder(Variant::All)
///     .target(Target::Ppc64)
///     .budget(Some(10_000), None)
///     .threads(4)
///     .build();
/// assert_eq!(compiler.threads, 4);
/// ```
#[derive(Debug, Clone)]
pub struct CompilerBuilder {
    compiler: Compiler,
}

impl CompilerBuilder {
    /// Override the target architecture.
    #[must_use]
    pub fn target(mut self, target: Target) -> CompilerBuilder {
        self.compiler.sxe.target = target;
        self
    }

    /// Replace the step-2 configuration.
    #[must_use]
    pub fn general(mut self, general: GeneralOpts) -> CompilerBuilder {
        self.compiler.general = general;
        self
    }

    /// Toggle whole-module verification before and after compilation.
    #[must_use]
    pub fn verify(mut self, verify: bool) -> CompilerBuilder {
        self.compiler.verify = verify;
        self
    }

    /// Bound the work spent per compilation (fuel units, wall clock).
    #[must_use]
    pub fn budget(mut self, fuel: Option<u64>, time_limit: Option<Duration>) -> CompilerBuilder {
        self.compiler.fuel = fuel;
        self.compiler.time_limit = time_limit;
        self
    }

    /// Inject a deterministic fault (chaos testing).
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> CompilerBuilder {
        self.compiler.fault_plan = Some(plan);
        self
    }

    /// Set the worker-pool size for sharded compilation.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> CompilerBuilder {
        self.compiler.threads = threads.max(1);
        self
    }

    /// Enable or disable the per-worker analysis cache.
    #[must_use]
    pub fn cache(mut self, cache: bool) -> CompilerBuilder {
        self.compiler.cache = cache;
        self
    }

    /// Attach a telemetry sink (see [`Compiler::with_telemetry`]).
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> CompilerBuilder {
        self.compiler.telemetry = telemetry;
        self
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> Compiler {
        self.compiler
    }
}

/// Per-function results of the step-2 scalar fixpoint.
struct Step2Outcome {
    report: CompileReport,
    opt: OptStats,
    cache: CacheStats,
    events: Vec<Event>,
}

fn step2_function(
    f: &mut Function,
    general: &GeneralOpts,
    shared: &SharedState,
    use_cache: bool,
    target: Target,
) -> Step2Outcome {
    let fname = f.name.clone();
    let mut harness = Harness::new(shared, &format!("step2:@{fname}"));
    let mut cache = AnalysisCache::new();
    if use_cache && shared.clock.is_some() {
        cache.attach_trace(Lane::new(shared.clock, &format!("cache.step2:@{fname}")));
    }
    let passes = general.passes();
    let mut opt = OptStats::default();
    for _ in 0..general.max_iters {
        let mut round = OptStats::default();
        for &p in &passes {
            let n = harness.run_boundary(
                p.name(),
                Some(&fname),
                f,
                verify_function,
                corrupt_function,
                |f, _| {
                    if use_cache {
                        p.run_cached(f, &mut cache, target)
                    } else {
                        p.run(f, target)
                    }
                },
            );
            p.record(&mut round, n.unwrap_or(0));
        }
        let progress = round.total();
        opt.merge(round);
        if progress == 0 {
            break;
        }
    }
    f.compact();
    let cache_stats = cache.stats();
    let (report, mut events) = harness.finish();
    events.extend(cache.detach_trace().into_events());
    Step2Outcome { report, opt, cache: cache_stats, events }
}

/// Per-function results of step 3.
struct Step3Outcome {
    report: CompileReport,
    stats: SxeStats,
    cache: CacheStats,
    events: Vec<Event>,
    chain_creation: Duration,
    sxe_opt: Duration,
}

impl Step3Outcome {
    /// Package one function's results, draining the harness and cache.
    fn collect(
        harness: Harness<'_>,
        cache: &mut AnalysisCache,
        stats: SxeStats,
        chain_creation: Duration,
        sxe_opt: Duration,
    ) -> Step3Outcome {
        let cache_stats = cache.stats();
        let (report, mut events) = harness.finish();
        events.extend(cache.detach_trace().into_events());
        Step3Outcome { report, stats, cache: cache_stats, events, chain_creation, sxe_opt }
    }
}

fn step3_function(
    f: &mut Function,
    config: &SxeConfig,
    profile: Option<&[u64]>,
    shared: &SharedState,
    use_cache: bool,
) -> Step3Outcome {
    let fname = f.name.clone();
    let mut harness = Harness::new(shared, &format!("step3:@{fname}"));
    let mut cache = AnalysisCache::new();
    if use_cache && shared.clock.is_some() {
        cache.attach_trace(Lane::new(shared.clock, &format!("cache.step3:@{fname}")));
    }
    let mut stats = SxeStats::default();
    let mut chain_creation = Duration::ZERO;
    let mut sxe_opt = Duration::ZERO;

    if config.variant.first_algorithm() {
        let t = Instant::now();
        if let Some(s) = harness.run_boundary(
            "first-algorithm",
            Some(&fname),
            f,
            verify_function,
            corrupt_function,
            |f, _| sxe_core::step3_first(f, config),
        ) {
            stats.merge(s);
        }
        sxe_opt += t.elapsed();
        return Step3Outcome::collect(harness, &mut cache, stats, chain_creation, sxe_opt);
    }
    if !config.variant.uses_udu() {
        // Baseline / gen-use: no step-3 optimization, no boundaries.
        return Step3Outcome::collect(harness, &mut cache, stats, chain_creation, sxe_opt);
    }

    let t = Instant::now();
    if let Some(ins) = harness.run_boundary(
        "step3-insert",
        Some(&fname),
        f,
        verify_function,
        corrupt_function,
        |f, _| {
            if use_cache {
                sxe_core::step3_insertion_cached(f, config, &mut cache)
            } else {
                sxe_core::step3_insertion(f, config)
            }
        },
    ) {
        stats.dummies += ins.dummies;
        stats.inserted += ins.inserted;
    }

    let order = harness
        .run_boundary(
            "step3-order",
            Some(&fname),
            f,
            verify_function,
            corrupt_function,
            |f, _| {
                if use_cache {
                    sxe_core::step3_order_cached(f, config, profile, &mut cache)
                } else {
                    sxe_core::step3_order(f, config, profile)
                }
            },
        )
        // A rolled-back ordering still leaves every site eliminable —
        // just without the hottest-first payoff.
        .unwrap_or_else(|| sxe_core::fallback_order(f, config));
    sxe_opt += t.elapsed();

    let t = Instant::now();
    match harness.run_boundary(
        "step3-eliminate",
        Some(&fname),
        f,
        verify_function,
        corrupt_function,
        |f, budget| {
            if use_cache {
                sxe_core::step3_eliminate_cached(f, config, &order, budget, &mut cache)
            } else {
                sxe_core::step3_eliminate(f, config, &order, budget)
            }
        },
    ) {
        Some(out) => {
            stats.examined += out.examined;
            stats.eliminated += out.eliminated;
            stats.eliminated_via_array += out.via_array;
            chain_creation += out.chain_creation;
            sxe_opt += t.elapsed().saturating_sub(out.chain_creation);
            if out.exhausted {
                harness.report.budget_exhausted = true;
            }
        }
        None => {
            // Rolled back (or budget-stopped) after insertion: scrub the
            // leftover dummy markers before shipping.
            sxe_core::strip_dummies(f);
            sxe_opt += t.elapsed();
        }
    }
    Step3Outcome::collect(harness, &mut cache, stats, chain_creation, sxe_opt)
}

/// Per-phase compile-time breakdown (the quantities behind Table 3).
///
/// In a sharded compilation `conversion` and `general_opts` are
/// wall-clock section times while `chain_creation` and `sxe_opt` are
/// summed across workers (they can exceed the section's wall clock).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Step 1: 64-bit conversion.
    pub conversion: Duration,
    /// Step 2: general optimizations.
    pub general_opts: Duration,
    /// UD/DU chain creation inside step 3 (reported separately in Table 3
    /// because the chains serve other optimizations too).
    pub chain_creation: Duration,
    /// The sign-extension optimizations proper (insertion, ordering,
    /// elimination).
    pub sxe_opt: Duration,
    /// Step-3 bookkeeping not attributed to either bucket.
    pub step3_overhead: Duration,
}

impl PhaseTimes {
    /// Total compilation time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.conversion
            + self.general_opts
            + self.chain_creation
            + self.sxe_opt
            + self.step3_overhead
    }

    /// Everything that is neither the sign-extension optimizations nor
    /// chain creation ("Others" in Table 3).
    #[must_use]
    pub fn others(&self) -> Duration {
        self.conversion + self.general_opts + self.step3_overhead
    }

    /// Accumulate another compilation's times.
    pub fn merge(&mut self, o: PhaseTimes) {
        self.conversion += o.conversion;
        self.general_opts += o.general_opts;
        self.chain_creation += o.chain_creation;
        self.sxe_opt += o.sxe_opt;
        self.step3_overhead += o.step3_overhead;
    }
}

/// Result of a compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The optimized 64-bit module, ready for the VM.
    pub module: Module,
    /// Static sign-extension statistics.
    pub stats: SxeStats,
    /// Rewrite counts from the step-2 general optimizations.
    pub opt_stats: OptStats,
    /// Phase timing.
    pub times: PhaseTimes,
    /// Per-boundary account of the compilation, including any contained
    /// incidents.
    pub report: CompileReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_module;

    const LOOPY: &str = "\
func @main(i32) -> f64 {
b0:
    r1 = newarray.i32 r0
    r2 = const.i32 0
    br b1
b1:
    r3 = const.i32 1
    r0 = sub.i32 r0, r3
    r4 = aload.i32 r1, r0
    r2 = add.i32 r2, r4
    condbr gt.i32 r0, r3, b1, b2
b2:
    r5 = i32tof64.f64 r2
    ret r5
}
";

    /// Three functions so sharding has something to split.
    const MULTI: &str = "\
func @main(i32) -> f64 {
b0:
    r1 = newarray.i32 r0
    r2 = const.i32 0
    br b1
b1:
    r3 = const.i32 1
    r0 = sub.i32 r0, r3
    r4 = aload.i32 r1, r0
    r2 = add.i32 r2, r4
    condbr gt.i32 r0, r3, b1, b2
b2:
    r5 = i32tof64.f64 r2
    ret r5
}
func @mask(i32) -> i64 {
b0:
    r1 = const.i32 255
    r2 = and.i32 r0, r1
    r3 = extend.32 r2
    ret r3
}
func @looper(i32) -> i32 {
b0:
    r1 = const.i32 0
    br b1
b1:
    r2 = const.i32 1
    r1 = add.i32 r1, r2
    r0 = sub.i32 r0, r2
    condbr gt.i32 r0, r2, b1, b2
b2:
    ret r1
}
";

    #[test]
    fn pipeline_end_to_end() {
        let src = parse_module(LOOPY).unwrap();
        let base = Compiler::for_variant(Variant::Baseline).compile(&src);
        let all = Compiler::for_variant(Variant::All).compile(&src);
        assert!(base.module.count_extends(None) > all.module.count_extends(None));
        assert!(all.stats.eliminated > 0);
        assert!(all.times.total() > Duration::ZERO);
    }

    #[test]
    fn all_variants_compile_and_agree_dynamically() {
        let src = parse_module(LOOPY).unwrap();
        let mut reference: Option<(Option<i64>, u64)> = None;
        for v in Variant::ALL {
            let c = Compiler::for_variant(v).compile(&src);
            let mut vm = Vm::new(&c.module, Target::Ia64);
            let out = vm.run("main", &[40]).expect("no trap");
            let key = (out.ret, out.heap_checksum);
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(*r, key, "variant {v} diverged"),
            }
        }
    }

    #[test]
    fn dynamic_counts_ordered() {
        let src = parse_module(LOOPY).unwrap();
        let count = |v: Variant| {
            let c = Compiler::for_variant(v).compile(&src);
            let mut vm = Vm::new(&c.module, Target::Ia64);
            vm.run("main", &[200]).expect("no trap");
            vm.counters().extend_count(None)
        };
        let baseline = count(Variant::Baseline);
        let first = count(Variant::FirstAlgorithm);
        let all = count(Variant::All);
        assert!(first <= baseline);
        assert!(all <= first);
        // Figure 8(b): exactly one extension survives, placed after the
        // loop — it executes once regardless of the trip count.
        assert_eq!(all, 1, "one extension outside the loop");
    }

    #[test]
    fn profiled_compile_works() {
        let src = parse_module(LOOPY).unwrap();
        let c = Compiler::for_variant(Variant::All).compile_profiled(&src, "main", &[40]);
        let mut vm = Vm::new(&c.module, Target::Ia64);
        let out = vm.run("main", &[40]).expect("no trap");
        assert!(out.ret.is_some());
    }

    #[test]
    fn zext_elimination_option() {
        // zext32 of an IA64 load is redundant; the option removes it.
        let src = parse_module(
            "func @main(i32) -> i64 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r4 = const.i32 0\n    r2 = aload.i32 r1, r4\n    r3 = zext32.i64 r2\n    ret r3\n}\n",
        )
        .unwrap();
        let count_zext = |m: &sxe_ir::Module| {
            m.iter()
                .flat_map(|(_, f)| f.insts().map(|(_, i)| i.clone()).collect::<Vec<_>>())
                .filter(|i| matches!(i, sxe_ir::Inst::Un { op: sxe_ir::UnOp::Zext(_), .. }))
                .count()
        };
        let plain = Compiler::for_variant(Variant::All).compile(&src);
        assert_eq!(count_zext(&plain.module), 1);
        let mut with = Compiler::for_variant(Variant::All);
        with.sxe.eliminate_zext = true;
        let optimized = with.compile(&src);
        assert_eq!(count_zext(&optimized.module), 0);
        // Behaviour preserved.
        let run = |m: &sxe_ir::Module| {
            let mut vm = Vm::new(m, Target::Ia64);
            vm.run("main", &[2]).expect("no trap").ret
        };
        assert_eq!(run(&plain.module), run(&optimized.module));
    }

    #[test]
    fn general_opts_can_be_disabled() {
        let src = parse_module(LOOPY).unwrap();
        let mut c = Compiler::for_variant(Variant::All);
        c.general = sxe_opt::GeneralOpts::none();
        let compiled = c.compile(&src);
        let mut vm = Vm::new(&compiled.module, Target::Ia64);
        let out = vm.run("main", &[40]).expect("no trap");
        let reference = Compiler::for_variant(Variant::All).compile(&src);
        let mut vm2 = Vm::new(&reference.module, Target::Ia64);
        assert_eq!(out.ret, vm2.run("main", &[40]).expect("no trap").ret);
    }

    #[test]
    fn clean_compile_reports_clean() {
        let src = parse_module(LOOPY).unwrap();
        let c = Compiler::for_variant(Variant::All).compile(&src);
        assert!(c.report.clean(), "{}", c.report.summary());
        assert!(c.report.boundaries() > 0);
        assert!(c.report.records.iter().all(|r| r.status == PassStatus::Ok));
        assert!(c.opt_stats.total() > 0, "general opts did something");
    }

    #[test]
    fn fault_injection_is_contained_and_reported() {
        let src = parse_module(LOOPY).unwrap();
        let reference = Compiler::for_variant(Variant::All).compile(&src);
        let boundaries = reference.report.boundaries() as u32;
        let mut vm = Vm::new(&reference.module, Target::Ia64);
        let want = vm.run("main", &[40]).expect("no trap");
        for seed in 0..48 {
            let plan = FaultPlan::from_seed(seed, boundaries);
            let c = Compiler::for_variant(Variant::All).with_fault_plan(plan).compile(&src);
            assert!(
                c.report.incidents() >= 1,
                "seed {seed}: the injected fault must appear in the report"
            );
            let mut vm = Vm::new(&c.module, Target::Ia64);
            let got = vm.run("main", &[40]).expect("no trap");
            assert_eq!(
                (got.ret, got.heap_checksum),
                (want.ret, want.heap_checksum),
                "seed {seed}: recovered compilation must stay semantically identical"
            );
        }
    }

    #[test]
    fn tiny_budget_salvages_a_working_module() {
        let src = parse_module(LOOPY).unwrap();
        let c = Compiler::for_variant(Variant::All).with_budget(Some(3), None).compile(&src);
        assert!(c.report.budget_exhausted);
        let mut vm = Vm::new(&c.module, Target::Ia64);
        let got = vm.run("main", &[40]).expect("no trap");
        let reference = Compiler::for_variant(Variant::All).compile(&src);
        let mut vm2 = Vm::new(&reference.module, Target::Ia64);
        let want = vm2.run("main", &[40]).expect("no trap");
        assert_eq!((got.ret, got.heap_checksum), (want.ret, want.heap_checksum));
    }

    #[test]
    fn ppc64_needs_fewer_extensions_than_ia64() {
        // PPC64's lwa sign-extends loads, so the baseline itself has
        // fewer extensions.
        let src = parse_module(LOOPY).unwrap();
        let ia = Compiler::for_variant(Variant::Baseline).compile(&src);
        let ppc = Compiler::for_variant(Variant::Baseline)
            .with_target(Target::Ppc64)
            .compile(&src);
        assert!(ppc.module.count_extends(None) < ia.module.count_extends(None));
    }

    #[test]
    fn invalid_input_is_a_verify_error() {
        // A function with an unfinished entry block does not verify.
        let mut m = Module::new();
        m.add_function(Function::new("broken", vec![], None));
        match Compiler::for_variant(Variant::All).try_compile(&m) {
            Err(CompileError::Verify(_)) => {}
            other => panic!("expected Verify error, got {other:?}"),
        }
    }

    #[test]
    fn missing_entry_is_reported_not_panicked() {
        let src = parse_module(LOOPY).unwrap();
        let err = Compiler::for_variant(Variant::All)
            .try_compile_profiled(&src, "nope", &[1])
            .unwrap_err();
        assert_eq!(err, CompileError::MissingEntry("nope".into()));
        assert!(err.to_string().contains("@nope"));
    }

    #[test]
    fn empty_budget_is_refused_up_front() {
        let src = parse_module(LOOPY).unwrap();
        let err = Compiler::for_variant(Variant::All)
            .with_budget(Some(0), None)
            .try_compile(&src)
            .unwrap_err();
        assert_eq!(err, CompileError::BudgetExhaustedBeforeStart);
    }

    #[test]
    fn builder_roundtrip() {
        let c = Compiler::builder(Variant::Array)
            .target(Target::Ppc64)
            .budget(Some(5000), Some(Duration::from_secs(1)))
            .threads(4)
            .cache(false)
            .verify(false)
            .general(GeneralOpts::none())
            .build();
        assert_eq!(c.sxe.variant, Variant::Array);
        assert_eq!(c.sxe.target, Target::Ppc64);
        assert_eq!(c.fuel, Some(5000));
        assert_eq!(c.threads, 4);
        assert!(!c.cache && !c.verify);
        assert_eq!(c.general, GeneralOpts::none());
    }

    /// Everything that must be deterministic, Durations excluded.
    type Fingerprint = (String, SxeStats, OptStats, Vec<(String, Option<String>, PassStatus)>);

    fn fingerprint(c: &Compiled) -> Fingerprint {
        let text = c
            .module
            .functions
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        let records = c
            .report
            .records
            .iter()
            .map(|r| (r.pass.clone(), r.function.clone(), r.status.clone()))
            .collect();
        (text, c.stats, c.opt_stats, records)
    }

    #[test]
    fn sharded_output_is_byte_identical() {
        let src = parse_module(MULTI).unwrap();
        for v in [Variant::All, Variant::Array, Variant::FirstAlgorithm, Variant::Baseline] {
            let seq = Compiler::for_variant(v).compile(&src);
            for threads in [2, 4, 8] {
                let par = Compiler::for_variant(v).with_threads(threads).compile(&src);
                assert_eq!(
                    fingerprint(&seq),
                    fingerprint(&par),
                    "{v} threads={threads} diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn cache_does_not_change_output() {
        let src = parse_module(MULTI).unwrap();
        for v in [Variant::All, Variant::Array] {
            let on = Compiler::for_variant(v).compile(&src);
            let off = Compiler::for_variant(v).with_cache(false).compile(&src);
            assert_eq!(fingerprint(&on), fingerprint(&off), "{v}: cache changed the output");
        }
    }

    #[test]
    fn batch_compiles_in_input_order() {
        let a = parse_module(LOOPY).unwrap();
        let b = parse_module(MULTI).unwrap();
        let sources = vec![a.clone(), b.clone(), a, b];
        let seq = Compiler::for_variant(Variant::All).compile_batch(&sources);
        let par = Compiler::for_variant(Variant::All).with_threads(4).compile_batch(&sources);
        assert_eq!(seq.len(), 4);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(fingerprint(s), fingerprint(p));
        }
    }
}
