//! # sxe-jit — the Figure 5 compilation pipeline
//!
//! Drives the three steps of the paper's flow diagram over a module
//! written in 32-bit form:
//!
//! 1. conversion for a 64-bit architecture ([`sxe_core::convert`]);
//! 2. general optimizations ([`sxe_opt`]);
//! 3. elimination and movement of sign extensions ([`sxe_core::run_step3`]).
//!
//! The compiler measures per-phase wall-clock time (the paper's Table 3
//! breakdown) and supports the paper's combined interpreter + dynamic
//! compiler mode: [`Compiler::compile_profiled`] interprets the
//! pre-step-3 code once to collect block frequencies, then feeds them to
//! order determination.
//!
//! ```
//! use sxe_ir::parse_module;
//! use sxe_jit::Compiler;
//! use sxe_core::Variant;
//!
//! // i = x & 0xff is provably sign-extended: the generated extension
//! // before the i2d conversion is eliminated.
//! let source = parse_module(
//!     "func @main(i32) -> f64 {\nb0:\n    r1 = const.i32 255\n    r2 = and.i32 r0, r1\n    r3 = i32tof64.f64 r2\n    ret r3\n}\n",
//! )?;
//! let compiled = Compiler::for_variant(Variant::All).compile(&source);
//! assert_eq!(compiled.module.count_extends(None), 0);
//! # Ok::<(), sxe_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod report;

use std::time::{Duration, Instant};

use sxe_core::{GenStrategy, SxeConfig, SxeStats, Variant};
use sxe_ir::{verify_function, verify_module, Budget, Module, Target};
use sxe_opt::GeneralOpts;
use sxe_vm::Machine;

pub use harness::FaultPlan;
pub use report::{CompileReport, InjectedFault, PassRecord, PassStatus, RollbackCause};

use harness::{corrupt_function, corrupt_module, Harness};

/// The compilation pipeline configuration.
#[derive(Debug, Clone)]
pub struct Compiler {
    /// Step 3 configuration (variant, target, widths, array bound).
    pub sxe: SxeConfig,
    /// Step 2 configuration.
    pub general: GeneralOpts,
    /// Verify the module before and after compilation (cheap; on by
    /// default). Independent of the per-pass verification gates, which
    /// always run.
    pub verify: bool,
    /// Compile budget in fuel units (one unit per pass boundary, one per
    /// extension examined by elimination). `None` = unlimited.
    pub fuel: Option<u64>,
    /// Wall-clock compile budget. `None` = unlimited.
    pub time_limit: Option<Duration>,
    /// Deterministic fault to inject (chaos testing). `None` in
    /// production.
    pub fault_plan: Option<FaultPlan>,
}

impl Compiler {
    /// A compiler running the full paper pipeline for `variant` on IA64.
    #[must_use]
    pub fn for_variant(variant: Variant) -> Compiler {
        Compiler {
            sxe: SxeConfig::for_variant(variant),
            general: GeneralOpts::default(),
            verify: true,
            fuel: None,
            time_limit: None,
            fault_plan: None,
        }
    }

    /// Override the target architecture.
    #[must_use]
    pub fn with_target(mut self, target: Target) -> Compiler {
        self.sxe.target = target;
        self
    }

    /// Bound the work this compiler may spend per compilation.
    #[must_use]
    pub fn with_budget(mut self, fuel: Option<u64>, time_limit: Option<Duration>) -> Compiler {
        self.fuel = fuel;
        self.time_limit = time_limit;
        self
    }

    /// Inject a deterministic fault (chaos testing).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Compiler {
        self.fault_plan = Some(plan);
        self
    }

    fn budget(&self) -> Budget {
        match (self.fuel, self.time_limit) {
            (None, None) => Budget::unlimited(),
            (fuel, time) => Budget::new(fuel.unwrap_or(u64::MAX), time),
        }
    }

    /// Compile `source` (32-bit-form IR).
    ///
    /// # Panics
    /// Panics if verification fails — the input or an optimizer is broken.
    #[must_use]
    pub fn compile(&self, source: &Module) -> Compiled {
        self.compile_inner(source, None)
    }

    /// Compile with interpreter-collected profile guidance: the module is
    /// converted and generally optimized, executed once in the VM with
    /// block profiling (the paper's interpreter stage), and then step 3
    /// runs with the measured frequencies.
    ///
    /// The profiling run executes `entry(args)`; a trapped profiling run
    /// simply yields no profile.
    ///
    /// # Panics
    /// Panics if verification fails or `entry` does not exist.
    #[must_use]
    pub fn compile_profiled(&self, source: &Module, entry: &str, args: &[i64]) -> Compiled {
        self.compile_inner(source, Some((entry, args)))
    }

    #[allow(clippy::too_many_lines)]
    fn compile_inner(&self, source: &Module, profile_run: Option<(&str, &[i64])>) -> Compiled {
        if self.verify {
            verify_module(source).expect("input module must verify");
        }
        let mut module = source.clone();
        let mut times = PhaseTimes::default();
        let mut harness = Harness::new(self.fault_plan, self.budget());

        // Step 1: conversion for a 64-bit architecture.
        let strategy = if self.sxe.variant.gen_use() {
            GenStrategy::BeforeUse
        } else {
            GenStrategy::AfterDef
        };
        let t = Instant::now();
        let target = self.sxe.target;
        let generated = harness.run_boundary(
            "convert",
            None,
            &mut module,
            verify_module,
            corrupt_module,
            |m, _| sxe_core::convert_module(m, target, strategy),
        );
        // A rolled-back conversion leaves the (verified) 32-bit module;
        // count its extensions so the stats stay meaningful.
        let generated = generated.unwrap_or_else(|| module.count_extends(None));
        times.conversion = t.elapsed();

        // Step 2: general optimizations — inlining module-wide, then the
        // scalar fixpoint per function with each pass in its own
        // boundary (same rounds as `sxe_opt::run_function`).
        let t = Instant::now();
        if let Some(inline_opts) = self.general.inline {
            harness.run_boundary(
                "inline",
                None,
                &mut module,
                verify_module,
                corrupt_module,
                |m, _| sxe_opt::inline::run_module(m, &inline_opts),
            );
        }
        let passes = self.general.passes();
        for f in &mut module.functions {
            let fname = f.name.clone();
            for _ in 0..self.general.max_iters {
                let mut round_rewrites = 0;
                for &p in &passes {
                    let n = harness.run_boundary(
                        p.name(),
                        Some(&fname),
                        f,
                        verify_function,
                        corrupt_function,
                        |f, _| p.run(f),
                    );
                    round_rewrites += n.unwrap_or(0);
                }
                if round_rewrites == 0 {
                    break;
                }
            }
            f.compact();
        }
        times.general_opts = t.elapsed();

        // Optional interpreter stage: profile the pre-step-3 code.
        let mut use_profile = self.sxe.use_profile;
        let profile: Option<sxe_core::ModuleProfile> = profile_run.and_then(|(entry, args)| {
            let mut vm = Machine::new(&module, self.sxe.target);
            vm.enable_profile();
            let ok = vm.run(entry, args).is_ok();
            ok.then(|| {
                (0..module.functions.len())
                    .map(|i| {
                        vm.profile_counts(sxe_ir::FuncId(i as u32))
                            .expect("profiling enabled")
                            .to_vec()
                    })
                    .collect()
            })
        });
        if profile.is_some() {
            use_profile = true;
        }

        // Step 3: elimination and movement of sign extensions, one
        // boundary per stage (insertion / ordering / elimination) so a
        // fault in one stage costs only that stage.
        let mut config = self.sxe.clone();
        config.use_profile = use_profile;
        let mut stats = SxeStats::default();
        let t_section = Instant::now();
        let mut sxe_opt_time = Duration::ZERO;
        for (i, f) in module.functions.iter_mut().enumerate() {
            let p = profile.as_ref().and_then(|p| p.get(i)).map(Vec::as_slice);
            let fname = f.name.clone();
            if config.variant.first_algorithm() {
                let t = Instant::now();
                if let Some(s) = harness.run_boundary(
                    "first-algorithm",
                    Some(&fname),
                    f,
                    verify_function,
                    corrupt_function,
                    |f, _| sxe_core::step3_first(f, &config),
                ) {
                    stats.merge(s);
                }
                sxe_opt_time += t.elapsed();
                continue;
            }
            if !config.variant.uses_udu() {
                continue; // baseline / gen-use: no step-3 optimization
            }

            let t = Instant::now();
            if let Some(ins) = harness.run_boundary(
                "step3-insert",
                Some(&fname),
                f,
                verify_function,
                corrupt_function,
                |f, _| sxe_core::step3_insertion(f, &config),
            ) {
                stats.dummies += ins.dummies;
                stats.inserted += ins.inserted;
            }

            let order = harness
                .run_boundary(
                    "step3-order",
                    Some(&fname),
                    f,
                    verify_function,
                    corrupt_function,
                    |f, _| sxe_core::step3_order(f, &config, p),
                )
                // A rolled-back ordering still leaves every site
                // eliminable — just without the hottest-first payoff.
                .unwrap_or_else(|| sxe_core::fallback_order(f, &config));
            sxe_opt_time += t.elapsed();

            let t = Instant::now();
            match harness.run_boundary(
                "step3-eliminate",
                Some(&fname),
                f,
                verify_function,
                corrupt_function,
                |f, budget| sxe_core::step3_eliminate(f, &config, &order, budget),
            ) {
                Some(out) => {
                    stats.examined += out.examined;
                    stats.eliminated += out.eliminated;
                    stats.eliminated_via_array += out.via_array;
                    times.chain_creation += out.chain_creation;
                    sxe_opt_time += t.elapsed().saturating_sub(out.chain_creation);
                    if out.exhausted {
                        harness.report.budget_exhausted = true;
                    }
                }
                None => {
                    // Rolled back (or budget-stopped) after insertion:
                    // scrub the leftover dummy markers before shipping.
                    sxe_core::strip_dummies(f);
                    sxe_opt_time += t.elapsed();
                }
            }
        }
        times.sxe_opt = sxe_opt_time;
        times.step3_overhead =
            t_section.elapsed().saturating_sub(times.chain_creation + times.sxe_opt);

        if self.verify {
            verify_module(&module).expect("compiled module must verify");
        }
        stats.generated = generated;
        Compiled { module, stats, times, report: harness.report }
    }
}

/// Per-phase compile-time breakdown (the quantities behind Table 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Step 1: 64-bit conversion.
    pub conversion: Duration,
    /// Step 2: general optimizations.
    pub general_opts: Duration,
    /// UD/DU chain creation inside step 3 (reported separately in Table 3
    /// because the chains serve other optimizations too).
    pub chain_creation: Duration,
    /// The sign-extension optimizations proper (insertion, ordering,
    /// elimination).
    pub sxe_opt: Duration,
    /// Step-3 bookkeeping not attributed to either bucket.
    pub step3_overhead: Duration,
}

impl PhaseTimes {
    /// Total compilation time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.conversion
            + self.general_opts
            + self.chain_creation
            + self.sxe_opt
            + self.step3_overhead
    }

    /// Everything that is neither the sign-extension optimizations nor
    /// chain creation ("Others" in Table 3).
    #[must_use]
    pub fn others(&self) -> Duration {
        self.conversion + self.general_opts + self.step3_overhead
    }

    /// Accumulate another compilation's times.
    pub fn merge(&mut self, o: PhaseTimes) {
        self.conversion += o.conversion;
        self.general_opts += o.general_opts;
        self.chain_creation += o.chain_creation;
        self.sxe_opt += o.sxe_opt;
        self.step3_overhead += o.step3_overhead;
    }
}

/// Result of a compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The optimized 64-bit module, ready for the VM.
    pub module: Module,
    /// Static sign-extension statistics.
    pub stats: SxeStats,
    /// Phase timing.
    pub times: PhaseTimes,
    /// Per-boundary account of the compilation, including any contained
    /// incidents.
    pub report: CompileReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::parse_module;

    const LOOPY: &str = "\
func @main(i32) -> f64 {
b0:
    r1 = newarray.i32 r0
    r2 = const.i32 0
    br b1
b1:
    r3 = const.i32 1
    r0 = sub.i32 r0, r3
    r4 = aload.i32 r1, r0
    r2 = add.i32 r2, r4
    condbr gt.i32 r0, r3, b1, b2
b2:
    r5 = i32tof64.f64 r2
    ret r5
}
";

    #[test]
    fn pipeline_end_to_end() {
        let src = parse_module(LOOPY).unwrap();
        let base = Compiler::for_variant(Variant::Baseline).compile(&src);
        let all = Compiler::for_variant(Variant::All).compile(&src);
        assert!(base.module.count_extends(None) > all.module.count_extends(None));
        assert!(all.stats.eliminated > 0);
        assert!(all.times.total() > Duration::ZERO);
    }

    #[test]
    fn all_variants_compile_and_agree_dynamically() {
        let src = parse_module(LOOPY).unwrap();
        let mut reference: Option<(Option<i64>, u64)> = None;
        for v in Variant::ALL {
            let c = Compiler::for_variant(v).compile(&src);
            let mut vm = Machine::new(&c.module, Target::Ia64);
            let out = vm.run("main", &[40]).expect("no trap");
            let key = (out.ret, out.heap_checksum);
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(*r, key, "variant {v} diverged"),
            }
        }
    }

    #[test]
    fn dynamic_counts_ordered() {
        let src = parse_module(LOOPY).unwrap();
        let count = |v: Variant| {
            let c = Compiler::for_variant(v).compile(&src);
            let mut vm = Machine::new(&c.module, Target::Ia64);
            vm.run("main", &[200]).expect("no trap");
            vm.counters.extend_count(None)
        };
        let baseline = count(Variant::Baseline);
        let first = count(Variant::FirstAlgorithm);
        let all = count(Variant::All);
        assert!(first <= baseline);
        assert!(all <= first);
        // Figure 8(b): exactly one extension survives, placed after the
        // loop — it executes once regardless of the trip count.
        assert_eq!(all, 1, "one extension outside the loop");
    }

    #[test]
    fn profiled_compile_works() {
        let src = parse_module(LOOPY).unwrap();
        let c = Compiler::for_variant(Variant::All).compile_profiled(&src, "main", &[40]);
        let mut vm = Machine::new(&c.module, Target::Ia64);
        let out = vm.run("main", &[40]).expect("no trap");
        assert!(out.ret.is_some());
    }

    #[test]
    fn zext_elimination_option() {
        // zext32 of an IA64 load is redundant; the option removes it.
        let src = parse_module(
            "func @main(i32) -> i64 {\n\
             b0:\n    r1 = newarray.i32 r0\n    r4 = const.i32 0\n    r2 = aload.i32 r1, r4\n    r3 = zext32.i64 r2\n    ret r3\n}\n",
        )
        .unwrap();
        let count_zext = |m: &sxe_ir::Module| {
            m.iter()
                .flat_map(|(_, f)| f.insts().map(|(_, i)| i.clone()).collect::<Vec<_>>())
                .filter(|i| matches!(i, sxe_ir::Inst::Un { op: sxe_ir::UnOp::Zext(_), .. }))
                .count()
        };
        let plain = Compiler::for_variant(Variant::All).compile(&src);
        assert_eq!(count_zext(&plain.module), 1);
        let mut with = Compiler::for_variant(Variant::All);
        with.sxe.eliminate_zext = true;
        let optimized = with.compile(&src);
        assert_eq!(count_zext(&optimized.module), 0);
        // Behaviour preserved.
        let run = |m: &sxe_ir::Module| {
            let mut vm = Machine::new(m, Target::Ia64);
            vm.run("main", &[2]).expect("no trap").ret
        };
        assert_eq!(run(&plain.module), run(&optimized.module));
    }

    #[test]
    fn general_opts_can_be_disabled() {
        let src = parse_module(LOOPY).unwrap();
        let mut c = Compiler::for_variant(Variant::All);
        c.general = sxe_opt::GeneralOpts::none();
        let compiled = c.compile(&src);
        let mut vm = Machine::new(&compiled.module, Target::Ia64);
        let out = vm.run("main", &[40]).expect("no trap");
        let reference = Compiler::for_variant(Variant::All).compile(&src);
        let mut vm2 = Machine::new(&reference.module, Target::Ia64);
        assert_eq!(out.ret, vm2.run("main", &[40]).expect("no trap").ret);
    }

    #[test]
    fn clean_compile_reports_clean() {
        let src = parse_module(LOOPY).unwrap();
        let c = Compiler::for_variant(Variant::All).compile(&src);
        assert!(c.report.clean(), "{}", c.report.summary());
        assert!(c.report.boundaries() > 0);
        assert!(c.report.records.iter().all(|r| r.status == PassStatus::Ok));
    }

    #[test]
    fn fault_injection_is_contained_and_reported() {
        let src = parse_module(LOOPY).unwrap();
        let reference = Compiler::for_variant(Variant::All).compile(&src);
        let boundaries = reference.report.boundaries() as u32;
        let mut vm = Machine::new(&reference.module, Target::Ia64);
        let want = vm.run("main", &[40]).expect("no trap");
        for seed in 0..48 {
            let plan = FaultPlan::from_seed(seed, boundaries);
            let c = Compiler::for_variant(Variant::All).with_fault_plan(plan).compile(&src);
            assert!(
                c.report.incidents() >= 1,
                "seed {seed}: the injected fault must appear in the report"
            );
            let mut vm = Machine::new(&c.module, Target::Ia64);
            let got = vm.run("main", &[40]).expect("no trap");
            assert_eq!(
                (got.ret, got.heap_checksum),
                (want.ret, want.heap_checksum),
                "seed {seed}: recovered compilation must stay semantically identical"
            );
        }
    }

    #[test]
    fn tiny_budget_salvages_a_working_module() {
        let src = parse_module(LOOPY).unwrap();
        let c = Compiler::for_variant(Variant::All).with_budget(Some(3), None).compile(&src);
        assert!(c.report.budget_exhausted);
        let mut vm = Machine::new(&c.module, Target::Ia64);
        let got = vm.run("main", &[40]).expect("no trap");
        let reference = Compiler::for_variant(Variant::All).compile(&src);
        let mut vm2 = Machine::new(&reference.module, Target::Ia64);
        let want = vm2.run("main", &[40]).expect("no trap");
        assert_eq!((got.ret, got.heap_checksum), (want.ret, want.heap_checksum));
    }

    #[test]
    fn ppc64_needs_fewer_extensions_than_ia64() {
        // PPC64's lwa sign-extends loads, so the baseline itself has
        // fewer extensions.
        let src = parse_module(LOOPY).unwrap();
        let ia = Compiler::for_variant(Variant::Baseline).compile(&src);
        let ppc = Compiler::for_variant(Variant::Baseline)
            .with_target(Target::Ppc64)
            .compile(&src);
        assert!(ppc.module.count_extends(None) < ia.module.count_extends(None));
    }
}
