//! A minimal fixed-size fork/join pool over `std::thread::scope`.
//!
//! The sharded compiler partitions independent work items (functions of a
//! module, modules of a batch) into contiguous chunks, one per worker,
//! and joins the workers in chunk order — so the result vector is always
//! in item order and a `threads = 1` run takes the exact sequential path
//! (no thread is spawned at all).

/// Map `work` over `items` in parallel with at most `threads` workers,
/// mutating items in place. Results come back in item order. Item `i` is
/// passed its original index, so workers can address per-item context
/// without threading it through the slice.
///
/// # Panics
/// Propagates a panic from `work` (workers are expected to contain their
/// own faults — the compile pipeline wraps every pass in a boundary).
pub fn par_map_mut<T, R>(
    items: &mut [T],
    threads: usize,
    work: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, part)| {
                s.spawn(move || {
                    part.iter_mut()
                        .enumerate()
                        .map(|(j, t)| work(ci * chunk + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("compile worker panicked outside a boundary"))
            .collect()
    })
}

/// [`par_map_mut`] over shared references, for work that only reads its
/// item (batch compilation reads each source module and builds a fresh
/// output).
pub fn par_map<T, R>(
    items: &[T],
    threads: usize,
    work: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| work(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let work = &work;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, part)| {
                s.spawn(move || {
                    part.iter()
                        .enumerate()
                        .map(|(j, t)| work(ci * chunk + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("compile worker panicked outside a boundary"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_stay_in_item_order() {
        let mut items: Vec<usize> = (0..23).collect();
        for threads in [1, 2, 4, 7, 32] {
            let out = par_map_mut(&mut items, threads, |i, t| {
                assert_eq!(i, *t);
                i * 10
            });
            assert_eq!(out, (0..23).map(|i| i * 10).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn mutations_land_on_every_item() {
        let mut items = vec![0u64; 100];
        par_map_mut(&mut items, 4, |i, t| *t = i as u64 + 1);
        assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn multiple_workers_actually_run() {
        let ids = std::sync::Mutex::new(HashSet::new());
        let barrier = std::sync::Barrier::new(4);
        let items: Vec<u32> = (0..4).collect();
        par_map(&items, 4, |_, _| {
            barrier.wait(); // deadlocks unless all four run concurrently
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(ids.into_inner().unwrap().len(), 4);
    }

    #[test]
    fn single_thread_spawns_nothing() {
        let main = std::thread::current().id();
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        par_map(&items, 1, |_, _| {
            assert_eq!(std::thread::current().id(), main);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.into_inner(), 8);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut items: Vec<u32> = Vec::new();
        let out: Vec<u32> = par_map_mut(&mut items, 8, |_, t| *t);
        assert!(out.is_empty());
    }
}
