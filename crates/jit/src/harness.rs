//! The containment harness: panic isolation, verification gates with
//! rollback, compile budgets, and deterministic fault injection.
//!
//! Every phase of the pipeline runs inside a *boundary*
//! ([`Harness::run_boundary`]):
//!
//! 1. a snapshot of the target IR is taken;
//! 2. the pass body runs under [`std::panic::catch_unwind`] — a panic is
//!    caught, the IR restored from the snapshot, and the pass disabled
//!    for the rest of the compilation;
//! 3. the output is checked by the verification gate
//!    ([`sxe_ir::verify_function`] / [`verify_module`]) — a gate failure
//!    rolls back and disables exactly like a panic;
//! 4. an exhausted [`Budget`] skips the body entirely, keeping the
//!    current (already verified) IR: the pipeline salvages rather than
//!    aborts.
//!
//! A [`FaultPlan`] injects one deterministic fault at a chosen boundary —
//! a panic after the body ran (so rollback must undo real mutations), a
//! deterministic IR corruption the gate must catch, or a forced budget
//! exhaustion — which is how the chaos suite proves the containment
//! machinery actually works.

use std::cell::Cell;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Once;
use std::time::Instant;

use sxe_ir::rng::XorShift;
use sxe_ir::{BlockId, Budget, Function, Inst, Module, Reg, Ty, VerifyError};
use sxe_telemetry::{ArgValue, Clock, Event, Lane};

use crate::report::{CompileReport, InjectedFault, PassRecord, PassStatus, RollbackCause};

/// A deterministic fault to inject during one compilation. At most one
/// of the sites is set; boundaries are numbered in execution order from
/// zero. The first three kinds are *contained* faults the pipeline must
/// survive; [`FaultPlan::miscompile_at`] is the deliberately uncontained
/// one the differential oracle must catch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed this plan was derived from; also seeds the corruption RNG.
    pub seed: u64,
    /// Boundary at which the pass body panics (after doing its work).
    pub panic_at: Option<u32>,
    /// Boundary after which the IR is deterministically corrupted.
    pub corrupt_at: Option<u32>,
    /// Boundary at which the budget is force-exhausted.
    pub exhaust_at: Option<u32>,
    /// Boundary after which a verifier-clean *semantic* sabotage is
    /// applied — once the gate has already passed, so no containment
    /// layer can roll it back. Never chosen by [`FaultPlan::from_seed`]:
    /// unlike the three contained kinds this is designed to ship a real
    /// miscompile, and exists so the fuzz subsystem's planted-bug mode
    /// can prove the differential oracle (and nothing weaker) catches
    /// one end to end.
    pub miscompile_at: Option<u32>,
}

impl FaultPlan {
    /// Derive a plan from a seed: fault kind and target boundary are both
    /// pseudo-random but fully determined by `seed`. `boundaries` is the
    /// boundary count of a fault-free compilation of the same module
    /// (read it off a dry run's [`CompileReport::boundaries`]).
    #[must_use]
    pub fn from_seed(seed: u64, boundaries: u32) -> FaultPlan {
        let mut rng = XorShift::new(seed);
        let at = Some(rng.below(u64::from(boundaries.max(1))) as u32);
        let mut plan = FaultPlan { seed, ..FaultPlan::default() };
        match rng.below(3) {
            0 => plan.panic_at = at,
            1 => plan.corrupt_at = at,
            _ => plan.exhaust_at = at,
        }
        plan
    }

    /// A plan that plants an uncontained miscompile at `boundary` (see
    /// [`FaultPlan::miscompile_at`]).
    #[must_use]
    pub fn miscompile(seed: u64, boundary: u32) -> FaultPlan {
        FaultPlan { seed, miscompile_at: Some(boundary), ..FaultPlan::default() }
    }
}

/// Verifier-clean semantic sabotage, applied after a boundary's gate has
/// passed when [`FaultPlan::miscompile_at`] targets it. The change must
/// be *structurally* untouchable — every verification rule still holds —
/// while being semantically wrong, which is exactly the class of bug
/// only the differential oracle can catch.
pub(crate) trait Miscompilable {
    /// Apply the sabotage; `false` when there is nothing to sabotage.
    fn sabotage(&mut self) -> bool;
}

impl Miscompilable for Function {
    fn sabotage(&mut self) -> bool {
        // Flip bit 1 of the first constant: an off-by-two nobody's gate
        // can object to. Fall back to swapping the first conditional
        // branch's arms, which is equally well-formed and equally wrong.
        for blk in &mut self.blocks {
            for inst in &mut blk.insts {
                if let Inst::Const { value, .. } = inst {
                    *value ^= 2;
                    return true;
                }
            }
        }
        for blk in &mut self.blocks {
            for inst in &mut blk.insts {
                if let Inst::CondBr { then_bb, else_bb, .. } = inst {
                    std::mem::swap(then_bb, else_bb);
                    return true;
                }
            }
        }
        false
    }
}

impl Miscompilable for Module {
    fn sabotage(&mut self) -> bool {
        // Sabotage every function that has something to sabotage. This
        // keeps the plant stable under test-case reduction: dropping an
        // unrelated function never moves the sabotage off the one whose
        // divergence the fuzzer is minimizing.
        let mut any = false;
        for f in &mut self.functions {
            any |= f.sabotage();
        }
        any
    }
}

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

/// Wrap the global panic hook (once per process) so panics contained by
/// a boundary do not spray backtraces over the chaos suite's output.
/// Thread-local flag: other threads' panics still print normally.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

struct QuietGuard;

impl QuietGuard {
    fn new() -> QuietGuard {
        SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Compilation-wide containment state, shared (by reference) between all
/// boundaries of one compilation — including boundaries running on
/// different worker threads of a sharded compilation. Boundary ordinals
/// come from one atomic counter, so a fault plan targeting ordinal *k*
/// fires exactly once per compilation regardless of sharding; at
/// `threads = 1` the numbering is identical to a fully sequential run.
pub(crate) struct SharedState {
    plan: Option<FaultPlan>,
    counter: AtomicU32,
    pub(crate) budget: Budget,
    /// The telemetry session clock; `None` when tracing is disabled.
    /// Copied into every worker's lanes so all spans share one epoch.
    pub(crate) clock: Option<Clock>,
}

impl SharedState {
    pub(crate) fn new(
        plan: Option<FaultPlan>,
        budget: Budget,
        clock: Option<Clock>,
    ) -> SharedState {
        install_quiet_hook();
        SharedState { plan, counter: AtomicU32::new(0), budget, clock }
    }
}

fn status_tag(status: &PassStatus) -> &'static str {
    match status {
        PassStatus::Ok => "ok",
        PassStatus::Skipped => "skipped",
        PassStatus::RolledBack(_) => "rolled-back",
        PassStatus::BudgetExhausted => "budget-exhausted",
    }
}

/// Per-scope containment state: one harness per module prologue and one
/// per function, each drawing ordinals and fuel from the compilation's
/// [`SharedState`]. The disabled-pass set is scoped to the harness — a
/// pass that panics on one function stays enabled for the others, which
/// both shrinks the blast radius and keeps sharded compiles deterministic.
pub(crate) struct Harness<'a> {
    shared: &'a SharedState,
    disabled: HashSet<String>,
    pub(crate) report: CompileReport,
    /// Telemetry lane for this harness's boundary spans. The label keys
    /// the deterministic span ids, so it must be unique per compilation
    /// (the module prologue and each function's step get their own).
    lane: Lane,
}

impl<'a> Harness<'a> {
    pub(crate) fn new(shared: &'a SharedState, label: &str) -> Harness<'a> {
        Harness {
            shared,
            disabled: HashSet::new(),
            report: CompileReport {
                seed: shared.plan.map(|p| p.seed),
                ..CompileReport::default()
            },
            lane: Lane::new(shared.clock, label),
        }
    }

    /// Consume the harness, yielding its report and trace events for
    /// the driver's deterministic (function-order) merge.
    pub(crate) fn finish(self) -> (CompileReport, Vec<Event>) {
        (self.report, self.lane.into_events())
    }

    /// Run one pass inside a containment boundary. Returns the body's
    /// result when the pass ran to completion and its output verified,
    /// `None` when the pass was skipped, rolled back, or budget-stopped —
    /// in which case `target` holds the last-good IR.
    pub(crate) fn run_boundary<T: Clone + Miscompilable, R>(
        &mut self,
        name: &str,
        function: Option<&str>,
        target: &mut T,
        verify: impl Fn(&T) -> Result<(), VerifyError>,
        corrupt: impl FnOnce(&mut T, &mut XorShift),
        body: impl FnOnce(&mut T, &Budget) -> R,
    ) -> Option<R> {
        let ordinal = self.shared.counter.fetch_add(1, Ordering::Relaxed);
        let plan = self.shared.plan;
        let t0 = Instant::now();
        let mut injected = None;
        let span = self.lane.begin(name.to_string(), "pass");
        let span_id = (span.id() != 0).then(|| span.id());

        // Close the span and record the boundary on every exit path —
        // including the contained-panic one, whose span carries an
        // `incident` tag instead of silently dangling.
        let record = |h: &mut Harness<'_>,
                      status: PassStatus,
                      injected: Option<InjectedFault>,
                      t0: Instant,
                      span: sxe_telemetry::Span| {
            if span.id() != 0 {
                let mut args = vec![("status", ArgValue::from(status_tag(&status)))];
                if injected.is_some()
                    || !matches!(status, PassStatus::Ok | PassStatus::Skipped)
                {
                    args.push(("incident", ArgValue::Bool(true)));
                }
                if let Some(fault) = injected {
                    args.push(("injected", ArgValue::Str(fault.to_string())));
                }
                h.lane.end_with(span, args);
            }
            h.report.records.push(PassRecord {
                pass: name.to_string(),
                function: function.map(str::to_string),
                status,
                injected,
                duration: t0.elapsed(),
                span: span_id,
            });
        };

        if plan.and_then(|p| p.exhaust_at) == Some(ordinal) {
            self.shared.budget.exhaust();
            injected = Some(InjectedFault::Exhaust);
        }
        if self.disabled.contains(name) {
            record(self, PassStatus::Skipped, injected, t0, span);
            return None;
        }
        if !self.shared.budget.spend(1) {
            self.report.budget_exhausted = true;
            record(self, PassStatus::BudgetExhausted, injected, t0, span);
            return None;
        }

        let snapshot = target.clone();
        let inject_panic = plan.and_then(|p| p.panic_at) == Some(ordinal);
        let outcome = {
            let quiet = QuietGuard::new();
            let budget = &self.shared.budget;
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                let r = body(target, budget);
                if inject_panic {
                    panic!("injected fault at boundary {ordinal}");
                }
                r
            }));
            drop(quiet);
            result
        };
        if inject_panic {
            injected = Some(InjectedFault::Panic);
        }

        let value = match outcome {
            Err(payload) => {
                *target = snapshot;
                self.disabled.insert(name.to_string());
                let cause = RollbackCause::Panic(payload_message(payload.as_ref()));
                record(self, PassStatus::RolledBack(cause), injected, t0, span);
                return None;
            }
            Ok(v) => v,
        };

        if plan.and_then(|p| p.corrupt_at) == Some(ordinal) {
            let plan_seed = plan.map_or(0, |p| p.seed);
            let mut rng = XorShift::new(plan_seed ^ (u64::from(ordinal) << 32) ^ 0xc0de);
            corrupt(target, &mut rng);
            injected = Some(InjectedFault::Corrupt);
        }

        match verify(target) {
            Ok(()) => {
                // The plant fires only after the gate passed: the shipped
                // IR is verifier-clean and semantically wrong, on purpose.
                if plan.and_then(|p| p.miscompile_at) == Some(ordinal) && target.sabotage() {
                    injected = Some(InjectedFault::Miscompile);
                }
                record(self, PassStatus::Ok, injected, t0, span);
                Some(value)
            }
            Err(e) => {
                *target = snapshot;
                self.disabled.insert(name.to_string());
                let cause = RollbackCause::Verify(e.in_pass(name));
                record(self, PassStatus::RolledBack(cause), injected, t0, span);
                None
            }
        }
    }
}

/// Deterministically break a function in a way the verification gate is
/// guaranteed to catch. The four corruption shapes mirror the verifier's
/// check classes: unallocated def, branch out of range, missing
/// terminator, and use before definite assignment.
pub(crate) fn corrupt_function(f: &mut Function, rng: &mut XorShift) {
    if f.blocks.is_empty() {
        return;
    }
    let shape = rng.below(4);
    if shape == 0 {
        // Redirect some def to an unallocated register.
        let targets: Vec<_> =
            f.insts().filter(|(_, i)| i.dst().is_some()).map(|(id, _)| id).collect();
        if let Some(&id) = targets.get(rng.index(targets.len().max(1))) {
            let bad = Reg(f.reg_count + 7);
            let inst = f.inst_mut(id);
            match inst {
                Inst::Const { dst, .. }
                | Inst::ConstF { dst, .. }
                | Inst::Copy { dst, .. }
                | Inst::Un { dst, .. }
                | Inst::Bin { dst, .. }
                | Inst::Setcc { dst, .. }
                | Inst::Extend { dst, .. }
                | Inst::JustExtended { dst, .. }
                | Inst::NewArray { dst, .. }
                | Inst::ArrayLen { dst, .. }
                | Inst::ArrayLoad { dst, .. } => *dst = bad,
                Inst::Call { dst, .. } => *dst = Some(bad),
                _ => {}
            }
            return;
        }
    }
    let b = BlockId(rng.index(f.blocks.len()) as u32);
    let blk = f.block_mut(b);
    match shape {
        1 => {
            // Branch to a block that does not exist.
            let missing = BlockId(f.blocks.len() as u32 + 3);
            let blk = f.block_mut(b);
            if let Some(last) = blk.insts.last_mut() {
                *last = Inst::Br { target: missing };
            }
        }
        2 => {
            // Destroy the terminator.
            if let Some(last) = blk.insts.last_mut() {
                *last = Inst::Nop;
            }
        }
        _ => {
            // Introduce a use of a register no path ever defines.
            let dst = Reg(f.reg_count);
            let undefined = Reg(f.reg_count + 1);
            f.reg_count += 2;
            let blk = f.block_mut(b);
            let at = blk.insts.len().saturating_sub(1);
            blk.insts.insert(at, Inst::Copy { dst, src: undefined, ty: Ty::I64 });
        }
    }
}

/// Corrupt one pseudo-randomly chosen function of the module.
pub(crate) fn corrupt_module(m: &mut Module, rng: &mut XorShift) {
    if m.functions.is_empty() {
        return;
    }
    let i = rng.index(m.functions.len());
    corrupt_function(&mut m.functions[i], rng);
}

/// No-op corruption for boundaries where injection does not apply.
#[cfg(test)]
pub(crate) fn corrupt_nothing<T>(_: &mut T, _: &mut XorShift) {}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_function, verify_function};

    fn sample() -> Function {
        parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 2\n    r2 = add.i32 r0, r1\n    ret r2\n}\n",
        )
        .unwrap()
    }

    #[test]
    fn every_corruption_shape_fails_the_gate() {
        for seed in 0..64u64 {
            let mut f = sample();
            let mut rng = XorShift::new(seed);
            corrupt_function(&mut f, &mut rng);
            assert!(verify_function(&f).is_err(), "seed {seed} produced verifying IR:\n{f}");
        }
    }

    #[test]
    fn panic_rolls_back_and_disables() {
        let shared = SharedState::new(None, Budget::unlimited(), None);
        let mut h = Harness::new(&shared, "test");
        let mut f = sample();
        let before = f.clone();
        let out: Option<()> = h.run_boundary(
            "exploder",
            Some("f"),
            &mut f,
            verify_function,
            corrupt_nothing,
            |f, _| {
                f.reg_count += 99; // real mutation the rollback must undo
                panic!("kaboom");
            },
        );
        assert!(out.is_none());
        assert_eq!(f, before, "rolled back");
        let again: Option<()> = h.run_boundary(
            "exploder",
            Some("f"),
            &mut f,
            verify_function,
            corrupt_nothing,
            |_, _| unreachable!("disabled pass must not run"),
        );
        assert!(again.is_none());
        assert_eq!(h.report.records.len(), 2);
        assert!(matches!(h.report.records[0].status, PassStatus::RolledBack(_)));
        assert_eq!(h.report.records[1].status, PassStatus::Skipped);
    }

    #[test]
    fn gate_failure_rolls_back() {
        let shared = SharedState::new(None, Budget::unlimited(), None);
        let mut h = Harness::new(&shared, "test");
        let mut f = sample();
        let before = f.clone();
        let out = h.run_boundary(
            "breaker",
            Some("f"),
            &mut f,
            verify_function,
            corrupt_nothing,
            |f, _| {
                // Break the IR without panicking: the gate must catch it.
                f.block_mut(BlockId(0)).insts.pop();
                7
            },
        );
        assert_eq!(out, None);
        assert_eq!(f, before);
        match &h.report.records[0].status {
            PassStatus::RolledBack(RollbackCause::Verify(e)) => {
                assert_eq!(e.pass.as_deref(), Some("breaker"));
            }
            other => panic!("unexpected status {other:?}"),
        }
    }

    #[test]
    fn planted_miscompile_passes_the_gate_and_is_recorded() {
        let plan = FaultPlan::miscompile(7, 0);
        let shared = SharedState::new(Some(plan), Budget::unlimited(), None);
        let mut h = Harness::new(&shared, "test");
        let mut f = sample();
        let before = f.clone();
        let out = h.run_boundary(
            "victim",
            Some("f"),
            &mut f,
            verify_function,
            corrupt_nothing,
            |_, _| 1,
        );
        // The boundary reports success — that is the point: the sabotage
        // is invisible to every containment layer.
        assert_eq!(out, Some(1));
        assert_eq!(h.report.records[0].status, PassStatus::Ok);
        assert_eq!(h.report.records[0].injected, Some(InjectedFault::Miscompile));
        assert_ne!(f, before, "the IR was semantically sabotaged");
        assert!(verify_function(&f).is_ok(), "yet it still verifies");
        // The sabotage flipped bit 1 of the first constant.
        let flipped = f
            .insts()
            .find_map(|(_, i)| match i {
                sxe_ir::Inst::Const { value, .. } => Some(*value),
                _ => None,
            })
            .unwrap();
        assert_eq!(flipped, 2 ^ 2);
    }

    #[test]
    fn exhausted_budget_skips_and_flags() {
        let shared = SharedState::new(None, Budget::new(1, None), None);
        let mut h = Harness::new(&shared, "test");
        let mut f = sample();
        let first = h.run_boundary(
            "p1",
            None,
            &mut f,
            verify_function,
            corrupt_nothing,
            |_, _| 1,
        );
        assert_eq!(first, Some(1));
        let second: Option<i32> = h.run_boundary(
            "p2",
            None,
            &mut f,
            verify_function,
            corrupt_nothing,
            |_, _| unreachable!("no fuel left"),
        );
        assert!(second.is_none());
        assert!(h.report.budget_exhausted);
        assert_eq!(h.report.records[1].status, PassStatus::BudgetExhausted);
    }

    #[test]
    fn fault_plans_are_deterministic_and_varied() {
        let a = FaultPlan::from_seed(42, 10);
        assert_eq!(a, FaultPlan::from_seed(42, 10));
        let kinds: std::collections::HashSet<u8> = (0..32)
            .map(|s| {
                let p = FaultPlan::from_seed(s, 10);
                u8::from(p.panic_at.is_some())
                    + 2 * u8::from(p.corrupt_at.is_some())
                    + 4 * u8::from(p.exhaust_at.is_some())
            })
            .collect();
        assert_eq!(kinds.len(), 3, "all three fault kinds appear across seeds");
    }
}
