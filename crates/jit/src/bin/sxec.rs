//! `sxec` — compile textual IR files through the sign-extension
//! elimination pipeline.
//!
//! ```text
//! sxec [options] <input.sxe>
//! sxec [options] --workload <name>
//!   --variant <name>     baseline|gen-use|first|basic|insert|order|
//!                        insert-order|array|array-insert|array-order|
//!                        all-pde|all          (default: all)
//!   --target <t>         ia64|ppc64|mips64    (default: ia64)
//!   --max-array-len <n>  Theorem 4 bound      (default: 2147483647)
//!   --workload <name>    compile a built-in benchmark kernel (e.g.
//!                        "numeric sort") instead of an input file
//!   --size <n>           workload size (default: the workload's own)
//!   --run <entry>        run entry() after compiling and print the result
//!   --arg <n>            argument for --run (repeatable)
//!   --vm <engine>        decoded|tree|native — engine for --run and the
//!                        chaos oracle (default: decoded; all three are
//!                        observably identical, tree is the reference,
//!                        native JITs to x86-64 machine code)
//!   --no-fallback        with --vm native: refuse to run (exit 4) if any
//!                        function cannot be natively compiled, instead
//!                        of silently falling back to the decoded engine
//!   --vm-fuel <n>        instruction budget for --run (default: 4e9)
//!   --budget <fuel>      compile budget in fuel units (default: unlimited)
//!   --timeout <ms>       wall-clock compile budget in milliseconds
//!                        (default: unlimited; maps onto the same
//!                        interior-atomic Budget as --budget)
//!   --threads <n>        worker threads for sharded compilation (default: 1)
//!   --no-cache           disable the per-worker analysis cache
//!   --chaos-seed <n>     inject one deterministic fault derived from n,
//!                        then check the result with the differential
//!                        oracle against the unoptimized module
//!   --trace <file>       write a Chrome trace-event JSON (load it at
//!                        https://ui.perfetto.dev) of the compile
//!   --metrics <file>     write the metrics registry as flat JSON
//!   --report             print the per-pass compile report
//!   --stats              print elimination statistics
//!   --no-emit            suppress printing the compiled module
//! ```
//!
//! Exit codes are typed so harnesses can tell failure classes apart:
//! `0` success, `1` runtime failure (trap, oracle mismatch, output I/O),
//! `2` usage error, `3` input error (missing/unparseable module or
//! workload), `4` compile refused (verify error or exhausted budget) —
//! see the table in README.md.
//!
//! Reads the module, compiles it, prints the optimized IR to stdout.
//! `--trace`/`--metrics` enable the telemetry sink for the main compile
//! only (a `--chaos-seed` dry run stays untraced, so metrics reconcile
//! with the reported stats); `--run` execution counters are folded into
//! the same registry as `vm.*` metrics.

use std::process::ExitCode;
use std::time::Duration;

use sxe_core::Variant;
use sxe_ir::Target;
use sxe_jit::{Compiled, Compiler, FaultPlan, Telemetry};
use sxe_vm::{differential_check, Engine, OracleConfig, Vm, VmError};

/// Runtime failure: a trap, an oracle mismatch, or output I/O.
const EXIT_RUNTIME: u8 = 1;
/// Usage error (bad flags).
const EXIT_USAGE: u8 = 2;
/// Input error: missing or unparseable module, unknown workload.
const EXIT_INPUT: u8 = 3;
/// The compiler refused the input (verify error, exhausted budget).
const EXIT_REFUSED: u8 = 4;

fn parse_variant(s: &str) -> Option<Variant> {
    Some(match s {
        "baseline" => Variant::Baseline,
        "gen-use" => Variant::GenUse,
        "first" => Variant::FirstAlgorithm,
        "basic" => Variant::BasicUdDu,
        "insert" => Variant::Insert,
        "order" => Variant::Order,
        "insert-order" => Variant::InsertOrder,
        "array" => Variant::Array,
        "array-insert" => Variant::ArrayInsert,
        "array-order" => Variant::ArrayOrder,
        "all-pde" => Variant::AllPde,
        "all" => Variant::All,
        _ => return None,
    })
}

/// Inverse of [`parse_variant`], for reconstructing a repro command.
fn variant_flag(v: Variant) -> &'static str {
    match v {
        Variant::Baseline => "baseline",
        Variant::GenUse => "gen-use",
        Variant::FirstAlgorithm => "first",
        Variant::BasicUdDu => "basic",
        Variant::Insert => "insert",
        Variant::Order => "order",
        Variant::InsertOrder => "insert-order",
        Variant::Array => "array",
        Variant::ArrayInsert => "array-insert",
        Variant::ArrayOrder => "array-order",
        Variant::AllPde => "all-pde",
        Variant::All => "all",
    }
}

/// The exact one-line command that reproduces a chaos-oracle finding:
/// same input, variant, target, chaos seed, and (pinned) oracle config.
fn repro_command(opts: &Options, oracle: &OracleConfig) -> String {
    use std::fmt::Write as _;
    let mut c = String::from("cargo run --release -p sxe-jit --bin sxec --");
    if opts.variant != Variant::All {
        let _ = write!(c, " --variant {}", variant_flag(opts.variant));
    }
    if opts.target != Target::default() {
        let _ = write!(c, " --target {}", opts.target);
    }
    if let Some(w) = &opts.workload {
        let _ = write!(c, " --workload {w}");
        if let Some(s) = opts.size {
            let _ = write!(c, " --size {s}");
        }
    }
    if let Some(b) = opts.budget {
        let _ = write!(c, " --budget {b}");
    }
    if let Some(t) = opts.timeout_ms {
        let _ = write!(c, " --timeout {t}");
    }
    if opts.threads != 1 {
        let _ = write!(c, " --threads {}", opts.threads);
    }
    if !opts.cache {
        c.push_str(" --no-cache");
    }
    if let Some(seed) = opts.chaos_seed {
        let _ = write!(c, " --chaos-seed {seed}");
    }
    if oracle.engine != Engine::default() {
        let _ = write!(c, " --vm {}", oracle.engine);
    }
    let _ = write!(
        c,
        " --oracle-runs {} --oracle-fuel {} --oracle-seed {} --no-emit",
        oracle.runs, oracle.fuel, oracle.seed
    );
    if opts.workload.is_none() {
        let _ = write!(c, " {}", opts.input);
    }
    c
}

struct Options {
    input: String,
    variant: Variant,
    target: Target,
    max_array_len: u32,
    workload: Option<String>,
    size: Option<u32>,
    run: Option<String>,
    args: Vec<i64>,
    engine: Engine,
    fallback: bool,
    vm_fuel: Option<u64>,
    budget: Option<u64>,
    timeout_ms: Option<u64>,
    threads: usize,
    cache: bool,
    chaos_seed: Option<u64>,
    oracle_runs: Option<usize>,
    oracle_fuel: Option<u64>,
    oracle_seed: Option<u64>,
    trace: Option<String>,
    metrics: Option<String>,
    report: bool,
    stats: bool,
    emit: bool,
}

fn usage() -> &'static str {
    "usage: sxec [--variant V] [--target ia64|ppc64|mips64] [--max-array-len N] \
     [--workload NAME] [--size N] \
     [--run ENTRY] [--arg N]... [--vm decoded|tree|native] [--no-fallback] \
     [--vm-fuel N] \
     [--budget FUEL] [--timeout MS] [--threads N] [--no-cache] \
     [--chaos-seed N] [--oracle-runs N] [--oracle-fuel N] [--oracle-seed N] \
     [--trace FILE] [--metrics FILE] \
     [--report] [--stats] [--no-emit] <input.sxe>"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        variant: Variant::All,
        target: Target::Ia64,
        max_array_len: 0x7fff_ffff,
        workload: None,
        size: None,
        run: None,
        args: Vec::new(),
        engine: Engine::default(),
        fallback: true,
        vm_fuel: None,
        budget: None,
        timeout_ms: None,
        threads: 1,
        cache: true,
        chaos_seed: None,
        oracle_runs: None,
        oracle_fuel: None,
        oracle_seed: None,
        trace: None,
        metrics: None,
        report: false,
        stats: false,
        emit: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--variant" => {
                let v = it.next().ok_or("--variant needs a value")?;
                opts.variant =
                    parse_variant(&v).ok_or_else(|| format!("unknown variant `{v}`"))?;
            }
            "--target" => {
                opts.target = match it.next().as_deref() {
                    Some(s) => s.parse::<Target>()?,
                    None => return Err("--target needs a value".to_string()),
                };
            }
            "--max-array-len" => {
                opts.max_array_len = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-array-len needs a number")?;
            }
            "--workload" => {
                opts.workload = Some(it.next().ok_or("--workload needs a name")?);
            }
            "--size" => {
                opts.size = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--size needs a number")?,
                );
            }
            "--run" => opts.run = Some(it.next().ok_or("--run needs an entry name")?),
            "--vm" => {
                let v = it.next().ok_or("--vm needs an engine name")?;
                opts.engine = v.parse()?;
            }
            "--vm-fuel" => {
                opts.vm_fuel = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--vm-fuel needs an instruction count")?,
                );
            }
            "--arg" => {
                opts.args.push(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--arg needs an integer")?,
                );
            }
            "--budget" => {
                opts.budget = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--budget needs a fuel count")?,
                );
            }
            "--timeout" => {
                opts.timeout_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--timeout needs a millisecond count")?,
                );
            }
            "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--threads needs a worker count >= 1")?;
            }
            "--no-fallback" => opts.fallback = false,
            "--no-cache" => opts.cache = false,
            "--chaos-seed" => {
                opts.chaos_seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--chaos-seed needs an integer seed")?,
                );
            }
            "--oracle-runs" => {
                opts.oracle_runs = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--oracle-runs needs a run count")?,
                );
            }
            "--oracle-fuel" => {
                opts.oracle_fuel = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--oracle-fuel needs a fuel count")?,
                );
            }
            "--oracle-seed" => {
                opts.oracle_seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--oracle-seed needs an integer seed")?,
                );
            }
            "--trace" => opts.trace = Some(it.next().ok_or("--trace needs a file path")?),
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a file path")?);
            }
            "--report" => opts.report = true,
            "--stats" => opts.stats = true,
            "--no-emit" => opts.emit = false,
            "--help" | "-h" => return Err(usage().to_string()),
            other if !other.starts_with('-') && opts.input.is_empty() => {
                opts.input = other.to_string();
            }
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    match (&opts.workload, opts.input.is_empty()) {
        (None, true) => return Err(usage().to_string()),
        (Some(_), false) => {
            return Err("give either an input file or --workload, not both".to_string());
        }
        _ => {}
    }
    if opts.size.is_some() && opts.workload.is_none() {
        return Err("--size only makes sense with --workload".to_string());
    }
    if !opts.fallback && opts.engine != Engine::Native {
        return Err("--no-fallback only makes sense with --vm native".to_string());
    }
    if (opts.oracle_runs.is_some() || opts.oracle_fuel.is_some() || opts.oracle_seed.is_some())
        && opts.chaos_seed.is_none()
    {
        return Err("--oracle-* flags only make sense with --chaos-seed".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let module = if let Some(name) = &opts.workload {
        match sxe_workloads::by_name(name) {
            Some(w) => w.build(opts.size.unwrap_or(w.default_size)),
            None => {
                let known: Vec<_> = sxe_workloads::all().iter().map(|w| w.name).collect();
                eprintln!("sxec: unknown workload `{name}`; known: {}", known.join(", "));
                return ExitCode::from(EXIT_INPUT);
            }
        }
    } else {
        let text = match std::fs::read_to_string(&opts.input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sxec: cannot read {}: {e}", opts.input);
                return ExitCode::from(EXIT_INPUT);
            }
        };
        match sxe_ir::parse_module(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("sxec: parse error in {}: {e}", opts.input);
                return ExitCode::from(EXIT_INPUT);
            }
        }
    };
    let mut compiler = Compiler::builder(opts.variant)
        .target(opts.target)
        .budget(opts.budget, opts.timeout_ms.map(Duration::from_millis))
        .threads(opts.threads)
        .cache(opts.cache)
        .build();
    compiler.sxe.max_array_len = opts.max_array_len;
    let try_compile = |compiler: &Compiler| -> Result<Compiled, ExitCode> {
        compiler.try_compile(&module).map_err(|e| {
            eprintln!("sxec: compile refused: {e}");
            ExitCode::from(EXIT_REFUSED)
        })
    };
    if let Some(seed) = opts.chaos_seed {
        // Boundary count comes from a fault-free dry run of the same
        // module; the plan then lands inside the real range.
        let dry = match try_compile(&compiler) {
            Ok(c) => c,
            Err(code) => return code,
        };
        let plan = FaultPlan::from_seed(seed, dry.report.boundaries() as u32);
        compiler = compiler.with_fault_plan(plan);
    }
    // Attach the sink only now, so a chaos dry run above is not traced
    // and the exported metrics cover exactly one compile.
    if opts.trace.is_some() || opts.metrics.is_some() {
        compiler.telemetry = Telemetry::enabled();
    }
    let compiled = match try_compile(&compiler) {
        Ok(c) => c,
        Err(code) => return code,
    };

    if opts.report || opts.chaos_seed.is_some() {
        eprint!("sxec: {}", compiled.report.summary());
    }
    if opts.chaos_seed.is_some() {
        // Oracle reference: the conversion-only (Baseline) compile — the
        // raw module is not meaningful on the 64-bit machine model until
        // step 1 has inserted its sign extensions.
        let reference = Compiler::for_variant(Variant::Baseline)
            .with_target(opts.target)
            .compile(&module)
            .module;
        let defaults = OracleConfig::default();
        let oracle = OracleConfig::new()
            .runs(opts.oracle_runs.unwrap_or(defaults.runs))
            .fuel(opts.oracle_fuel.unwrap_or(defaults.fuel))
            .seed(opts.oracle_seed.unwrap_or(defaults.seed))
            .engine(opts.engine);
        match differential_check(&reference, &compiled.module, opts.target, &oracle) {
            Ok(n) => eprintln!("sxec: oracle agreed on {n} comparisons"),
            Err(m) => {
                eprintln!("sxec: ORACLE MISMATCH: {m}");
                eprintln!("sxec: repro: {}", repro_command(&opts, &oracle));
                return ExitCode::from(EXIT_RUNTIME);
            }
        }
    }
    if opts.emit {
        print!("{}", compiled.module);
    }
    if opts.stats {
        let s = compiled.stats;
        eprintln!(
            "sxec: generated {} extensions, inserted {}, examined {}, \
             eliminated {} ({} via array theorems); {} remain",
            s.generated,
            s.inserted,
            s.examined,
            s.eliminated,
            s.eliminated_via_array,
            compiled.module.count_extends(None)
        );
    }
    if let Some(entry) = opts.run {
        let mut builder = Vm::builder(&compiled.module)
            .target(opts.target)
            .engine(opts.engine);
        if let Some(fuel) = opts.vm_fuel {
            builder = builder.fuel(fuel);
        }
        let mut vm = builder.build();
        if !opts.fallback {
            let refusals = vm.native_refusals();
            if !refusals.is_empty() {
                eprintln!(
                    "sxec: native compilation refused for {} function(s) \
                     and --no-fallback is set:",
                    refusals.len()
                );
                for (name, why) in &refusals {
                    eprintln!("sxec:   @{name}: {why}");
                }
                return ExitCode::from(EXIT_REFUSED);
            }
        }
        match vm.run(&entry, &opts.args) {
            Ok(out) => {
                eprintln!(
                    "sxec: {entry}(...) = {:?}   [{} insts, {} extends executed, {} engine]",
                    out.ret,
                    vm.counters().insts,
                    vm.counters().extend_count(None),
                    vm.engine()
                );
                compiler.telemetry.metrics(|m| vm.counters().record_into(m));
            }
            Err(e @ (VmError::UnknownFunction { .. } | VmError::ArityMismatch { .. })) => {
                eprintln!("sxec: cannot run {entry}: {e}");
                return ExitCode::from(EXIT_INPUT);
            }
            Err(e) => {
                eprintln!("sxec: {entry} trapped: {e}");
                return ExitCode::from(EXIT_RUNTIME);
            }
        }
    }
    if let Some(path) = &opts.trace {
        if let Err(e) = std::fs::write(path, compiler.telemetry.chrome_trace()) {
            eprintln!("sxec: cannot write {path}: {e}");
            return ExitCode::from(EXIT_RUNTIME);
        }
    }
    if let Some(path) = &opts.metrics {
        if let Err(e) = std::fs::write(path, compiler.telemetry.metrics_json()) {
            eprintln!("sxec: cannot write {path}: {e}");
            return ExitCode::from(EXIT_RUNTIME);
        }
    }
    ExitCode::SUCCESS
}
