//! Structured compile reports: what every containment boundary did.
//!
//! The fault-isolated pipeline wraps each pass in a boundary (see
//! [`crate::harness`]). Every boundary leaves one [`PassRecord`] behind,
//! so a [`CompileReport`] is a complete, ordered account of the
//! compilation — including every contained panic, failed verification
//! gate, rollback, injected fault, and budget stop.

use std::fmt;
use std::time::Duration;

use sxe_ir::VerifyError;

/// Why a pass's result was discarded.
#[derive(Debug, Clone, PartialEq)]
pub enum RollbackCause {
    /// The pass panicked; the payload message is preserved.
    Panic(String),
    /// The pass completed but its output failed the verification gate.
    Verify(VerifyError),
}

impl fmt::Display for RollbackCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RollbackCause::Panic(msg) => write!(f, "panic: {msg}"),
            RollbackCause::Verify(e) => write!(f, "verify: {e}"),
        }
    }
}

/// Outcome of one containment boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum PassStatus {
    /// The pass ran and its output verified.
    Ok,
    /// The pass was skipped because an earlier incident disabled it.
    Skipped,
    /// The pass ran but was undone: the function (or module) was restored
    /// to the snapshot taken at the boundary, and the pass was disabled
    /// for the rest of the compilation.
    RolledBack(RollbackCause),
    /// The compile budget was exhausted before this pass; the current
    /// (already verified) IR was kept as-is.
    BudgetExhausted,
}

impl fmt::Display for PassStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassStatus::Ok => f.write_str("ok"),
            PassStatus::Skipped => f.write_str("skipped (pass disabled)"),
            PassStatus::RolledBack(cause) => write!(f, "rolled back ({cause})"),
            PassStatus::BudgetExhausted => f.write_str("budget exhausted"),
        }
    }
}

/// Which fault, if any, was injected at a boundary by the chaos plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The pass body was made to panic after running.
    Panic,
    /// The pass output was deterministically corrupted before the gate.
    Corrupt,
    /// The compile budget was force-exhausted at this boundary.
    Exhaust,
    /// A verifier-clean semantic sabotage was applied *after* the gate
    /// passed — a planted miscompile no containment layer can catch,
    /// used to prove the differential fuzzing oracle does.
    Miscompile,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedFault::Panic => f.write_str("panic"),
            InjectedFault::Corrupt => f.write_str("corrupt"),
            InjectedFault::Exhaust => f.write_str("exhaust"),
            InjectedFault::Miscompile => f.write_str("miscompile"),
        }
    }
}

/// One containment boundary's record.
///
/// Non-exhaustive: more fields may be recorded per boundary in future
/// versions without a breaking change; construct reports through the
/// compiler, not by literal.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct PassRecord {
    /// Boundary (pass) name, e.g. `convert`, `licm`, `step3-eliminate`.
    pub pass: String,
    /// Function the boundary covered; `None` for module-scope boundaries.
    pub function: Option<String>,
    /// What happened.
    pub status: PassStatus,
    /// Fault injected here by the active [`crate::FaultPlan`], if any.
    pub injected: Option<InjectedFault>,
    /// Wall-clock time spent in the boundary (body plus gate).
    pub duration: Duration,
    /// Telemetry span id of this boundary's trace event (`None` when the
    /// compiler's telemetry sink is disabled). Matches the `span`
    /// argument of the corresponding event in the Chrome trace export.
    pub span: Option<u64>,
}

impl fmt::Display for PassRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "{}@{func}: {}", self.pass, self.status)?,
            None => write!(f, "{}: {}", self.pass, self.status)?,
        }
        if let Some(fault) = self.injected {
            write!(f, " [injected {fault}]")?;
        }
        Ok(())
    }
}

/// Complete account of one compilation through the fault-isolated
/// pipeline.
///
/// Non-exhaustive: obtain reports from [`crate::Compiled`] rather than
/// constructing them, so future fields are not a breaking change.
#[derive(Debug, Clone, Default, PartialEq)]
#[non_exhaustive]
pub struct CompileReport {
    /// Seed of the active fault plan, if one was injected.
    pub seed: Option<u64>,
    /// One record per containment boundary, in execution order.
    pub records: Vec<PassRecord>,
    /// The compile budget ran out at some point (whether injected or
    /// genuine); the emitted module is a verified partial optimization.
    pub budget_exhausted: bool,
}

impl CompileReport {
    /// Fold another account (e.g. one shard's, or one function's) into
    /// this one: records are appended in order and the budget flag is
    /// sticky.
    pub fn absorb(&mut self, other: CompileReport) {
        self.records.extend(other.records);
        self.budget_exhausted |= other.budget_exhausted;
    }

    /// Number of containment boundaries crossed.
    #[must_use]
    pub fn boundaries(&self) -> usize {
        self.records.len()
    }

    /// Records of passes that were rolled back.
    pub fn rollbacks(&self) -> impl Iterator<Item = &PassRecord> {
        self.records.iter().filter(|r| matches!(r.status, PassStatus::RolledBack(_)))
    }

    /// Number of incidents: rollbacks, budget stops, and injected faults
    /// (an injected fault that led to a rollback counts once).
    #[must_use]
    pub fn incidents(&self) -> usize {
        self.records
            .iter()
            .filter(|r| {
                r.injected.is_some() || !matches!(r.status, PassStatus::Ok | PassStatus::Skipped)
            })
            .count()
    }

    /// Whether every boundary completed cleanly with no injection.
    #[must_use]
    pub fn clean(&self) -> bool {
        !self.budget_exhausted && self.incidents() == 0
    }

    /// Total wall-clock time across all boundaries.
    #[must_use]
    pub fn total_duration(&self) -> Duration {
        self.records.iter().map(|r| r.duration).sum()
    }

    /// Human-readable multi-line summary (one line per non-clean record,
    /// plus a header). Durations go through the shared telemetry
    /// formatter ([`sxe_telemetry::fmt_duration`]), so `--report` and
    /// `--metrics` output agree on units.
    #[must_use]
    pub fn summary(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "compile report: {} boundaries in {}, {} incident(s){}",
            self.boundaries(),
            sxe_telemetry::fmt_duration(self.total_duration()),
            self.incidents(),
            if self.budget_exhausted { ", budget exhausted" } else { "" },
        );
        for r in &self.records {
            if r.injected.is_some() || !matches!(r.status, PassStatus::Ok) {
                let _ = writeln!(s, "  {r} [{}]", sxe_telemetry::fmt_duration(r.duration));
            }
        }
        s
    }
}
