//! The session clock: one epoch, monotonic nanoseconds.

use std::time::Instant;

/// A copyable monotonic clock. Every timestamp of a session is the
/// nanosecond offset from the session's single epoch, so events recorded
/// on different threads (each holding a copy of the clock) land on one
/// common timeline.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// A clock whose epoch is now.
    #[must_use]
    pub fn new() -> Clock {
        Clock { epoch: Instant::now() }
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_shared() {
        let c = Clock::new();
        let copy = c;
        let a = c.now_ns();
        let b = copy.now_ns();
        assert!(b >= a, "copies share the epoch and never go backwards");
    }
}
