//! # sxe-telemetry — tracing spans, metrics, and exporters
//!
//! The measurement substrate for the whole compile pipeline (and the VM
//! that executes its output). Three layers:
//!
//! * **spans** ([`Session`], [`Lane`], [`Span`], [`Event`]) — a
//!   span-based tracer with monotonic timestamps drawn from one shared
//!   [`Clock`]. Recording is lock-free: every unit of work (a shard
//!   worker's function, the module prologue, an analysis cache) owns a
//!   private [`Lane`] buffer, and the driver merges lanes back into the
//!   session **in function order** — mirroring the sharded compiler's
//!   deterministic merge — so the trace is identical at any `--threads`
//!   (modulo thread ids and wall-clock values).
//! * **metrics** ([`Registry`]) — typed counters, gauges, and
//!   histograms under a dotted label scheme (`sxe.extends_inserted`,
//!   `cache.hit`, `pass.dce.wall_ns`, `vm.op.aload`, ...), with a
//!   [`Registry::merge`] so shard workers and repeated compiles
//!   aggregate exactly.
//! * **exporters** — Chrome trace-event JSON
//!   ([`Telemetry::chrome_trace`], loadable in `chrome://tracing` and
//!   Perfetto), a flat metrics JSON ([`Telemetry::metrics_json`],
//!   validated by `schemas/metrics.schema.json` via the
//!   `validate-metrics` bin), and a human [`Telemetry::summary`] table.
//!
//! The [`Telemetry`] handle is the pipeline-facing sink. A disabled
//! handle ([`Telemetry::disabled`], the default) is a null sink: every
//! operation short-circuits on one branch, no event is allocated, and
//! compiled output is byte-identical to a build with no telemetry at
//! all.
//!
//! ```
//! use sxe_telemetry::{ArgValue, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! let mut lane = tel.lane("demo");
//! let span = lane.begin("compile", "jit");
//! lane.end_with(span, vec![("status", ArgValue::from("ok"))]);
//! tel.submit(lane.into_events());
//! tel.metrics(|m| m.add("sxe.extends_eliminated.total", 3));
//! assert!(tel.chrome_trace().contains("\"compile\""));
//! assert!(tel.metrics_json().contains("extends_eliminated"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod export;
pub mod json;
mod metrics;
pub mod schema;
mod span;

pub use clock::Clock;
pub use export::{chrome_trace, fmt_duration, fmt_duration_ns};
pub use metrics::{Histogram, Registry};
pub use span::{current_tid, ArgValue, Event, Lane, Phase, Session, Span, Telemetry};
