//! `validate-metrics <schema.json> <doc.json>` — validate a metrics (or
//! any JSON) document against a JSON-Schema-subset schema. Exits
//! non-zero and prints one line per violation on failure. Used by
//! `tier1.sh` to gate the `--metrics` export format.

use std::process::ExitCode;

use sxe_telemetry::{json, schema};

fn load(path: &str) -> Result<json::Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [schema_path, doc_path] = args.as_slice() else {
        eprintln!("usage: validate-metrics <schema.json> <doc.json>");
        return ExitCode::from(2);
    };
    let (schema_doc, doc) = match (load(schema_path), load(doc_path)) {
        (Ok(s), Ok(d)) => (s, d),
        (s, d) => {
            for e in [s.err(), d.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };
    let violations = schema::validate(&schema_doc, &doc);
    if violations.is_empty() {
        println!("{doc_path}: ok");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{doc_path}: {v}");
        }
        eprintln!("{doc_path}: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
