//! A minimal JSON value, writer helpers, and a recursive-descent
//! parser — just enough for the telemetry exporters, the round-trip
//! tests, and the schema validator, with no external dependency.

use std::fmt;

/// A parsed JSON value. Object members keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, which covers every value the
    /// telemetry exporters emit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (`None` otherwise).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Quote and escape a string for JSON output.
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number (finite values only; non-finite
/// values become `0`, which JSON cannot represent anyway).
#[must_use]
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document.
///
/// # Errors
/// [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.num(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // telemetry formats; map them to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn num(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str), Some("x\ny"));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn quote_escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let quoted = quote(nasty);
        let back = parse(&quoted).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.25), "3.25");
        assert_eq!(number(f64::NAN), "0");
    }
}
