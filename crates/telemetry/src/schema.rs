//! A validator for the JSON-Schema subset the telemetry exports use.
//!
//! Supported keywords: `type` (including a list of types), `properties`,
//! `required`, `additionalProperties` (boolean or schema),
//! `patternProperties` is **not** supported — the metrics schema keys
//! its maps with `additionalProperties` instead — plus `items`,
//! `minimum`, `enum`, and `const`. Anything else in the schema is
//! ignored, so a schema using unsupported keywords validates more
//! loosely, never more strictly.

use crate::json::Value;

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Num(n) => {
            if n.fract() == 0.0 {
                "integer"
            } else {
                "number"
            }
        }
        Value::Str(_) => "string",
        Value::Arr(_) => "array",
        Value::Obj(_) => "object",
    }
}

fn type_matches(want: &str, doc: &Value) -> bool {
    match want {
        // Every integer is a number.
        "number" => matches!(doc, Value::Num(_)),
        w => type_name(doc) == w,
    }
}

fn check_type(schema: &Value, doc: &Value, path: &str, errors: &mut Vec<String>) {
    match schema.get("type") {
        Some(Value::Str(t)) if !type_matches(t, doc) => {
            errors.push(format!("{path}: expected type `{t}`, got `{}`", type_name(doc)));
        }
        Some(Value::Arr(ts))
            if !ts.iter().filter_map(Value::as_str).any(|t| type_matches(t, doc)) =>
        {
            errors.push(format!("{path}: type `{}` not in allowed set", type_name(doc)));
        }
        _ => {}
    }
}

/// Validate `doc` against `schema`, collecting every violation as a
/// `path: message` string. An empty result means the document
/// validates.
#[must_use]
pub fn validate(schema: &Value, doc: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    validate_at(schema, doc, "$", &mut errors);
    errors
}

fn validate_at(schema: &Value, doc: &Value, path: &str, errors: &mut Vec<String>) {
    check_type(schema, doc, path, errors);

    if let Some(allowed) = schema.get("enum").and_then(Value::as_arr) {
        if !allowed.contains(doc) {
            errors.push(format!("{path}: value not in enum"));
        }
    }
    if let Some(want) = schema.get("const") {
        if want != doc {
            errors.push(format!("{path}: value does not match const"));
        }
    }
    if let (Some(min), Some(n)) =
        (schema.get("minimum").and_then(Value::as_f64), doc.as_f64())
    {
        if n < min {
            errors.push(format!("{path}: {n} is below minimum {min}"));
        }
    }

    if let Value::Obj(members) = doc {
        if let Some(required) = schema.get("required").and_then(Value::as_arr) {
            for key in required.iter().filter_map(Value::as_str) {
                if doc.get(key).is_none() {
                    errors.push(format!("{path}: missing required member `{key}`"));
                }
            }
        }
        let props = schema.get("properties");
        let additional = schema.get("additionalProperties");
        for (key, value) in members {
            let child_path = format!("{path}.{key}");
            if let Some(prop_schema) = props.and_then(|p| p.get(key)) {
                validate_at(prop_schema, value, &child_path, errors);
            } else {
                match additional {
                    Some(Value::Bool(false)) => {
                        errors.push(format!("{path}: unexpected member `{key}`"));
                    }
                    Some(s @ Value::Obj(_)) => validate_at(s, value, &child_path, errors),
                    _ => {}
                }
            }
        }
    }

    if let (Value::Arr(items), Some(item_schema)) = (doc, schema.get("items")) {
        for (i, item) in items.iter().enumerate() {
            validate_at(item_schema, item, &format!("{path}[{i}]"), errors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const SCHEMA: &str = r#"{
        "type": "object",
        "required": ["counters"],
        "properties": {
            "counters": {
                "type": "object",
                "additionalProperties": {"type": "integer", "minimum": 0}
            },
            "tag": {"type": "string"}
        },
        "additionalProperties": false
    }"#;

    #[test]
    fn accepts_conforming_documents() {
        let schema = parse(SCHEMA).unwrap();
        let doc = parse(r#"{"counters": {"a.b": 3}, "tag": "x"}"#).unwrap();
        assert!(validate(&schema, &doc).is_empty());
    }

    #[test]
    fn reports_each_violation_with_a_path() {
        let schema = parse(SCHEMA).unwrap();
        let doc = parse(r#"{"counters": {"a": -1, "b": 1.5}, "extra": 0}"#).unwrap();
        let errors = validate(&schema, &doc);
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("$.counters.a") && e.contains("minimum")));
        assert!(errors.iter().any(|e| e.contains("$.counters.b") && e.contains("integer")));
        assert!(errors.iter().any(|e| e.contains("unexpected member `extra`")));
    }

    #[test]
    fn missing_required_member_is_caught() {
        let schema = parse(SCHEMA).unwrap();
        let doc = parse(r#"{"tag": "x"}"#).unwrap();
        let errors = validate(&schema, &doc);
        assert!(errors.iter().any(|e| e.contains("missing required member `counters`")));
    }
}
