//! Exporters: Chrome trace-event JSON and the shared duration
//! formatter.

use std::fmt::Write as _;
use std::time::Duration;

use crate::json::quote;
use crate::span::{ArgValue, Event, Phase};

/// Format a duration the way every surface of the pipeline reports
/// them (`--report`, `--metrics` summaries, trace tooltips): three
/// significant digits with an auto-selected unit.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    fmt_duration_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

/// [`fmt_duration`] over raw nanoseconds (the unit histograms store).
#[must_use]
pub fn fmt_duration_ns(ns: u64) -> String {
    let (value, unit) = if ns >= 1_000_000_000 {
        (ns as f64 / 1e9, "s")
    } else if ns >= 1_000_000 {
        (ns as f64 / 1e6, "ms")
    } else if ns >= 1_000 {
        (ns as f64 / 1e3, "µs")
    } else {
        return format!("{ns}ns");
    };
    if value >= 100.0 {
        format!("{value:.0}{unit}")
    } else if value >= 10.0 {
        format!("{value:.1}{unit}")
    } else {
        format!("{value:.2}{unit}")
    }
}

fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::Str(s) => quote(s),
        ArgValue::U64(n) => n.to_string(),
        ArgValue::Bool(b) => b.to_string(),
    }
}

/// Export events as a Chrome trace-event JSON document (the
/// `traceEvents` array format), loadable in `chrome://tracing` and
/// Perfetto.
///
/// Thread ids are compressed to small integers in first-appearance
/// order, and every event carries its lane label in `args.lane`, so
/// the timeline groups readably. Timestamps are microseconds with
/// nanosecond fractions, relative to the session epoch.
#[must_use]
pub fn chrome_trace(events: &[Event]) -> String {
    let mut tids: Vec<u64> = Vec::new();
    let mut tid_of = |raw: u64| -> usize {
        match tids.iter().position(|&t| t == raw) {
            Some(i) => i,
            None => {
                tids.push(raw);
                tids.len() - 1
            }
        }
    };
    let mut body = String::new();
    body.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let _ = writeln!(
        body,
        "  {{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
         \"args\": {{\"name\": \"sxe\"}}}}{}",
        if events.is_empty() { "" } else { "," }
    );
    for (i, e) in events.iter().enumerate() {
        let tid = tid_of(e.tid);
        let ph = match e.ph {
            Phase::Complete => "X",
            Phase::Instant => "i",
        };
        let ts_us = e.ts_ns as f64 / 1000.0;
        let _ = write!(
            body,
            "  {{\"name\": {}, \"cat\": {}, \"ph\": \"{ph}\", \"ts\": {ts_us:.3}, ",
            quote(&e.name),
            quote(e.cat),
        );
        if e.ph == Phase::Complete {
            let _ = write!(body, "\"dur\": {:.3}, ", e.dur_ns as f64 / 1000.0);
        } else {
            body.push_str("\"s\": \"t\", ");
        }
        let _ = write!(body, "\"pid\": 1, \"tid\": {tid}, \"args\": {{");
        let _ = write!(body, "\"lane\": {}", quote(&e.lane));
        if e.span != 0 {
            let _ = write!(body, ", \"span\": {}", e.span);
        }
        for (k, v) in &e.args {
            let _ = write!(body, ", {}: {}", quote(k), arg_json(v));
        }
        body.push_str("}}");
        if i + 1 != events.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("]}\n");
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, Clock, Lane};

    #[test]
    fn duration_formatting_spans_units() {
        assert_eq!(fmt_duration_ns(0), "0ns");
        assert_eq!(fmt_duration_ns(999), "999ns");
        assert_eq!(fmt_duration_ns(1_500), "1.50µs");
        assert_eq!(fmt_duration_ns(25_000), "25.0µs");
        assert_eq!(fmt_duration_ns(3_210_000), "3.21ms");
        assert_eq!(fmt_duration_ns(456_000_000), "456ms");
        assert_eq!(fmt_duration_ns(2_000_000_000), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_entry_per_event() {
        let mut lane = Lane::new(Some(Clock::new()), "main");
        let span = lane.begin("compile", "jit");
        lane.end_with(span, vec![("status", ArgValue::from("ok"))]);
        lane.instant("note", "jit", vec![]);
        let events = lane.into_events();
        let text = chrome_trace(&events);
        let doc = json::parse(&text).expect("exporter emits valid JSON");
        let entries = doc.get("traceEvents").and_then(json::Value::as_arr).unwrap();
        // One metadata record plus the two events.
        assert_eq!(entries.len(), 3);
        let compile = &entries[1];
        assert_eq!(compile.get("name").and_then(json::Value::as_str), Some("compile"));
        assert_eq!(compile.get("ph").and_then(json::Value::as_str), Some("X"));
        assert!(compile.get("dur").and_then(json::Value::as_f64).is_some());
        assert_eq!(
            compile.get("args").and_then(|a| a.get("status")).and_then(json::Value::as_str),
            Some("ok")
        );
        assert_eq!(
            compile.get("args").and_then(|a| a.get("lane")).and_then(json::Value::as_str),
            Some("main")
        );
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let doc = json::parse(&chrome_trace(&[])).expect("no trailing comma after metadata");
        let entries = doc.get("traceEvents").and_then(json::Value::as_arr).unwrap();
        assert_eq!(entries.len(), 1, "just the process_name metadata record");
    }

    #[test]
    fn tids_are_compressed_to_small_ints() {
        let mk = |tid: u64| Event {
            name: "e".into(),
            cat: "t",
            ph: Phase::Instant,
            ts_ns: 0,
            dur_ns: 0,
            tid,
            lane: std::sync::Arc::from("l"),
            span: 0,
            args: vec![],
        };
        let text = chrome_trace(&[mk(0xdead_beef), mk(0x1234), mk(0xdead_beef)]);
        let doc = json::parse(&text).unwrap();
        let tids: Vec<f64> = doc
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .unwrap()
            .iter()
            .skip(1)
            .map(|e| e.get("tid").and_then(json::Value::as_f64).unwrap())
            .collect();
        assert_eq!(tids, [0.0, 1.0, 0.0]);
    }
}
