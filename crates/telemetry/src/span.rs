//! Span-based tracing: per-lane lock-free event buffers with a
//! deterministic end-of-session merge.
//!
//! The design mirrors the sharded compiler's own merge discipline
//! (`sxe-jit`'s `shard.rs`): every unit of work records into a private
//! [`Lane`] — a plain `Vec` push, no lock, no atomic — and the driver
//! absorbs finished lanes into the [`Session`] in *function order*, not
//! completion order. Span ids are derived from the lane label and a
//! per-lane sequence number (never from a global counter), so the same
//! compilation produces the same ids at any thread count.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::metrics::Registry;

/// The trace-event phase, following the Chrome trace-event format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`"ph": "X"`): start timestamp plus duration.
    Complete,
    /// A zero-duration marker (`"ph": "i"`).
    Instant,
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> ArgValue {
        ArgValue::Str(s.to_string())
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Bool(v)
    }
}

/// One trace event. Timestamps are nanoseconds on the session [`Clock`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Span or marker name (pass name, stage name, `cache.cfg`, ...).
    pub name: Cow<'static, str>,
    /// Category (`jit`, `pass`, `analysis`, `vm`, ...).
    pub cat: &'static str,
    /// Phase.
    pub ph: Phase,
    /// Start, in nanoseconds since the session epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Recording OS thread (hashed `ThreadId`; compressed at export).
    pub tid: u64,
    /// Lane label (shared, so per-event cost is one refcount bump).
    pub lane: Arc<str>,
    /// Deterministic span id (zero for id-less events such as cache
    /// lookups); referenced by `PassRecord::span` in `sxe-jit`.
    pub span: u64,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// A stable-for-the-process identifier of the current OS thread (the
/// hashed [`std::thread::ThreadId`]), cached in a thread-local.
#[must_use]
pub fn current_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let v = h.finish() | 1; // never zero
        t.set(v);
        v
    })
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An open span handle, returned by [`Lane::begin`] and consumed by
/// [`Lane::end`] / [`Lane::end_with`]. Inert (id zero) on a disabled
/// lane. Dropping a `Span` without `end`ing it records nothing — the
/// pipeline's containment boundaries always close their spans
/// explicitly, even when the guarded body panicked.
#[derive(Debug)]
#[must_use = "a span records nothing until it is ended"]
pub struct Span {
    id: u64,
    start_ns: u64,
    name: Cow<'static, str>,
    cat: &'static str,
}

impl Span {
    /// The deterministic span id (zero on a disabled lane).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// A per-work-unit event buffer: the lock-free recording surface.
///
/// One lane per unit of mergeable work (the module prologue, one
/// function's step-2 fixpoint, one function's step 3, one analysis
/// cache). All operations are plain `Vec` pushes; a disabled lane
/// (no clock) short-circuits on one branch and allocates nothing.
#[derive(Debug)]
pub struct Lane {
    clock: Option<Clock>,
    label: Arc<str>,
    label_hash: u64,
    seq: u64,
    tid: u64,
    events: Vec<Event>,
}

impl Default for Lane {
    /// A disabled lane.
    fn default() -> Lane {
        Lane::disabled()
    }
}

impl Lane {
    /// A lane recording on `clock`, or a disabled lane when `clock` is
    /// `None`. The label keys the deterministic span ids, so it must be
    /// unique per session (e.g. `step2:@main`).
    #[must_use]
    pub fn new(clock: Option<Clock>, label: &str) -> Lane {
        Lane {
            clock,
            label: Arc::from(label),
            label_hash: fnv1a(label.as_bytes()),
            seq: 0,
            tid: if clock.is_some() { current_tid() } else { 0 },
            events: Vec::new(),
        }
    }

    /// A lane that records nothing.
    #[must_use]
    pub fn disabled() -> Lane {
        Lane::new(None, "")
    }

    /// Whether this lane records events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.clock.is_some()
    }

    /// Nanosecond timestamp on the lane's clock (zero when disabled).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.clock.map_or(0, |c| c.now_ns())
    }

    fn next_span_id(&mut self) -> u64 {
        self.seq += 1;
        // Label hash mixed with the per-lane sequence number: unique
        // within a session, identical across thread counts.
        (self.label_hash ^ self.seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1
    }

    /// Open a span. The matching [`end`](Self::end) records one complete
    /// event covering the interval.
    pub fn begin(&mut self, name: impl Into<Cow<'static, str>>, cat: &'static str) -> Span {
        if self.clock.is_none() {
            return Span { id: 0, start_ns: 0, name: Cow::Borrowed(""), cat };
        }
        Span { id: self.next_span_id(), start_ns: self.now_ns(), name: name.into(), cat }
    }

    /// Close a span with no arguments.
    pub fn end(&mut self, span: Span) {
        self.end_with(span, Vec::new());
    }

    /// Close a span, attaching arguments (status tags, counts, ...).
    pub fn end_with(&mut self, span: Span, args: Vec<(&'static str, ArgValue)>) {
        if span.id == 0 || self.clock.is_none() {
            return;
        }
        let now = self.now_ns();
        self.events.push(Event {
            name: span.name,
            cat: span.cat,
            ph: Phase::Complete,
            ts_ns: span.start_ns,
            dur_ns: now.saturating_sub(span.start_ns),
            tid: self.tid,
            lane: Arc::clone(&self.label),
            span: span.id,
            args,
        });
    }

    /// Record a complete id-less event from an externally measured start
    /// (used for high-volume micro-spans such as cache lookups).
    pub fn complete_since(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        start_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.clock.is_none() {
            return;
        }
        let now = self.now_ns();
        self.events.push(Event {
            name: name.into(),
            cat,
            ph: Phase::Complete,
            ts_ns: start_ns,
            dur_ns: now.saturating_sub(start_ns),
            tid: self.tid,
            lane: Arc::clone(&self.label),
            span: 0,
            args,
        });
    }

    /// Record a zero-duration marker.
    pub fn instant(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.clock.is_none() {
            return;
        }
        let now = self.now_ns();
        self.events.push(Event {
            name: name.into(),
            cat,
            ph: Phase::Instant,
            ts_ns: now,
            dur_ns: 0,
            tid: self.tid,
            lane: Arc::clone(&self.label),
            span: 0,
            args,
        });
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finish the lane, yielding its events for a deterministic merge.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

/// The merged per-session store: every absorbed lane's events (in the
/// order the driver absorbed them) plus the session's metrics registry.
#[derive(Debug, Default)]
pub struct Session {
    /// Merged events.
    pub events: Vec<Event>,
    /// Merged metrics.
    pub metrics: Registry,
}

/// The pipeline-facing telemetry sink: a cheaply clonable handle that is
/// either **enabled** (shared clock + merged [`Session`] behind a mutex,
/// locked only when a finished lane or registry is merged — never on the
/// per-event path) or **disabled** (a null sink; every operation is one
/// branch).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Shared>>,
}

#[derive(Debug)]
struct Shared {
    clock: Clock,
    session: Mutex<Session>,
}

impl Telemetry {
    /// The null sink (the default): records nothing, exports empty.
    #[must_use]
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A live sink with a fresh session and clock.
    #[must_use]
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Shared {
                clock: Clock::new(),
                session: Mutex::new(Session::default()),
            })),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The session clock, for recorders that buffer their own events
    /// (`None` when disabled).
    #[must_use]
    pub fn clock(&self) -> Option<Clock> {
        self.inner.as_ref().map(|s| s.clock)
    }

    /// A new lane on this session's clock (a disabled lane when the
    /// sink is disabled).
    #[must_use]
    pub fn lane(&self, label: &str) -> Lane {
        Lane::new(self.clock(), label)
    }

    /// Merge finished events into the session. Call in a deterministic
    /// order (the sharded compiler merges in function order).
    pub fn submit(&self, events: Vec<Event>) {
        if let Some(shared) = &self.inner {
            if !events.is_empty() {
                shared.session.lock().expect("telemetry poisoned").events.extend(events);
            }
        }
    }

    /// Mutate the session's metrics registry under the lock (no-op when
    /// disabled). Batch updates — e.g. build a local [`Registry`] and
    /// [`Registry::merge`] it in one call.
    pub fn metrics(&self, f: impl FnOnce(&mut Registry)) {
        if let Some(shared) = &self.inner {
            f(&mut shared.session.lock().expect("telemetry poisoned").metrics);
        }
    }

    /// Read the session under the lock.
    pub fn with_session<R>(&self, f: impl FnOnce(&Session) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|s| f(&s.session.lock().expect("telemetry poisoned")))
    }

    /// A copy of the merged events (empty when disabled).
    #[must_use]
    pub fn events_snapshot(&self) -> Vec<Event> {
        self.with_session(|s| s.events.clone()).unwrap_or_default()
    }

    /// A copy of the merged metrics (empty when disabled).
    #[must_use]
    pub fn metrics_snapshot(&self) -> Registry {
        self.with_session(|s| s.metrics.clone()).unwrap_or_default()
    }

    /// Export the merged events as Chrome trace-event JSON.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        self.with_session(|s| crate::export::chrome_trace(&s.events))
            .unwrap_or_else(|| crate::export::chrome_trace(&[]))
    }

    /// Export the merged metrics as flat JSON (the format
    /// `schemas/metrics.schema.json` describes).
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.with_session(|s| s.metrics.to_json())
            .unwrap_or_else(|| Registry::default().to_json())
    }

    /// A human-readable summary table of the merged metrics.
    #[must_use]
    pub fn summary(&self) -> String {
        self.with_session(|s| s.metrics.summary())
            .unwrap_or_else(|| Registry::default().summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lane_records_nothing() {
        let mut lane = Lane::disabled();
        let span = lane.begin("x", "t");
        assert_eq!(span.id(), 0);
        lane.end(span);
        lane.instant("m", "t", vec![]);
        lane.complete_since("c", "t", 0, vec![]);
        assert!(lane.is_empty());
        assert!(!lane.is_enabled());
    }

    #[test]
    fn span_ids_are_deterministic_per_label() {
        let clock = Clock::new();
        let ids = |label: &str| {
            let mut lane = Lane::new(Some(clock), label);
            (0..3)
                .map(|_| {
                    let s = lane.begin("p", "t");
                    let id = s.id();
                    lane.end(s);
                    id
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(ids("step2:@f"), ids("step2:@f"), "same label, same ids");
        assert_ne!(ids("step2:@f"), ids("step2:@g"), "labels key the ids");
        assert!(ids("a").iter().all(|&i| i != 0));
    }

    #[test]
    fn events_carry_interval_and_args() {
        let mut lane = Lane::new(Some(Clock::new()), "l");
        let span = lane.begin("pass", "jit");
        lane.end_with(span, vec![("status", ArgValue::from("ok"))]);
        let events = lane.into_events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "pass");
        assert_eq!(e.ph, Phase::Complete);
        assert_eq!(&*e.lane, "l");
        assert!(e.span != 0);
        assert_eq!(e.args, vec![("status", ArgValue::Str("ok".into()))]);
    }

    #[test]
    fn telemetry_merges_in_submit_order() {
        let tel = Telemetry::enabled();
        let mut a = tel.lane("a");
        let mut b = tel.lane("b");
        let sa = a.begin("one", "t");
        a.end(sa);
        let sb = b.begin("two", "t");
        b.end(sb);
        tel.submit(b.into_events());
        tel.submit(a.into_events());
        let names: Vec<_> =
            tel.events_snapshot().iter().map(|e| e.name.to_string()).collect();
        assert_eq!(names, ["two", "one"], "driver-imposed order, not timestamps");
    }

    #[test]
    fn disabled_telemetry_is_a_null_sink() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert!(tel.clock().is_none());
        tel.submit(vec![]);
        tel.metrics(|m| m.add("x", 1));
        assert!(tel.events_snapshot().is_empty());
        assert_eq!(tel.metrics_snapshot().counter("x"), 0);
    }
}
