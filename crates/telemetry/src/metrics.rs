//! The metrics registry: typed counters, gauges, and histograms under a
//! dotted label scheme.
//!
//! Labels are dotted paths — `sxe.extends_inserted`,
//! `opt.rewrites.licm`, `cache.hit`, `pass.dce.wall_ns`,
//! `vm.op.aload` — stored in `BTreeMap`s so every export is
//! deterministically ordered. [`Registry::merge`] adds counters,
//! overwrites gauges, and folds histograms bucket-by-bucket, which is
//! how shard workers and repeated compiles aggregate exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::export::fmt_duration_ns;
use crate::json;

/// Number of power-of-two histogram buckets (bucket *i* counts values
/// `v` with `v == 0 ? i == 0 : floor(log2(v)) + 1 == i`); covers the
/// full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram of `u64` samples (typically nanoseconds) in power-of-two
/// buckets, tracking exact count/sum/min/max alongside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean sample (zero when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the bucket bounds:
    /// the upper bound of the bucket holding the `q`-th sample, clamped
    /// to the observed `max`. Zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i).saturating_sub(1) };
                return upper.min(self.max).max(self.min);
            }
        }
        self.max
    }
}

/// Typed named metrics: monotonic counters, last-write gauges, and
/// [`Histogram`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `delta` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (zero when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the gauge `name`.
    pub fn set_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Current value of gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a sample into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: impl Into<String>, value: u64) {
        self.histograms.entry(name.into()).or_default().observe(value);
    }

    /// The histogram `name`, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in label order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate the counters whose name starts with `prefix`, in label
    /// order. BTreeMap range semantics make this a contiguous walk, so
    /// a namespaced family like `serve.net.*` is cheap to snapshot even
    /// from a large registry.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate gauges in label order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate histograms in label order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one: counters add, gauges take
    /// the other's value, histograms merge.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Export as the flat metrics JSON document described by
    /// `schemas/metrics.schema.json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"sxe-metrics/1\",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(s, "{sep}    {}: {v}", json::quote(k));
        }
        if !self.counters.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(s, "{sep}    {}: {}", json::quote(k), json::number(*v));
        }
        if !self.gauges.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                s,
                "{sep}    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                json::quote(k),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
        }
        if !self.histograms.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// A human-readable table: counters, gauges, then histograms (with
    /// durations formatted by the shared [`fmt_duration_ns`] formatter
    /// for every `*_ns` label).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = String::new();
        if self.is_empty() {
            return "metrics: (empty)\n".to_string();
        }
        let _ = writeln!(s, "metrics:");
        for (k, v) in &self.counters {
            let _ = writeln!(s, "  {k:<44} {v:>12}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(s, "  {k:<44} {v:>12.2}");
        }
        for (k, h) in &self.histograms {
            let (mean, max) = if k.ends_with("_ns") {
                (fmt_duration_ns(h.mean()), fmt_duration_ns(h.max))
            } else {
                (h.mean().to_string(), h.max.to_string())
            };
            let _ = writeln!(
                s,
                "  {k:<44} {:>12}  (n={}, mean={mean}, max={max})",
                h.count, h.count
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = Registry::new();
        r.add("a.b", 2);
        r.add("a.b", 3);
        r.set_gauge("g", 1.5);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(1.5));
    }

    #[test]
    fn counters_with_prefix_walks_exactly_the_family() {
        let mut r = Registry::new();
        r.add("serve.net.conn_refused", 1);
        r.add("serve.net.malformed_frames", 2);
        r.add("serve.nett-lookalike", 9); // shares a string prefix, not the family
        r.add("serve.requests", 3);
        r.add("aaa.first", 4);
        let family: Vec<(&str, u64)> = r.counters_with_prefix("serve.net.").collect();
        assert_eq!(
            family,
            vec![("serve.net.conn_refused", 1), ("serve.net.malformed_frames", 2)]
        );
        assert_eq!(r.counters_with_prefix("zzz.").count(), 0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 4, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1107);
        assert_eq!((h.min, h.max), (1, 1000));
        assert_eq!(h.mean(), 221);
        assert!(h.quantile(0.5) >= 2 && h.quantile(0.5) <= 100);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_adds_counters_and_folds_histograms() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.add("c", 1);
        b.add("c", 2);
        a.observe("h", 10);
        b.observe("h", 20);
        b.set_gauge("g", 7.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count, 2);
        assert_eq!(a.histogram("h").unwrap().sum, 30);
        assert_eq!(a.gauge("g"), Some(7.0));
    }

    #[test]
    fn json_export_parses_back() {
        let mut r = Registry::new();
        r.add("sxe.extends_inserted", 4);
        r.set_gauge("throughput.modules_per_sec", 123.25);
        r.observe("pass.dce.wall_ns", 1500);
        let text = r.to_json();
        let doc = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("sxe.extends_inserted")).and_then(
                crate::json::Value::as_f64
            ),
            Some(4.0)
        );
        let h = doc.get("histograms").and_then(|h| h.get("pass.dce.wall_ns")).unwrap();
        assert_eq!(h.get("count").and_then(crate::json::Value::as_f64), Some(1.0));
        assert_eq!(h.get("sum").and_then(crate::json::Value::as_f64), Some(1500.0));
    }

    #[test]
    fn summary_renders_every_kind() {
        let mut r = Registry::new();
        r.add("cache.hit", 9);
        r.set_gauge("speedup", 2.0);
        r.observe("pass.licm.wall_ns", 2_000_000);
        let s = r.summary();
        assert!(s.contains("cache.hit"));
        assert!(s.contains("speedup"));
        assert!(s.contains("pass.licm.wall_ns"));
        assert!(s.contains("ms"), "durations use the shared formatter: {s}");
    }
}
