//! Differential fuzzing for the sign-extension elimination pipeline.
//!
//! The paper's algorithm is a whole-program dataflow optimization: a
//! wrong answer anywhere (a missed extension, an over-eager removal)
//! shows up not as a crash but as silently different program behavior.
//! This crate turns that risk into a closed loop:
//!
//! * [`gen`] — a seeded structured generator that emits valid,
//!   terminating modules biased toward the paper's hard shapes (narrow
//!   defs at 64-bit uses, array effective addresses, loop-carried narrow
//!   induction variables, mixed widths, calls);
//! * [`driver`] — a campaign runner that compiles each module both ways
//!   under panic containment, diffs them with the differential oracle,
//!   and shards over the worker pool with findings byte-identical at any
//!   thread count;
//! * [`triage`] — stable failure signatures and first-hit deduplication,
//!   so a campaign against one bug reports one finding;
//! * [`reduce`] — a delta-debugging minimizer that shrinks a finding
//!   while re-checking its signature at every accepted step.
//!
//! The `fuzz` binary (in `sxe-bench`) drives all four; `--plant` injects
//! a known deterministic miscompile end-to-end, proving the loop can
//! find, dedup, and minimize a real wrong-code bug before you trust its
//! zero-findings runs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod driver;
pub mod gen;
pub mod reduce;
pub mod triage;

pub use driver::{check_module, module_seed, run_campaign, Campaign, CheckOutcome, FuzzConfig};
pub use gen::{generate_module, GenConfig};
pub use reduce::{reduce, ReduceStats};
pub use triage::{signature_of, Failure, Finding, Side, Signature, Triage};
