//! Crash and mismatch triage: stable signatures and deduplication.
//!
//! A ten-thousand-module campaign against a single bug should report
//! **one** finding, not ten thousand. Every failure is classified into a
//! [`Signature`] — a stable dedup key that survives irrelevant variation
//! (argument values, embedded indices, line numbers) — and a campaign
//! keeps only the first module that hit each signature.

use std::collections::BTreeMap;
use std::fmt;

use sxe_ir::Module;
use sxe_vm::Mismatch;

/// Which compile produced the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The reference compile (`Variant::Baseline`, no fault plan).
    Baseline,
    /// The compile under test (full pipeline, optionally with chaos).
    Optimized,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Baseline => "baseline",
            Side::Optimized => "optimized",
        })
    }
}

/// One raw failure observed while checking a single module.
#[derive(Debug, Clone)]
pub enum Failure {
    /// A panic escaped the compile (or the check itself panicked).
    Abort {
        /// Side that blew up.
        side: Side,
        /// Panic payload, if it was a string.
        message: String,
    },
    /// The compiler returned an error for a module the generator
    /// believes is valid.
    Refused {
        /// Side that refused.
        side: Side,
        /// The rendered [`sxe_jit::CompileError`].
        error: String,
    },
    /// A fault was contained inside the pipeline (a rolled-back or
    /// budget-stopped boundary) during a campaign that injected none —
    /// behavior survived, but a pass panicked or produced unverifiable
    /// IR on generator-valid input.
    Contained {
        /// Side whose report carries the incident.
        side: Side,
        /// Pass name of the offending boundary record.
        pass: String,
        /// Rendered boundary status (rollback cause, budget exhaustion).
        status: String,
    },
    /// The differential oracle observed divergent behavior.
    Mismatch(Mismatch),
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Abort { side, message } => write!(f, "ABORT [{side}]: {message}"),
            Failure::Refused { side, error } => write!(f, "REFUSED [{side}]: {error}"),
            Failure::Contained { side, pass, status } => {
                write!(f, "CONTAINED [{side}] {pass}: {status}")
            }
            Failure::Mismatch(m) => write!(f, "MISMATCH: {m}"),
        }
    }
}

/// Stable deduplication key for a [`Failure`].
///
/// Digits are normalized to `#` so indices, lengths, and line numbers
/// embedded in a message do not split one bug into many signatures. For
/// mismatches the key is the (positional) function name plus the
/// *classes* of both outcomes — `done` or `trap(Kind)` — never the
/// concrete values, because the same wrong-code bug produces different
/// wrong values on different argument sets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Signature {
    /// A panic escaped containment.
    Abort {
        /// Side that blew up.
        side: Side,
        /// Digit-normalized panic message.
        message: String,
    },
    /// A generator-valid module was refused by the compiler.
    Refused {
        /// Side that refused.
        side: Side,
        /// Digit-normalized error text.
        class: String,
    },
    /// A contained incident on a campaign that injected no faults.
    Contained {
        /// Side whose report carries the incident.
        side: Side,
        /// Digit-normalized `pass: status` text.
        class: String,
    },
    /// The oracle saw divergent behavior.
    Mismatch {
        /// Function that diverged.
        function: String,
        /// Outcome class on the baseline side.
        left: String,
        /// Outcome class on the optimized side.
        right: String,
    },
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signature::Abort { side, message } => write!(f, "abort/{side}: {message}"),
            Signature::Refused { side, class } => write!(f, "refused/{side}: {class}"),
            Signature::Contained { side, class } => write!(f, "contained/{side}: {class}"),
            Signature::Mismatch { function, left, right } => {
                write!(f, "mismatch/@{function}: {left} vs {right}")
            }
        }
    }
}

impl Signature {
    /// A short stable hash of the signature, used in finding filenames.
    #[must_use]
    pub fn short_hash(&self) -> u64 {
        // FNV-1a over the canonical rendering; stable across platforms
        // and campaign orderings.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_string().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// Collapse every run of ASCII digits to a single `#`, so embedded
/// indices, lengths, and line numbers of any magnitude normalize alike.
#[must_use]
pub fn normalize_digits(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_run = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            if !in_run {
                out.push('#');
                in_run = true;
            }
        } else {
            in_run = false;
            out.push(c);
        }
    }
    out
}

/// Collapse a VM outcome description to its class: `done` for any
/// completed run, or the `trap(Kind)` text verbatim.
fn outcome_class(outcome: &str) -> String {
    if outcome.starts_with("trap(") {
        outcome.to_string()
    } else {
        "done".to_string()
    }
}

/// Compute the dedup signature of a failure.
#[must_use]
pub fn signature_of(failure: &Failure) -> Signature {
    match failure {
        Failure::Abort { side, message } => Signature::Abort {
            side: *side,
            message: normalize_digits(message),
        },
        Failure::Refused { side, error } => Signature::Refused {
            side: *side,
            class: normalize_digits(error),
        },
        Failure::Contained { side, pass, status } => Signature::Contained {
            side: *side,
            class: normalize_digits(&format!("{pass}: {status}")),
        },
        Failure::Mismatch(m) => Signature::Mismatch {
            function: m.function.clone(),
            left: outcome_class(&m.left),
            right: outcome_class(&m.right),
        },
    }
}

/// One unique finding: the first module in the campaign that hit a
/// signature, everything needed to replay it, and (once the reducer has
/// run) a minimized reproducer.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Campaign index of the first module that hit this signature.
    pub index: usize,
    /// Generator seed of that module — the replay key.
    pub module_seed: u64,
    /// Dedup signature.
    pub signature: Signature,
    /// Human-readable one-line description of the first observation.
    pub detail: String,
    /// The offending module, verbatim.
    pub module: Module,
    /// Minimized reproducer, if reduction ran.
    pub reduced: Option<Module>,
    /// The concrete mismatch, when the failure was one (carries the
    /// oracle seed and run index for single-run replay).
    pub mismatch: Option<Mismatch>,
    /// How many campaign modules hit this signature in total.
    pub hits: usize,
}

/// Signature-keyed dedup table for a campaign.
///
/// Record failures **in campaign index order** — the table keeps the
/// first module per signature, so in-order recording makes the kept
/// exemplar independent of how the campaign was sharded.
#[derive(Debug, Default)]
pub struct Triage {
    table: BTreeMap<Signature, Finding>,
}

impl Triage {
    /// Empty table.
    #[must_use]
    pub fn new() -> Triage {
        Triage::default()
    }

    /// Record one failure. Returns `true` if its signature is new.
    pub fn record(
        &mut self,
        index: usize,
        module_seed: u64,
        module: &Module,
        failure: &Failure,
    ) -> bool {
        let signature = signature_of(failure);
        if let Some(existing) = self.table.get_mut(&signature) {
            existing.hits += 1;
            return false;
        }
        let mismatch = match failure {
            Failure::Mismatch(m) => Some(m.clone()),
            _ => None,
        };
        self.table.insert(
            signature.clone(),
            Finding {
                index,
                module_seed,
                signature,
                detail: failure.to_string(),
                module: module.clone(),
                reduced: None,
                mismatch,
                hits: 1,
            },
        );
        true
    }

    /// Number of unique signatures seen.
    #[must_use]
    pub fn unique(&self) -> usize {
        self.table.len()
    }

    /// Total failures recorded, including duplicates.
    #[must_use]
    pub fn total_hits(&self) -> usize {
        self.table.values().map(|f| f.hits).sum()
    }

    /// Iterate findings in stable (signature) order.
    pub fn findings(&self) -> impl Iterator<Item = &Finding> {
        self.table.values()
    }

    /// Mutable iteration, for attaching reduced reproducers.
    pub fn findings_mut(&mut self) -> impl Iterator<Item = &mut Finding> {
        self.table.values_mut()
    }

    /// Consume the table into findings in stable order.
    #[must_use]
    pub fn into_findings(self) -> Vec<Finding> {
        self.table.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mismatch(function: &str, left: &str, right: &str) -> Failure {
        Failure::Mismatch(Mismatch {
            function: function.to_string(),
            args: vec![1, 2],
            left: left.to_string(),
            right: right.to_string(),
            seed: 7,
            run: 3,
        })
    }

    #[test]
    fn digits_normalize_and_dedup() {
        let a = Failure::Abort {
            side: Side::Optimized,
            message: "index out of bounds: the len is 4 but the index is 9".into(),
        };
        let b = Failure::Abort {
            side: Side::Optimized,
            message: "index out of bounds: the len is 12 but the index is 31".into(),
        };
        assert_eq!(signature_of(&a), signature_of(&b));
        let c = Failure::Abort { side: Side::Baseline, message: "oops".into() };
        assert_ne!(signature_of(&a), signature_of(&c));
    }

    #[test]
    fn mismatch_signatures_ignore_values_but_keep_trap_kinds() {
        let a = mismatch("f0", "ret=Some(3) heap=0x12", "ret=Some(4) heap=0x12");
        let b = mismatch("f0", "ret=Some(-9) heap=0x99", "ret=Some(0) heap=0x99");
        assert_eq!(signature_of(&a), signature_of(&b));
        let c = mismatch("f0", "ret=Some(3) heap=0x12", "trap(WildAddress)");
        assert_ne!(signature_of(&a), signature_of(&c));
        let d = mismatch("f1", "ret=Some(3) heap=0x12", "ret=Some(4) heap=0x12");
        assert_ne!(signature_of(&a), signature_of(&d));
    }

    #[test]
    fn triage_keeps_first_module_and_counts_hits() {
        let m = Module::new();
        let mut t = Triage::new();
        assert!(t.record(0, 111, &m, &mismatch("f0", "done-ish", "trap(DivisionByZero)")));
        assert!(!t.record(4, 222, &m, &mismatch("f0", "done-ish", "trap(DivisionByZero)")));
        assert!(t.record(5, 333, &m, &mismatch("f1", "done-ish", "trap(DivisionByZero)")));
        assert_eq!(t.unique(), 2);
        assert_eq!(t.total_hits(), 3);
        let first = t.findings().next().unwrap();
        assert_eq!((first.index, first.module_seed, first.hits), (0, 111, 2));
    }

    #[test]
    fn short_hash_is_stable() {
        let s = signature_of(&mismatch("f0", "done", "trap(WildAddress)"));
        assert_eq!(s.short_hash(), s.clone().short_hash());
        assert_ne!(
            s.short_hash(),
            signature_of(&mismatch("f1", "done", "trap(WildAddress)")).short_hash()
        );
    }
}
