//! Campaign driver: generate, compile both sides under containment,
//! diff with the oracle, triage, reduce.
//!
//! For each campaign index a per-module seed is derived, a structured
//! module generated, and both a reference compile (`Variant::Baseline`,
//! no faults — the raw 32-bit module is not meaningful on the 64-bit
//! machine until conversion has inserted its extensions) and the compile
//! under test run inside `catch_unwind` containment. The two results are
//! then diffed by [`sxe_vm::differential_check`]. Any panic, refusal, or
//! behavioral divergence becomes a [`Failure`], deduplicated by
//! [`Triage`] and (optionally) handed to the [`reduce`](crate::reduce)
//! minimizer with a "same signature still?" predicate.
//!
//! Modules are sharded over [`sxe_jit::shard::par_map`], which returns
//! results in campaign-index order and runs the exact sequential code
//! path at `threads == 1` — so a campaign's findings, and the reduced
//! reproducers (reduction is sequential after collection), are
//! byte-identical at any worker count.

use std::panic::{self, AssertUnwindSafe};

use sxe_core::Variant;
use sxe_ir::rng::XorShift;
use sxe_ir::{Module, Target};
use sxe_jit::{shard, CompileReport, Compiler, FaultPlan, PassStatus, Telemetry};
use sxe_vm::{differential_check, OracleConfig};

use crate::gen::{generate_module, GenConfig};
use crate::reduce::reduce;
use crate::triage::{signature_of, Failure, Finding, Side, Triage};

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of modules to generate and check.
    pub count: usize,
    /// Campaign seed; each module's seed is derived from it.
    pub seed: u64,
    /// Worker threads for the campaign shard (findings are identical at
    /// any value).
    pub threads: usize,
    /// Pipeline variant under test.
    pub variant: Variant,
    /// Execution target for compilation and the oracle.
    pub target: Target,
    /// Oracle settings (runs per function, fuel, argument seed).
    pub oracle: OracleConfig,
    /// Generator shape knobs.
    pub gen: GenConfig,
    /// Also inject one contained fault per module
    /// ([`FaultPlan::from_seed`] keyed by the module seed).
    pub chaos: bool,
    /// Plant a deterministic miscompile ([`FaultPlan::miscompile`]) in
    /// the compile under test — the self-test mode that proves the fuzzer
    /// can find, dedup, and minimize a real wrong-code bug. Takes
    /// precedence over `chaos`.
    pub plant: bool,
    /// Minimize each unique finding after the campaign.
    pub reduce: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            count: 256,
            seed: 0xfa22_5eed,
            threads: 1,
            variant: Variant::All,
            target: Target::Ia64,
            oracle: OracleConfig::default(),
            gen: GenConfig::default(),
            chaos: false,
            plant: false,
            reduce: true,
        }
    }
}

/// Derive the generator seed for campaign index `index`.
///
/// The index is diffused through a [`XorShift`] warm-up so neighbouring
/// indices produce unrelated modules; the mapping is the public replay
/// contract (`fuzz --module-seed` accepts its output).
#[must_use]
pub fn module_seed(campaign_seed: u64, index: usize) -> u64 {
    XorShift::new(campaign_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

/// What checking one module produced.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Oracle comparisons performed (0 when a compile already failed).
    pub comparisons: usize,
    /// The failure, if any.
    pub failure: Option<Failure>,
}

/// Run `f` inside a panic containment boundary, reporting the panic
/// payload as a string.
fn contained<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(|p| {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// The fault plan for the compile under test, if any.
fn plan_for(module_seed: u64, boundaries: u32, config: &FuzzConfig) -> Option<FaultPlan> {
    if config.plant {
        // Boundary 0 ("convert") always exists, and sabotage there
        // survives every later correct pass — semantic damage is not
        // structural damage, so nothing downstream repairs it.
        Some(FaultPlan::miscompile(module_seed, 0))
    } else if config.chaos {
        Some(FaultPlan::from_seed(module_seed, boundaries))
    } else {
        None
    }
}

/// The first contained incident in a report, if any — a boundary that
/// rolled back, ran out of budget, or carries an injection record.
fn first_incident(report: &CompileReport) -> Option<(String, String)> {
    report
        .records
        .iter()
        .find(|r| {
            r.injected.is_some() || !matches!(r.status, PassStatus::Ok | PassStatus::Skipped)
        })
        .map(|r| (r.pass.clone(), format!("{:?}", r.status)))
}

/// Compile `module` both ways and diff them.
///
/// `module_seed` keys the fault plan (if `chaos`/`plant` is on), so
/// re-checking a module under the same seed — as the reducer does —
/// reproduces the exact same compile.
pub fn check_module(module: &Module, module_seed: u64, config: &FuzzConfig) -> CheckOutcome {
    let none = |failure| CheckOutcome { comparisons: 0, failure: Some(failure) };
    // Containment is the harness doing its job, but on a campaign that
    // injects no faults an incident means a pass panicked or produced
    // unverifiable IR on generator-valid input — a real finding even
    // though behavior survived.
    let plain = !config.chaos && !config.plant;
    let reference = {
        let compiler = Compiler::builder(Variant::Baseline).target(config.target).build();
        match contained(|| compiler.try_compile(module)) {
            Err(message) => return none(Failure::Abort { side: Side::Baseline, message }),
            Ok(Err(e)) => {
                return none(Failure::Refused { side: Side::Baseline, error: e.to_string() })
            }
            Ok(Ok(c)) => {
                if plain {
                    if let Some((pass, status)) = first_incident(&c.report) {
                        return none(Failure::Contained { side: Side::Baseline, pass, status });
                    }
                }
                c.module
            }
        }
    };
    let plan = if config.chaos && !config.plant {
        // Chaos needs the boundary count; a dry compile under
        // containment supplies it.
        let dry = Compiler::builder(config.variant).target(config.target).build();
        match contained(|| dry.try_compile(module)) {
            Err(message) => return none(Failure::Abort { side: Side::Optimized, message }),
            Ok(Err(e)) => {
                return none(Failure::Refused { side: Side::Optimized, error: e.to_string() })
            }
            Ok(Ok(c)) => plan_for(module_seed, c.report.boundaries() as u32, config),
        }
    } else {
        plan_for(module_seed, 0, config)
    };
    let compiler = {
        let mut b = Compiler::builder(config.variant).target(config.target);
        if let Some(p) = plan {
            b = b.fault_plan(p);
        }
        b.build()
    };
    let optimized = match contained(|| compiler.try_compile(module)) {
        Err(message) => return none(Failure::Abort { side: Side::Optimized, message }),
        Ok(Err(e)) => {
            return none(Failure::Refused { side: Side::Optimized, error: e.to_string() })
        }
        Ok(Ok(c)) => {
            if plain {
                if let Some((pass, status)) = first_incident(&c.report) {
                    return none(Failure::Contained { side: Side::Optimized, pass, status });
                }
            }
            c.module
        }
    };
    match contained(|| differential_check(&reference, &optimized, config.target, &config.oracle)) {
        Err(message) => none(Failure::Abort {
            side: Side::Optimized,
            message: format!("oracle panicked: {message}"),
        }),
        Ok(Ok(n)) => CheckOutcome { comparisons: n, failure: None },
        Ok(Err(m)) => CheckOutcome { comparisons: 0, failure: Some(Failure::Mismatch(m)) },
    }
}

/// Aggregate result of a campaign.
#[derive(Debug)]
pub struct Campaign {
    /// Modules generated and checked.
    pub modules: usize,
    /// Total oracle comparisons that agreed.
    pub comparisons: usize,
    /// Total failing modules (before deduplication).
    pub failures: usize,
    /// Unique findings in stable signature order, reduced if requested.
    pub findings: Vec<Finding>,
}

/// Run a full campaign: generate/check `config.count` modules (sharded
/// over `config.threads` workers), triage the failures, and minimize one
/// exemplar per unique signature.
#[must_use]
pub fn run_campaign(config: &FuzzConfig, telemetry: &Telemetry) -> Campaign {
    let indices: Vec<usize> = (0..config.count).collect();
    let results = shard::par_map(&indices, config.threads, |_, &i| {
        let mseed = module_seed(config.seed, i);
        let module = generate_module(mseed, &config.gen);
        let outcome = check_module(&module, mseed, config);
        (i, mseed, module, outcome)
    });
    let mut triage = Triage::new();
    let mut comparisons = 0;
    let mut failures = 0;
    // `par_map` returns results in index order, so the exemplar kept per
    // signature (the first hit) does not depend on the worker count.
    for (i, mseed, module, outcome) in results {
        comparisons += outcome.comparisons;
        if let Some(f) = outcome.failure {
            failures += 1;
            triage.record(i, mseed, &module, &f);
        }
    }
    let mut reduced_steps = 0u64;
    if config.reduce {
        for finding in triage.findings_mut() {
            let target = finding.signature.clone();
            let mseed = finding.module_seed;
            let (min, stats) = reduce(&finding.module, |cand| {
                match check_module(cand, mseed, config).failure {
                    Some(f) => signature_of(&f) == target,
                    None => false,
                }
            });
            reduced_steps += stats.steps_accepted as u64;
            finding.reduced = Some(min);
        }
    }
    let campaign = Campaign {
        modules: config.count,
        comparisons,
        failures,
        findings: triage.into_findings(),
    };
    telemetry.metrics(|m| {
        m.add("fuzz.modules", campaign.modules as u64);
        m.add("fuzz.comparisons", campaign.comparisons as u64);
        m.add("fuzz.failures", campaign.failures as u64);
        m.add("fuzz.findings", campaign.findings.len() as u64);
        m.add("fuzz.reduce.accepted", reduced_steps);
    });
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(count: usize) -> FuzzConfig {
        FuzzConfig {
            count,
            oracle: OracleConfig::new().runs(4),
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn module_seeds_are_diffused() {
        let a = module_seed(1, 0);
        let b = module_seed(1, 1);
        let c = module_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, module_seed(1, 0));
    }

    #[test]
    fn clean_campaign_finds_nothing() {
        let campaign = run_campaign(&quick(24), &Telemetry::disabled());
        assert_eq!(campaign.modules, 24);
        assert!(campaign.comparisons > 0, "oracle actually compared things");
        assert!(
            campaign.findings.is_empty(),
            "clean pipeline must have no findings: {:#?}",
            campaign.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
        );
    }

    #[test]
    fn planted_miscompile_is_found_deduped_and_reduced() {
        let config = FuzzConfig { plant: true, ..quick(8) };
        let campaign = run_campaign(&config, &Telemetry::disabled());
        assert!(campaign.failures > 0, "the plant must be detected");
        assert!(!campaign.findings.is_empty());
        assert!(
            campaign.findings.len() < campaign.failures || campaign.failures == 1,
            "triage dedups: {} failures, {} unique",
            campaign.failures,
            campaign.findings.len()
        );
        for finding in &campaign.findings {
            let min = finding.reduced.as_ref().expect("reduction ran");
            assert!(min.inst_count() <= finding.module.inst_count());
            // The minimized reproducer still fails with the same signature.
            let outcome = check_module(min, finding.module_seed, &config);
            let f = outcome.failure.expect("reduced module still fails");
            assert_eq!(signature_of(&f), finding.signature);
        }
        // At least one exemplar shrinks hard — the planted bug needs only
        // a constant flowing to an observation.
        assert!(
            campaign
                .findings
                .iter()
                .any(|f| f.reduced.as_ref().unwrap().inst_count() * 4 <= f.module.inst_count()),
            "some finding reduced to ≤25%: {:?}",
            campaign
                .findings
                .iter()
                .map(|f| (f.module.inst_count(), f.reduced.as_ref().unwrap().inst_count()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn campaigns_are_identical_at_any_thread_count() {
        let base = FuzzConfig { plant: true, reduce: false, ..quick(10) };
        let one = run_campaign(&base, &Telemetry::disabled());
        let four = run_campaign(&FuzzConfig { threads: 4, ..base }, &Telemetry::disabled());
        assert_eq!(one.comparisons, four.comparisons);
        assert_eq!(one.failures, four.failures);
        let key = |c: &Campaign| {
            c.findings
                .iter()
                .map(|f| (f.index, f.module_seed, f.signature.clone(), f.module.to_string()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&one), key(&four));
    }

    #[test]
    fn chaos_mode_stays_contained() {
        // Contained faults + recovery must never abort and never diverge.
        let config = FuzzConfig { chaos: true, reduce: false, ..quick(12) };
        let campaign = run_campaign(&config, &Telemetry::disabled());
        assert!(
            campaign.findings.is_empty(),
            "contained faults must not surface: {:#?}",
            campaign.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
        );
    }
}
