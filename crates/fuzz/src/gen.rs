//! Seeded structured IR generator.
//!
//! Emits modules that are **valid and terminating by construction** —
//! every block ends in exactly one terminator, every use is dominated by
//! a definition, every register is defined at a single converter kind
//! (narrow int / wide / float), every loop runs on a hidden bounded
//! counter the body cannot touch, and calls only go to higher-numbered
//! functions — while
//! being deliberately biased toward the shapes where sign-extension
//! elimination bugs hide:
//!
//! * 32-bit (and narrower) definitions flowing into 64-bit uses —
//!   `setcc.i64`, 64-bit arithmetic, `i2d` conversions;
//! * array effective-address chains indexed by narrow computed values
//!   (the `WildAddress` trap is the canonical miscompile symptom);
//! * loop-carried narrow induction variables;
//! * mixed `i8`/`i16`/`i32` widths, explicit `extend`/`zext`, division
//!   and comparison consumers, and cross-function narrow flows.
//!
//! Same seed, same module, on every platform — the generator draws all
//! randomness from [`XorShift`].

use sxe_ir::rng::XorShift;
use sxe_ir::{
    BinOp, Cond, FuncId, Function, FunctionBuilder, Inst, Module, Reg, Ty, UnOp, Width,
};

/// Tuning knobs for the structured generator.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Upper bound on functions per module (at least one is generated).
    pub max_funcs: usize,
    /// Upper bound on statements per straight-line region.
    pub max_stmts: usize,
    /// Maximum nesting depth of loops and diamonds.
    pub max_depth: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { max_funcs: 4, max_stmts: 6, max_depth: 2 }
    }
}

/// Parameter types and return type of one generated function.
type Sig = (Vec<Ty>, Option<Ty>);

/// Generate a valid, terminating module from `seed`.
#[must_use]
pub fn generate_module(seed: u64, config: &GenConfig) -> Module {
    let mut rng = XorShift::new(seed);
    let nfuncs = 1 + rng.index(config.max_funcs.max(1));
    let sigs: Vec<Sig> = (0..nfuncs).map(|_| random_sig(&mut rng)).collect();
    let mut m = Module::new();
    for i in 0..nfuncs {
        let frng = rng.fork();
        m.add_function(generate_function(frng, i, &sigs, config));
    }
    m
}

fn random_sig(rng: &mut XorShift) -> Sig {
    const PARAM_TYS: [Ty; 4] = [Ty::I32, Ty::I64, Ty::I16, Ty::I8];
    const PARAM_W: [u32; 4] = [6, 2, 2, 1];
    let nparams = rng.index(4);
    let params = (0..nparams).map(|_| PARAM_TYS[rng.weighted(&PARAM_W)]).collect();
    const RET_TYS: [Option<Ty>; 5] =
        [Some(Ty::I32), Some(Ty::I64), Some(Ty::I16), Some(Ty::F64), None];
    const RET_W: [u32; 5] = [6, 4, 2, 2, 1];
    (params, RET_TYS[rng.weighted(&RET_W)])
}

/// Scoped variable pools: anything defined inside a diamond arm or a
/// loop body is popped when the construct closes, so every use the
/// generator emits is dominated by its definition.
struct Gen<'a> {
    rng: XorShift,
    cfg: &'a GenConfig,
    sigs: &'a [Sig],
    me: usize,
    /// Integer variables (register, declared width hint).
    ints: Vec<(Reg, Ty)>,
    /// Read-only integer values — call results. The converter's kind
    /// inference types every call destination as wide before refining by
    /// callee signature, so overwriting one at its refined kind would
    /// conflict; they feed uses only.
    reads: Vec<(Reg, Ty)>,
    /// `f64` variables.
    floats: Vec<Reg>,
    /// Array references (register, element type).
    arrays: Vec<(Reg, Ty)>,
}

/// Pool high-water marks, for scope restore on region exit.
type Mark = (usize, usize, usize, usize);

fn generate_function(rng: XorShift, me: usize, sigs: &[Sig], cfg: &GenConfig) -> Function {
    let (params, ret) = sigs[me].clone();
    let mut b = FunctionBuilder::new(format!("f{me}"), params.clone(), ret);
    let mut g = Gen {
        rng,
        cfg,
        sigs,
        me,
        ints: Vec::new(),
        reads: Vec::new(),
        floats: Vec::new(),
        arrays: Vec::new(),
    };
    // Adopt integer parameters as mutable variables.
    for (i, ty) in params.iter().enumerate() {
        g.ints.push((b.param(i), *ty));
    }
    // Seed the variable pool in the entry block, where every later use
    // is dominated by the definition. The converter infers one kind per
    // register from its definitions (narrow int / wide / float) and
    // rejects conflicts, so the pools are kind-segregated from birth:
    // at least two narrow variables and one wide accumulator always
    // exist, and every write the generator emits targets a variable of
    // the matching kind.
    let nvars = 2 + g.rng.index(3);
    for _ in 0..nvars {
        let ty = g.narrow_ty();
        let value = g.small_const();
        let v = b.iconst(ty, value);
        g.ints.push((v, ty));
    }
    let nwide = 1 + usize::from(g.rng.flip());
    for _ in 0..nwide {
        let value = g.small_const();
        let v = b.iconst(Ty::I64, value);
        g.ints.push((v, Ty::I64));
    }
    if ret == Some(Ty::F64) || g.rng.chance(1, 3) {
        let value = g.small_const();
        let v = b.fconst(value as f64);
        g.floats.push(v);
    }
    g.region(&mut b, 0);
    match ret {
        None => b.ret(None),
        Some(Ty::F64) => {
            let r = *g.rng.choose(&g.floats);
            b.ret(Some(r));
        }
        Some(Ty::I64) => {
            let r = g.wide_var();
            b.ret(Some(r));
        }
        Some(_) => {
            let (r, _) = g.narrow_var();
            b.ret(Some(r));
        }
    }
    b.finish()
}

impl Gen<'_> {
    fn narrow_ty(&mut self) -> Ty {
        const TYS: [Ty; 3] = [Ty::I32, Ty::I16, Ty::I8];
        TYS[self.rng.weighted(&[8, 3, 2])]
    }

    fn small_const(&mut self) -> i64 {
        match self.rng.below(10) {
            0 => 0,
            1 => -1,
            2 => i64::from(i32::MAX),
            3 => i64::from(i32::MIN),
            4 => self.rng.any_i64(),
            _ => self.rng.range_i64(-4, 40),
        }
    }

    /// Any integer value (variable or read-only call result) — legal as
    /// a *use* (operand, index, call argument) regardless of kind, since
    /// uses do not constrain the converter's kind inference.
    fn int_var(&mut self) -> (Reg, Ty) {
        let i = self.rng.index(self.ints.len() + self.reads.len());
        if i < self.ints.len() {
            self.ints[i]
        } else {
            self.reads[i - self.ints.len()]
        }
    }

    /// A narrow-kind (`i8`/`i16`/`i32`) variable — the only legal
    /// destination for narrow writes, `setcc`, `extend`, `arraylen`,
    /// `d2i`, and `zext -> i32`. The entry block guarantees at least two.
    fn narrow_var(&mut self) -> (Reg, Ty) {
        let n = self.ints.iter().filter(|(_, ty)| *ty != Ty::I64).count();
        let pick = self.rng.index(n);
        *self
            .ints
            .iter()
            .filter(|(_, ty)| *ty != Ty::I64)
            .nth(pick)
            .expect("entry seeds narrow variables")
    }

    /// A wide-kind (`i64`) variable — the only legal destination for
    /// 64-bit writes. The entry block guarantees at least one.
    fn wide_var(&mut self) -> Reg {
        let n = self.ints.iter().filter(|(_, ty)| *ty == Ty::I64).count();
        let pick = self.rng.index(n);
        self.ints
            .iter()
            .filter(|(_, ty)| *ty == Ty::I64)
            .nth(pick)
            .expect("entry seeds a wide variable")
            .0
    }

    fn bin_op(&mut self) -> BinOp {
        const OPS: [BinOp; 11] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Shru,
        ];
        OPS[self.rng.weighted(&[8, 6, 5, 1, 1, 3, 2, 3, 3, 2, 2])]
    }

    fn cond(&mut self) -> Cond {
        const CONDS: [Cond; 10] = [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
            Cond::Ult,
            Cond::Ule,
            Cond::Ugt,
            Cond::Uge,
        ];
        *self.rng.choose(&CONDS)
    }

    fn mark(&self) -> Mark {
        (self.ints.len(), self.reads.len(), self.floats.len(), self.arrays.len())
    }

    fn restore(&mut self, m: Mark) {
        self.ints.truncate(m.0);
        self.reads.truncate(m.1);
        self.floats.truncate(m.2);
        self.arrays.truncate(m.3);
    }

    fn region(&mut self, b: &mut FunctionBuilder, depth: usize) {
        let n = 1 + self.rng.index(self.cfg.max_stmts);
        for _ in 0..n {
            self.stmt(b, depth);
        }
    }

    fn stmt(&mut self, b: &mut FunctionBuilder, depth: usize) {
        let deeper = depth < self.cfg.max_depth;
        let top = depth == 0;
        let choice = self.rng.weighted(&[
            22,                                                        // 0 narrow arithmetic
            12,                                                        // 1 narrow def, 64-bit use
            8,                                                         // 2 explicit sign extension
            5,                                                         // 3 zero extension
            6,                                                         // 4 constant reset
            5,                                                         // 5 float chain
            if self.arrays.is_empty() { 0 } else { 12 },               // 6 array load/store/len
            if self.arrays.len() < 3 { 5 } else { 0 },                 // 7 new array
            if top && self.me + 1 < self.sigs.len() { 6 } else { 0 },  // 8 forward call
            if deeper { 8 } else { 0 },                                // 9 diamond
            if deeper { 7 } else { 0 },                                // 10 counted loop
        ]);
        match choice {
            0 => self.stmt_narrow_arith(b),
            1 => self.stmt_wide_use(b),
            2 => self.stmt_extend(b),
            3 => self.stmt_zext(b),
            4 => self.stmt_const(b),
            5 => self.stmt_float(b),
            6 => self.stmt_array_access(b),
            7 => self.stmt_new_array(b),
            8 => self.stmt_call(b),
            9 => self.stmt_diamond(b, depth),
            _ => self.stmt_loop(b, depth),
        }
    }

    /// Narrow arithmetic into an existing variable: the upper bits of the
    /// result are garbage under the machine model, which is exactly what
    /// conversion's inserted extensions must repair.
    fn stmt_narrow_arith(&mut self, b: &mut FunctionBuilder) {
        let ty = self.narrow_ty();
        let (x, _) = self.int_var();
        let (y, _) = self.int_var();
        let (d, _) = self.narrow_var();
        let op = self.bin_op();
        b.bin_to(op, ty, d, x, y);
    }

    /// A 64-bit (requiring) use of whatever narrow garbage is around:
    /// 64-bit compare, 64-bit arithmetic, or an `i2d` conversion.
    fn stmt_wide_use(&mut self, b: &mut FunctionBuilder) {
        let (x, _) = self.int_var();
        let (y, _) = self.int_var();
        match self.rng.below(4) {
            0 => {
                let cond = self.cond();
                let (d, _) = self.narrow_var();
                b.raw(Inst::Setcc { cond, ty: Ty::I64, dst: d, lhs: x, rhs: y });
            }
            1 => {
                let op = if self.rng.flip() { UnOp::I32ToF64 } else { UnOp::I64ToF64 };
                if let Some(&f) = self.floats.first() {
                    b.un_to(op, Ty::F64, f, x);
                } else {
                    let f = b.un(op, Ty::F64, x);
                    self.floats.push(f);
                }
            }
            _ => {
                let op = self.bin_op();
                let d = self.wide_var();
                b.bin_to(op, Ty::I64, d, x, y);
            }
        }
    }

    fn stmt_extend(&mut self, b: &mut FunctionBuilder) {
        let (x, ty) = self.narrow_var();
        let from = match ty.width() {
            Some(w) if self.rng.chance(2, 3) => w,
            _ => [Width::W8, Width::W16, Width::W32][self.rng.weighted(&[2, 3, 8])],
        };
        b.extend_in_place(x, from);
    }

    fn stmt_zext(&mut self, b: &mut FunctionBuilder) {
        let (x, _) = self.int_var();
        let w = [Width::W8, Width::W16, Width::W32][self.rng.weighted(&[2, 2, 5])];
        // Width rule: zext.32 produces an i64; zext.8/16 may produce
        // either an i32 or an i64. The destination kind follows the
        // result type.
        let ty = if w == Width::W32 || self.rng.flip() { Ty::I64 } else { Ty::I32 };
        let d = if ty == Ty::I64 { self.wide_var() } else { self.narrow_var().0 };
        b.un_to(UnOp::Zext(w), ty, d, x);
    }

    fn stmt_const(&mut self, b: &mut FunctionBuilder) {
        let value = self.small_const();
        if self.rng.chance(3, 4) {
            let (d, ty) = self.narrow_var();
            b.raw(Inst::Const { dst: d, value, ty });
        } else {
            let d = self.wide_var();
            b.raw(Inst::Const { dst: d, value, ty: Ty::I64 });
        }
    }

    fn stmt_float(&mut self, b: &mut FunctionBuilder) {
        if self.floats.is_empty() {
            let value = self.small_const();
            let v = b.fconst(value as f64);
            self.floats.push(v);
            return;
        }
        let f = *self.rng.choose(&self.floats);
        match self.rng.below(4) {
            0 => {
                let op = *self.rng.choose(&[UnOp::FNeg, UnOp::FAbs, UnOp::FSqrt]);
                b.un_to(op, Ty::F64, f, f);
            }
            1 => {
                let op = *self.rng.choose(&[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div]);
                let g = *self.rng.choose(&self.floats);
                b.bin_to(op, Ty::F64, f, f, g);
            }
            _ => {
                // d2i / d2l back into the integer world.
                if self.rng.flip() {
                    let (d, _) = self.narrow_var();
                    b.un_to(UnOp::F64ToI32, Ty::I32, d, f);
                } else {
                    let d = self.wide_var();
                    b.un_to(UnOp::F64ToI64, Ty::I64, d, f);
                }
            }
        }
    }

    /// Array access indexed by a pool variable — an effective-address
    /// chain whose index may carry garbage upper bits.
    fn stmt_array_access(&mut self, b: &mut FunctionBuilder) {
        let (a, elem) = *self.rng.choose(&self.arrays);
        let (i, _) = self.int_var();
        match self.rng.below(4) {
            0 => {
                let (s, _) = self.int_var();
                b.array_store(elem, a, i, s);
            }
            1 => {
                let (d, _) = self.narrow_var();
                b.raw(Inst::ArrayLen { dst: d, array: a });
            }
            _ => {
                let d = if elem == Ty::I64 { self.wide_var() } else { self.narrow_var().0 };
                b.array_load_to(elem, d, a, i);
            }
        }
    }

    fn stmt_new_array(&mut self, b: &mut FunctionBuilder) {
        const ELEMS: [Ty; 4] = [Ty::I8, Ty::I16, Ty::I32, Ty::I64];
        let elem = ELEMS[self.rng.weighted(&[2, 2, 6, 3])];
        let (raw, _) = self.int_var();
        // Mostly mask the length small so allocation succeeds and the
        // interesting code after it actually runs; occasionally leave it
        // raw to exercise the negative-size trap path.
        let len = if self.rng.chance(3, 4) {
            let mask = b.iconst(Ty::I32, 63);
            b.bin(BinOp::And, Ty::I32, raw, mask)
        } else {
            raw
        };
        let a = b.new_array(elem, len);
        self.arrays.push((a, elem));
    }

    /// Forward call (strictly higher-numbered callee, so the call graph
    /// is acyclic and termination is preserved). Only emitted at depth 0
    /// to keep the total executed instruction count additive rather than
    /// multiplicative.
    fn stmt_call(&mut self, b: &mut FunctionBuilder) {
        let j = self.me + 1 + self.rng.index(self.sigs.len() - self.me - 1);
        let (params, ret) = &self.sigs[j];
        let args: Vec<Reg> = (0..params.len()).map(|_| self.int_var().0).collect();
        let dst = b.call(FuncId(j as u32), args, ret.is_some());
        if let Some(d) = dst {
            match ret {
                // Integer results join the read-only pool, flowing into
                // later narrow/wide uses without ever being redefined.
                Some(Ty::F64) | None => {}
                Some(t) => self.reads.push((d, *t)),
            }
        }
    }

    fn stmt_diamond(&mut self, b: &mut FunctionBuilder, depth: usize) {
        let (x, _) = self.int_var();
        let (y, _) = self.int_var();
        let cond = self.cond();
        let cty = if self.rng.chance(1, 3) { Ty::I64 } else { Ty::I32 };
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        b.cond_br(cond, cty, x, y, then_bb, else_bb);
        let save = self.mark();
        b.switch_to(then_bb);
        self.region(b, depth + 1);
        b.br(join);
        self.restore(save);
        b.switch_to(else_bb);
        self.region(b, depth + 1);
        b.br(join);
        self.restore(save);
        b.switch_to(join);
    }

    /// A counted loop on a hidden counter the body cannot reach, plus a
    /// loop-carried narrow induction variable from the visible pool.
    fn stmt_loop(&mut self, b: &mut FunctionBuilder, depth: usize) {
        let trip = 1 + self.rng.below(10) as i64;
        let ctr = b.iconst(Ty::I32, trip);
        let zero = b.iconst(Ty::I32, 0);
        let one = b.iconst(Ty::I32, 1);
        let header = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        // The narrow IV: incremented at narrow width every iteration, so
        // its upper bits go stale exactly like the paper's loop examples.
        let (iv, _) = self.narrow_var();
        let ivty = self.narrow_ty();
        b.bin_to(BinOp::Add, ivty, iv, iv, one);
        let save = self.mark();
        self.region(b, depth + 1);
        self.restore(save);
        b.bin_to(BinOp::Sub, Ty::I32, ctr, ctr, one);
        b.cond_br(Cond::Gt, Ty::I32, ctr, zero, header, exit);
        b.switch_to(exit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_module, verify_module};

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a = generate_module(0xfeed, &cfg);
        let b = generate_module(0xfeed, &cfg);
        assert_eq!(a.to_string(), b.to_string());
        let c = generate_module(0xfeee, &cfg);
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn generated_modules_verify_and_round_trip() {
        let cfg = GenConfig::default();
        for seed in 0..64u64 {
            let m = generate_module(seed, &cfg);
            verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{m}"));
            let text = m.to_string();
            let back = parse_module(&text)
                .unwrap_or_else(|e| panic!("seed {seed} does not re-parse: {e}\n{text}"));
            assert_eq!(back, m, "seed {seed} round-trips");
        }
    }

    #[test]
    fn hard_shapes_actually_appear() {
        let cfg = GenConfig::default();
        let mut extends = 0usize;
        let mut arrays = 0usize;
        let mut calls = 0usize;
        let mut loops = 0usize;
        for seed in 0..32u64 {
            let m = generate_module(seed, &cfg);
            extends += m.count_extends(None);
            for f in &m.functions {
                for (_, i) in f.insts() {
                    match i {
                        Inst::NewArray { .. } => arrays += 1,
                        Inst::Call { .. } => calls += 1,
                        Inst::CondBr { then_bb, .. } => {
                            // A backward conditional edge is a loop latch.
                            loops += usize::from(then_bb.index() > 0);
                        }
                        _ => {}
                    }
                }
            }
        }
        assert!(extends > 0, "explicit extensions appear");
        assert!(arrays > 0, "array allocations appear");
        assert!(calls > 0, "calls appear");
        assert!(loops > 0, "loops appear");
    }

    #[test]
    fn generated_modules_compile_clean() {
        // Kind-consistent input must sail through the full pipeline with
        // zero contained incidents — a convert/step3 panic here would
        // silently degrade every fuzz campaign.
        use sxe_core::Variant;
        use sxe_jit::Compiler;
        let cfg = GenConfig::default();
        let compiler = Compiler::builder(Variant::All).build();
        for seed in 0..32u64 {
            let m = generate_module(seed, &cfg);
            let c = compiler.try_compile(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(c.report.incidents(), 0, "seed {seed} hit a contained incident");
        }
    }

    #[test]
    fn generated_modules_terminate_quickly() {
        // Executing every function on a few argument sets stays far under
        // the default oracle fuel: termination is structural, not lucky.
        use sxe_vm::Vm;
        let cfg = GenConfig::default();
        for seed in 0..16u64 {
            let m = generate_module(seed, &cfg);
            for f in &m.functions {
                let args = vec![1i64; f.params.len()];
                let mut vm =
                    Vm::builder(&m).target(sxe_ir::Target::Ia64).fuel(2_000_000).build();
                let _ = vm.run(&f.name, &args);
                assert!(
                    vm.counters().insts < 200_000,
                    "seed {seed} @{} executed {} insts",
                    f.name,
                    vm.counters().insts
                );
            }
        }
    }
}
