//! Delta-debugging test-case minimization.
//!
//! [`reduce`] shrinks a failing module while preserving the failure's
//! triage signature. The caller supplies the arbiter — a `reproduces`
//! predicate that re-runs the whole check (compile both sides under
//! containment, diff with the oracle, re-triage) and answers "does this
//! candidate still fail *the same way*?". The reducer itself never
//! verifies candidates: an over-aggressive mutation that produces an
//! invalid module simply gets refused by the compiler inside the
//! predicate, triages to a different signature, and is rejected.
//!
//! Five mutation passes run round-robin to a fixpoint:
//!
//! 1. **Drop functions** — highest index first, only when no remaining
//!    call targets them.
//! 2. **Linearize branches** — rewrite a `condbr` to an unconditional
//!    `br` down either arm and drop the blocks that become unreachable.
//! 3. **Merge blocks** — splice a single-predecessor block into the `br`
//!    that jumps to it, collapsing the chains linearization leaves.
//! 4. **Delete instructions** — tombstone any non-terminator to `nop`.
//! 5. **Simplify instructions** — replace an operation with a cheaper
//!    one reusing its operands (`bin` → `copy` of the left operand,
//!    `call` → `const 0`, …), always preserving the destination's
//!    converter kind. No rule ever fires on its own output, so this
//!    terminates.
//! 6. **Shrink constants** — move integer constants strictly down the
//!    ladder `other → i32::MIN → -1 → 1 → 0` (floats: `other → 1.0 →
//!    0.0`). Monotone rank prevents `0 ↔ 1` oscillation.
//!
//! Every accepted step re-ran the predicate, so the result is reached
//! through failing intermediates only; a second [`reduce`] of the result
//! accepts zero steps (idempotence — tested).

use sxe_ir::{FuncId, Inst, Module, Ty};

/// Counters from one [`reduce`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Candidate modules offered to the predicate.
    pub steps_tried: usize,
    /// Candidates the predicate accepted (committed mutations).
    pub steps_accepted: usize,
    /// Full round-robin sweeps over all passes.
    pub rounds: usize,
}

/// Shrink `module` to a (local) minimum that still satisfies
/// `reproduces`, returning the reduced module and step counters.
///
/// If `module` itself does not satisfy the predicate it is returned
/// unchanged — the reducer only walks through failing candidates.
pub fn reduce(
    module: &Module,
    mut reproduces: impl FnMut(&Module) -> bool,
) -> (Module, ReduceStats) {
    let mut cur = module.clone();
    let mut stats = ReduceStats::default();
    if !reproduces(&cur) {
        return (cur, stats);
    }
    loop {
        stats.rounds += 1;
        let mut changed = false;
        changed |= pass_drop_functions(&mut cur, &mut reproduces, &mut stats);
        changed |= pass_linearize_branches(&mut cur, &mut reproduces, &mut stats);
        changed |= pass_merge_blocks(&mut cur, &mut reproduces, &mut stats);
        changed |= pass_delete_insts(&mut cur, &mut reproduces, &mut stats);
        changed |= pass_simplify_insts(&mut cur, &mut reproduces, &mut stats);
        changed |= pass_shrink_consts(&mut cur, &mut reproduces, &mut stats);
        if !changed {
            break;
        }
    }
    // Sweep the nop tombstones left by the deletion pass. Compaction is
    // semantically neutral, but it is still re-checked like every other
    // step so the invariant "each committed state reproduces" holds.
    let has_nops = cur
        .functions
        .iter()
        .any(|f| f.blocks.iter().any(|b| b.insts.iter().any(|i| matches!(i, Inst::Nop))));
    if has_nops {
        let mut cand = cur.clone();
        for f in &mut cand.functions {
            f.compact();
        }
        attempt(&mut cur, cand, &mut reproduces, &mut stats);
    }
    (cur, stats)
}

/// Offer `cand` to the predicate; commit it over `cur` on acceptance.
fn attempt(
    cur: &mut Module,
    cand: Module,
    reproduces: &mut impl FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    stats.steps_tried += 1;
    if reproduces(&cand) {
        *cur = cand;
        stats.steps_accepted += 1;
        true
    } else {
        false
    }
}

/// Is function `id` the target of any remaining call?
fn is_called(m: &Module, id: usize) -> bool {
    m.functions.iter().any(|f| {
        f.blocks.iter().any(|b| {
            b.insts
                .iter()
                .any(|i| matches!(i, Inst::Call { func, .. } if func.index() == id))
        })
    })
}

fn pass_drop_functions(
    cur: &mut Module,
    reproduces: &mut impl FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut changed = false;
    // Highest index first: dropping leaf callees frees their callers'
    // calls for the deletion pass, and removal only shifts indices we
    // have already visited.
    let mut fi = cur.functions.len();
    while fi > 0 {
        fi -= 1;
        if fi >= cur.functions.len() || is_called(cur, fi) {
            continue;
        }
        let mut cand = cur.clone();
        cand.remove_function(FuncId(fi as u32));
        changed |= attempt(cur, cand, reproduces, stats);
    }
    changed
}

fn pass_linearize_branches(
    cur: &mut Module,
    reproduces: &mut impl FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut changed = false;
    for fi in 0..cur.functions.len() {
        let mut bi = 0;
        while bi < cur.functions[fi].blocks.len() {
            let term = cur.functions[fi].blocks[bi].insts.last().cloned();
            if let Some(Inst::CondBr { then_bb, else_bb, .. }) = term {
                for target in [then_bb, else_bb] {
                    let mut cand = cur.clone();
                    *cand.functions[fi].blocks[bi].insts.last_mut().unwrap() =
                        Inst::Br { target };
                    cand.functions[fi].drop_unreachable_blocks();
                    if attempt(cur, cand, reproduces, stats) {
                        changed = true;
                        break;
                    }
                }
            }
            bi += 1;
        }
    }
    changed
}

/// Find a `bi: ... br ci` edge where `ci` is not the entry and has
/// exactly one predecessor, so `ci`'s body can be spliced into `bi`.
fn merge_candidate(f: &sxe_ir::Function, bi: usize) -> Option<usize> {
    let Some(Inst::Br { target }) = f.blocks[bi].insts.last() else { return None };
    let ci = target.index();
    if ci == 0 || ci == bi {
        return None;
    }
    let mut preds = 0;
    for b in &f.blocks {
        match b.insts.last() {
            Some(Inst::Br { target }) => preds += usize::from(target.index() == ci),
            Some(Inst::CondBr { then_bb, else_bb, .. }) => {
                preds +=
                    usize::from(then_bb.index() == ci) + usize::from(else_bb.index() == ci);
            }
            _ => {}
        }
    }
    (preds == 1).then_some(ci)
}

fn pass_merge_blocks(
    cur: &mut Module,
    reproduces: &mut impl FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut changed = false;
    for fi in 0..cur.functions.len() {
        let mut bi = 0;
        while bi < cur.functions[fi].blocks.len() {
            let Some(ci) = merge_candidate(&cur.functions[fi], bi) else {
                bi += 1;
                continue;
            };
            let mut cand = cur.clone();
            let spliced = cand.functions[fi].blocks[ci].insts.clone();
            let b = &mut cand.functions[fi].blocks[bi];
            b.insts.pop();
            b.insts.extend(spliced);
            cand.functions[fi].drop_unreachable_blocks();
            if attempt(cur, cand, reproduces, stats) {
                // The merged block may now end in another mergeable br —
                // retry the same index (block count shrank, so this
                // terminates).
                changed = true;
            } else {
                bi += 1;
            }
        }
    }
    changed
}

fn pass_delete_insts(
    cur: &mut Module,
    reproduces: &mut impl FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut changed = false;
    for fi in 0..cur.functions.len() {
        for bi in 0..cur.functions[fi].blocks.len() {
            for ii in 0..cur.functions[fi].blocks[bi].insts.len() {
                let inst = &cur.functions[fi].blocks[bi].insts[ii];
                if inst.is_terminator() || matches!(inst, Inst::Nop) {
                    continue;
                }
                let mut cand = cur.clone();
                cand.functions[fi].blocks[bi].insts[ii] = Inst::Nop;
                changed |= attempt(cur, cand, reproduces, stats);
            }
        }
    }
    changed
}

/// A strictly cheaper replacement reusing the instruction's own
/// operands, or `None`. Replacements keep the destination's converter
/// kind (narrow writes stay narrow, wide stays wide, float stays float)
/// so the candidate still passes kind inference. No rule produces an
/// instruction any rule fires on, so the simplify pass cannot loop.
fn simpler(m: &Module, inst: &Inst) -> Option<Inst> {
    match *inst {
        Inst::Bin { ty, dst, lhs, .. } => Some(Inst::Copy { dst, src: lhs, ty }),
        Inst::Un { ty, dst, src, .. } => Some(Inst::Copy { dst, src, ty }),
        // setcc and arraylen destinations are narrow-kind by definition.
        Inst::Setcc { dst, .. } | Inst::ArrayLen { dst, .. } => {
            Some(Inst::Const { dst, value: 0, ty: Ty::I32 })
        }
        Inst::ArrayLoad { dst, elem, .. } => Some(if elem == Ty::F64 {
            Inst::ConstF { dst, value: 0.0 }
        } else {
            Inst::Const { dst, value: 0, ty: elem }
        }),
        Inst::Call { dst: Some(dst), func, .. } => {
            let ret = m.functions.get(func.index()).and_then(|f| f.ret)?;
            Some(match ret {
                Ty::F64 => Inst::ConstF { dst, value: 0.0 },
                ty => Inst::Const { dst, value: 0, ty },
            })
        }
        // Extension destinations are narrow-kind.
        Inst::Extend { dst, src, .. } | Inst::JustExtended { dst, src, .. } => {
            Some(Inst::Copy { dst, src, ty: Ty::I32 })
        }
        _ => None,
    }
}

fn pass_simplify_insts(
    cur: &mut Module,
    reproduces: &mut impl FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut changed = false;
    for fi in 0..cur.functions.len() {
        for bi in 0..cur.functions[fi].blocks.len() {
            for ii in 0..cur.functions[fi].blocks[bi].insts.len() {
                let Some(repl) = simpler(cur, &cur.functions[fi].blocks[bi].insts[ii]) else {
                    continue;
                };
                let mut cand = cur.clone();
                cand.functions[fi].blocks[bi].insts[ii] = repl;
                changed |= attempt(cur, cand, reproduces, stats);
            }
        }
    }
    changed
}

/// Reduction rank of an integer constant; shrinking only ever moves to a
/// strictly lower rank.
fn int_rank(v: i64) -> u32 {
    match v {
        0 => 0,
        1 => 1,
        -1 => 2,
        v if v == i64::from(i32::MIN) => 3,
        _ => 4,
    }
}

fn float_rank(v: f64) -> u32 {
    if v == 0.0 {
        0
    } else if v == 1.0 {
        1
    } else {
        2
    }
}

fn pass_shrink_consts(
    cur: &mut Module,
    reproduces: &mut impl FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    const INT_LADDER: [i64; 4] = [0, 1, -1, i32::MIN as i64];
    const FLOAT_LADDER: [f64; 2] = [0.0, 1.0];
    let mut changed = false;
    for fi in 0..cur.functions.len() {
        for bi in 0..cur.functions[fi].blocks.len() {
            for ii in 0..cur.functions[fi].blocks[bi].insts.len() {
                match cur.functions[fi].blocks[bi].insts[ii] {
                    Inst::Const { value, .. } => {
                        for repl in INT_LADDER.into_iter().filter(|&r| int_rank(r) < int_rank(value))
                        {
                            let mut cand = cur.clone();
                            let Inst::Const { value: v, .. } =
                                &mut cand.functions[fi].blocks[bi].insts[ii]
                            else {
                                unreachable!()
                            };
                            *v = repl;
                            if attempt(cur, cand, reproduces, stats) {
                                changed = true;
                                break;
                            }
                        }
                    }
                    Inst::ConstF { value, .. } => {
                        for repl in
                            FLOAT_LADDER.into_iter().filter(|&r| float_rank(r) < float_rank(value))
                        {
                            let mut cand = cur.clone();
                            let Inst::ConstF { value: v, .. } =
                                &mut cand.functions[fi].blocks[bi].insts[ii]
                            else {
                                unreachable!()
                            };
                            *v = repl;
                            if attempt(cur, cand, reproduces, stats) {
                                changed = true;
                                break;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{parse_module, BinOp, FunctionBuilder};

    /// A module with plenty of fat around one load-bearing `div.i64`:
    /// dead arithmetic, a diamond, a big constant, and an uncalled
    /// second function.
    fn sample() -> Module {
        let mut b = FunctionBuilder::new("f0".to_string(), vec![], Some(Ty::I64));
        let a = b.iconst(Ty::I32, 40);
        let c = b.iconst(Ty::I32, 7);
        let junk = b.bin(BinOp::Add, Ty::I32, a, c);
        let junk2 = b.bin(BinOp::Mul, Ty::I32, junk, c);
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        b.cond_br(sxe_ir::Cond::Gt, Ty::I32, junk2, a, then_bb, else_bb);
        b.switch_to(then_bb);
        b.bin_to(BinOp::Sub, Ty::I32, junk, a, c);
        b.br(join);
        b.switch_to(else_bb);
        b.bin_to(BinOp::Xor, Ty::I32, junk, a, c);
        b.br(join);
        b.switch_to(join);
        let d = b.bin(BinOp::Div, Ty::I64, a, c);
        b.ret(Some(d));
        let mut m = Module::new();
        m.add_function(b.finish());
        let mut b2 = FunctionBuilder::new("f1".to_string(), vec![], None);
        let x = b2.iconst(Ty::I32, 99);
        b2.bin_to(BinOp::Add, Ty::I32, x, x, x);
        b2.ret(None);
        m.add_function(b2.finish());
        m
    }

    fn keeps_div(m: &Module) -> bool {
        m.functions
            .iter()
            .any(|f| f.insts().any(|(_, i)| matches!(i, Inst::Bin { op: BinOp::Div, ty: Ty::I64, .. })))
    }

    #[test]
    fn reduces_to_the_load_bearing_instruction() {
        let m = sample();
        let before = m.inst_count();
        let (reduced, stats) = reduce(&m, keeps_div);
        assert!(keeps_div(&reduced), "result still satisfies the predicate");
        assert!(stats.steps_accepted > 0);
        // Everything except the div, its ret, and (at most) operand defs
        // is gone — in particular the uncalled f1, the diamond, and the
        // dead arithmetic.
        assert_eq!(reduced.functions.len(), 1);
        assert_eq!(reduced.functions[0].blocks.len(), 1, "diamond linearized:\n{reduced}");
        assert!(
            reduced.inst_count() <= 3,
            "{before} insts reduced to {}:\n{reduced}",
            reduced.inst_count()
        );
        // No tombstones survive in the final result.
        let text = reduced.to_string();
        assert!(!text.contains("nop"), "compacted:\n{text}");
    }

    #[test]
    fn reduction_is_idempotent() {
        let (once, _) = reduce(&sample(), keeps_div);
        let (twice, stats) = reduce(&once, keeps_div);
        assert_eq!(stats.steps_accepted, 0, "second pass accepts nothing:\n{twice}");
        assert_eq!(once.to_string(), twice.to_string());
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let m = sample();
        let (out, stats) = reduce(&m, |c| c.functions.len() > 99);
        assert_eq!(out, m);
        assert_eq!(stats, ReduceStats { steps_tried: 0, steps_accepted: 0, rounds: 0 });
    }

    #[test]
    fn every_committed_state_satisfies_the_predicate() {
        // Wrap the predicate to log every answer; replaying the accepted
        // prefix must show each commit point reproducing.
        let mut answers = Vec::new();
        let (reduced, stats) = reduce(&sample(), |c| {
            let ok = keeps_div(c);
            answers.push((ok, c.to_string()));
            ok
        });
        // First call is the entry guard on the original module.
        assert!(answers[0].0);
        assert_eq!(answers.len(), stats.steps_tried + 1);
        // The final module's text must be one the predicate approved.
        let final_text = reduced.to_string();
        assert!(
            answers.iter().any(|(ok, text)| *ok && *text == final_text),
            "final state was committed via an approving predicate call"
        );
        // Round-trip sanity on the reduced artifact.
        let reparsed = parse_module(&final_text).expect("reduced module re-parses");
        assert_eq!(reparsed.to_string(), final_text);
    }
}
