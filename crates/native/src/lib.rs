//! # sxe-native
//!
//! A dependency-free x86-64 template JIT for post-elimination sxe IR.
//!
//! The interpreters in `sxe-vm` *model* the paper's machine — every
//! eliminated `Extend` saves a simulated cycle. This crate closes the
//! loop on real hardware: it compiles IR functions into an executable
//! buffer (raw `mmap`/`mprotect`, no crates) where an eliminated sign
//! extension is **zero bytes of machine code** and a surviving one is a
//! real `movsxd`/`movsx`, so the paper's headline can be measured in
//! wall-clock time rather than simulated cycles.
//!
//! The crate deliberately knows nothing about the VM: the embedder
//! injects runtime [`Helpers`] (heap access, saturating float
//! conversions) and [`Accounting`] callbacks (cost model, mnemonic
//! indexing), and receives traps through [`NativeCtx`] plus the
//! [`TrapSite`] table. See [`compile`] for the contract and the module
//! docs in `compile` for the code-generation and accounting scheme.
//!
//! Supported hosts: x86-64 unix. Elsewhere [`compile`] returns `Err`
//! and embedders are expected to fall back to interpretation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod buf;
mod compile;
mod ctx;

pub use buf::CodeBuf;
pub use compile::{compile, CompileOpts, Hist, NativeModule, TrapSite};
pub use ctx::{
    code_elem, code_trap, elem_code, trap_code, Accounting, Helpers, NativeCtx, TRAP_NONE,
};

#[cfg(all(target_arch = "x86_64", unix, test))]
mod tests {
    use super::*;
    use sxe_ir::{
        BinOp, BlockId, Cond, FuncId, FunctionBuilder, Inst, InstId, Module, TrapKind, Ty, UnOp,
        Width,
    };

    // Minimal test runtime: heap helpers always trap WildAddress (the
    // tests here exercise integer/float code; the VM integration tests
    // cover real heap traffic), float conversions mirror eval.rs.
    extern "C" fn t_aload(ctx: *mut NativeCtx, _a: i64, _i: i64) -> i64 {
        unsafe { (*ctx).trap_kind = trap_code(TrapKind::WildAddress) };
        0
    }
    extern "C" fn t_astore(ctx: *mut NativeCtx, _a: i64, _i: i64, _v: i64) {
        unsafe { (*ctx).trap_kind = trap_code(TrapKind::WildAddress) };
    }
    extern "C" fn t_newarray(ctx: *mut NativeCtx, _len: i64, _elem: u32) -> i64 {
        unsafe { (*ctx).trap_kind = trap_code(TrapKind::ResourceExhausted) };
        0
    }
    extern "C" fn t_arraylen(ctx: *mut NativeCtx, _a: i64) -> i64 {
        unsafe { (*ctx).trap_kind = trap_code(TrapKind::WildAddress) };
        0
    }
    extern "C" fn t_d2i(x: f64) -> i64 {
        if x.is_nan() {
            0
        } else if x >= i32::MAX as f64 {
            i64::from(i32::MAX)
        } else if x <= i32::MIN as f64 {
            i64::from(i32::MIN)
        } else {
            i64::from(x as i32)
        }
    }
    extern "C" fn t_d2l(x: f64) -> i64 {
        if x.is_nan() {
            0
        } else {
            x as i64
        }
    }
    extern "C" fn t_frem(a: f64, b: f64) -> f64 {
        a % b
    }

    fn helpers() -> Helpers {
        Helpers {
            aload: t_aload,
            astore: t_astore,
            newarray: t_newarray,
            arraylen: t_arraylen,
            d2i: t_d2i,
            d2l: t_d2l,
            frem: t_frem,
        }
    }

    fn accounting() -> Accounting {
        fn one(_: &Inst) -> u64 {
            1
        }
        fn slot0(_: &Inst) -> usize {
            0
        }
        Accounting { cost_of: one, op_slot: slot0 }
    }

    fn ctx(fuel: u64) -> NativeCtx {
        NativeCtx {
            trap_kind: TRAP_NONE,
            trap_site: 0,
            fuel,
            depth: 0,
            user: core::ptr::null_mut(),
            target: 0,
            _pad: 0,
        }
    }

    fn jit(module: &Module) -> NativeModule {
        compile(module, helpers(), accounting(), &CompileOpts::default()).expect("compile")
    }

    fn run1(f: impl FnOnce(&mut FunctionBuilder), params: Vec<Ty>, args: &[i64]) -> (i64, NativeCtx) {
        let mut b = FunctionBuilder::new("t", params, Some(Ty::I64));
        f(&mut b);
        let mut m = Module::new();
        m.add_function(b.finish());
        let nm = jit(&m);
        assert!(nm.is_native(0), "{:?}", nm.refusal(0));
        let mut c = ctx(1 << 30);
        let r = nm.run(0, args, &mut c);
        (r, c)
    }

    #[test]
    fn returns_a_constant() {
        let (r, c) = run1(
            |b| {
                let k = b.iconst(Ty::I64, 42);
                b.ret(Some(k));
            },
            vec![],
            &[],
        );
        assert_eq!(r, 42);
        assert_eq!(c.trap_kind, TRAP_NONE);
        assert_eq!(c.fuel, (1 << 30) - 2);
        assert_eq!(c.depth, 0);
    }

    #[test]
    fn adds_params_with_64_bit_wrap() {
        let (r, _) = run1(
            |b| {
                let (x, y) = (b.param(0), b.param(1));
                let s = b.bin(BinOp::Add, Ty::I64, x, y);
                b.ret(Some(s));
            },
            vec![Ty::I64, Ty::I64],
            &[i64::MAX, 1],
        );
        assert_eq!(r, i64::MIN);
    }

    #[test]
    fn large_and_small_immediates() {
        let (r, _) = run1(
            |b| {
                let big = b.iconst(Ty::I64, 0x1234_5678_9ABC_DEF0);
                let small = b.iconst(Ty::I64, -7);
                let s = b.bin(BinOp::Add, Ty::I64, big, small);
                b.ret(Some(s));
            },
            vec![],
            &[],
        );
        assert_eq!(r, 0x1234_5678_9ABC_DEF0_i64.wrapping_add(-7));
    }

    #[test]
    fn narrow_compare_ignores_upper_garbage() {
        // lhs holds 0xFFFF_FFFF_0000_0005: as an unextended 32-bit value
        // it is 5, so a 32-bit signed compare with 6 must say "less".
        let (r, _) = run1(
            |b| {
                let x = b.iconst(Ty::I64, 0xFFFF_FFFF_0000_0005_u64 as i64);
                let six = b.iconst(Ty::I32, 6);
                let lt = b.setcc(Cond::Lt, Ty::I32, x, six);
                b.ret(Some(lt));
            },
            vec![],
            &[],
        );
        assert_eq!(r, 1);
    }

    #[test]
    fn shifts_match_interpreter_semantics() {
        for (op, ty, a0, b0) in [
            (BinOp::Shl, Ty::I32, 3i64, 33i64),     // count masked to 1
            (BinOp::Shr, Ty::I32, -16i64, 2i64),    // arithmetic, full 64-bit value
            (BinOp::Shru, Ty::I32, -1i64, 4i64),    // low 32 bits, logical
            (BinOp::Shl, Ty::I64, 1i64, 63i64),
            (BinOp::Shru, Ty::I64, -1i64, 1i64),
        ] {
            let (r, _) = run1(
                |b| {
                    let (x, y) = (b.param(0), b.param(1));
                    let v = b.bin(op, ty, x, y);
                    b.ret(Some(v));
                },
                vec![Ty::I64, Ty::I64],
                &[a0, b0],
            );
            let want = sxe_ir::eval::int_bin(op, a0, b0, ty).unwrap();
            assert_eq!(r, want, "{op:?} {ty:?} {a0} {b0}");
        }
    }

    #[test]
    fn division_guards() {
        let div = |a0: i64, b0: i64, op: BinOp| {
            run1(
                |b| {
                    let (x, y) = (b.param(0), b.param(1));
                    let v = b.bin(op, Ty::I64, x, y);
                    b.ret(Some(v));
                },
                vec![Ty::I64, Ty::I64],
                &[a0, b0],
            )
        };
        assert_eq!(div(7, 2, BinOp::Div).0, 3);
        assert_eq!(div(-7, 2, BinOp::Rem).0, -1);
        // The x86 idiv would fault on both of these.
        assert_eq!(div(i64::MIN, -1, BinOp::Div).0, i64::MIN);
        assert_eq!(div(i64::MIN, -1, BinOp::Rem).0, 0);
        let (_, c) = div(1, 0, BinOp::Div);
        assert_eq!(code_trap(c.trap_kind), Some(TrapKind::DivisionByZero));
    }

    #[test]
    fn trap_site_reports_exact_instruction_and_suffix() {
        let mut b = FunctionBuilder::new("t", vec![Ty::I64, Ty::I64], Some(Ty::I64));
        let (x, y) = (b.param(0), b.param(1));
        let q = b.bin(BinOp::Div, Ty::I64, x, y); // inst 0 of block 0
        let k = b.iconst(Ty::I64, 1); // suffix: 2 insts after the div
        let s = b.bin(BinOp::Add, Ty::I64, q, k);
        b.ret(Some(s));
        let mut m = Module::new();
        m.add_function(b.finish());
        let nm = jit(&m);
        let mut c = ctx(1000);
        nm.run(0, &[1, 0], &mut c);
        assert_eq!(code_trap(c.trap_kind), Some(TrapKind::DivisionByZero));
        let site = nm.site(c.trap_site);
        assert_eq!(site.func, 0);
        assert_eq!(site.at, InstId::new(BlockId(0), 0));
        assert_eq!(site.suffix.insts, 3); // const + add + ret not executed
        // Segment-level accounting charged all 4; exact count after the
        // suffix correction is 1 (the div itself).
        let mut t = nm.tally();
        t.subtract(&site.suffix);
        assert_eq!(t.insts, 1);
        assert_eq!(c.fuel + site.suffix.insts, 1000 - 1);
    }

    #[test]
    fn loop_counts_and_block_profile() {
        // sum = 0; for i in 0..10 { sum += i }  — classic count-down form.
        let n = 10i64;
        let mut b = FunctionBuilder::new("t", vec![Ty::I64], Some(Ty::I64));
        let limit = b.param(0);
        let sum = b.iconst(Ty::I64, 0);
        let i = b.iconst(Ty::I64, 0);
        let one = b.iconst(Ty::I64, 1);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        b.cond_br(Cond::Lt, Ty::I64, i, limit, body, exit);
        b.switch_to(body);
        b.bin_to(BinOp::Add, Ty::I64, sum, sum, i);
        b.bin_to(BinOp::Add, Ty::I64, i, i, one);
        b.br(head);
        b.switch_to(exit);
        b.ret(Some(sum));
        let mut m = Module::new();
        m.add_function(b.finish());
        let nm = jit(&m);
        let mut c = ctx(1 << 20);
        let r = nm.run(0, &[n], &mut c);
        assert_eq!(r, (0..n).sum::<i64>());
        let profile = nm.block_counts(0).unwrap();
        assert_eq!(profile, vec![1, n as u64 + 1, n as u64, 1]);
        // entry(4) + heads(11 × 1) + bodies(10 × 3) + exit(1)
        let expect_insts = 4 + (n as u64 + 1) + n as u64 * 3 + 1;
        assert_eq!(nm.tally().insts, expect_insts);
        assert_eq!(c.fuel, (1 << 20) - expect_insts);
    }

    #[test]
    fn calls_pass_arguments_and_propagate_traps() {
        let mut m = Module::new();
        let mut cal = FunctionBuilder::new("div", vec![Ty::I64, Ty::I64], Some(Ty::I64));
        let (x, y) = (cal.param(0), cal.param(1));
        let q = cal.bin(BinOp::Div, Ty::I64, x, y);
        cal.ret(Some(q));
        let callee = m.add_function(cal.finish());
        let mut b = FunctionBuilder::new("main", vec![Ty::I64, Ty::I64], Some(Ty::I64));
        let (x, y) = (b.param(0), b.param(1));
        let r = b.call(callee, vec![x, y], true).unwrap();
        let one = b.iconst(Ty::I64, 1);
        let s = b.bin(BinOp::Add, Ty::I64, r, one);
        b.ret(Some(s));
        m.add_function(b.finish());
        let nm = jit(&m);
        let mut c = ctx(1 << 20);
        assert_eq!(nm.run(1, &[84, 2], &mut c), 43);
        assert_eq!(c.depth, 0);
        // Trap inside the callee: reported at the callee's div.
        let mut c = ctx(1 << 20);
        nm.run(1, &[84, 0], &mut c);
        assert_eq!(code_trap(c.trap_kind), Some(TrapKind::DivisionByZero));
        let site = nm.site(c.trap_site);
        assert_eq!(site.func, 0);
        assert_eq!(site.at, InstId::new(BlockId(0), 0));
    }

    #[test]
    fn call_depth_limit_traps_like_the_vm() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("rec", vec![], Some(Ty::I64));
        let r = b.call(FuncId(0), vec![], true).unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());
        let nm = jit(&m);
        let mut c = ctx(1 << 30);
        nm.run(0, &[], &mut c);
        assert_eq!(code_trap(c.trap_kind), Some(TrapKind::ResourceExhausted));
        let site = nm.site(c.trap_site);
        assert_eq!(site.func, 0);
        assert_eq!(site.at, InstId::new(BlockId(0), 0));
        assert_eq!(site.suffix.insts, 0);
        assert_eq!(c.depth, 0); // fully unwound
    }

    #[test]
    fn fuel_exhaustion_pins_fuel_to_zero() {
        let mut b = FunctionBuilder::new("spin", vec![], Some(Ty::I64));
        let head = b.new_block();
        b.br(head);
        b.switch_to(head);
        b.br(head);
        let mut m = Module::new();
        m.add_function(b.finish());
        let nm = jit(&m);
        let mut c = ctx(100);
        nm.run(0, &[], &mut c);
        assert_eq!(code_trap(c.trap_kind), Some(TrapKind::ResourceExhausted));
        assert_eq!(c.fuel, 0);
    }

    #[test]
    fn eliminated_extends_cost_zero_bytes() {
        let build = |m: &mut Module, eliminated: bool| -> FuncId {
            let mut b = FunctionBuilder::new(
                if eliminated { "after" } else { "before" },
                vec![Ty::I32],
                Some(Ty::I32),
            );
            let x = b.param(0);
            let one = b.iconst(Ty::I32, 1);
            b.bin_to(BinOp::Add, Ty::I32, x, x, one);
            if eliminated {
                b.raw(Inst::JustExtended { dst: x, src: x, from: Width::W32 });
            } else {
                b.raw(Inst::Extend { dst: x, src: x, from: Width::W32 });
            }
            b.ret(Some(x));
            m.add_function(b.finish())
        };
        let mut m = Module::new();
        build(&mut m, false);
        build(&mut m, true);
        let nm = jit(&m);
        assert!(nm.extend_bytes(0) > 0, "real Extend must cost bytes");
        assert_eq!(nm.extend_bytes(1), 0, "JustExtended must be free");
        assert!(nm.code_bytes(1) < nm.code_bytes(0));
        // Same result on a value needing no extension.
        let mut c = ctx(1000);
        let a = nm.run(0, &[5], &mut c);
        let mut c = ctx(1000);
        let b2 = nm.run(1, &[5], &mut c);
        assert_eq!(a, b2);
        assert_eq!(a, 6);
    }

    #[test]
    fn float_pipeline_matches_ieee() {
        let (r, _) = run1(
            |b| {
                let two = b.fconst(2.0);
                let half = b.fconst(0.5);
                let x = b.bin(BinOp::Add, Ty::F64, two, half); // 2.5
                let y = b.bin(BinOp::Mul, Ty::F64, x, x); // 6.25
                let s = b.un(UnOp::FSqrt, Ty::F64, y); // 2.5
                let n = b.un(UnOp::FNeg, Ty::F64, s); // -2.5
                let a = b.un(UnOp::FAbs, Ty::F64, n); // 2.5
                let i = b.un(UnOp::F64ToI64, Ty::F64, a); // 2
                b.ret(Some(i));
            },
            vec![],
            &[],
        );
        assert_eq!(r, 2);
    }

    #[test]
    fn float_compares_handle_nan() {
        let check = |cond: Cond, bits_a: i64, bits_b: i64, want: i64| {
            let (r, _) = run1(
                |b| {
                    let (x, y) = (b.param(0), b.param(1));
                    let v = b.setcc(cond, Ty::F64, x, y);
                    b.ret(Some(v));
                },
                vec![Ty::F64, Ty::F64],
                &[bits_a, bits_b],
            );
            assert_eq!(r, want, "{cond:?}");
        };
        let one = 1.0f64.to_bits() as i64;
        let two = 2.0f64.to_bits() as i64;
        let nan = f64::NAN.to_bits() as i64;
        check(Cond::Lt, one, two, 1);
        check(Cond::Ge, one, two, 0);
        check(Cond::Eq, one, one, 1);
        check(Cond::Eq, nan, nan, 0);
        check(Cond::Ne, nan, nan, 1);
        check(Cond::Lt, nan, two, 0);
        check(Cond::Gt, nan, two, 0);
    }

    #[test]
    fn int_to_float_reads_full_register() {
        // An I32ToF64 on an unextended register converts the garbage —
        // the paper's Figure 2 semantics, which elimination must respect.
        let dirty = 0x1_0000_0001_i64; // "int" 1 with garbage bit 32
        let (r, _) = run1(
            |b| {
                let x = b.param(0);
                let f = b.un(UnOp::I32ToF64, Ty::I32, x);
                let i = b.un(UnOp::F64ToI64, Ty::F64, f);
                b.ret(Some(i));
            },
            vec![Ty::I64],
            &[dirty],
        );
        assert_eq!(r, dirty); // converted as the full 64-bit value
    }

    #[test]
    fn oversized_functions_fall_back_with_reasons() {
        let mut m = Module::new();
        let mut big = FunctionBuilder::new("big", vec![], Some(Ty::I64));
        let mut last = big.iconst(Ty::I64, 0);
        for _ in 0..300 {
            last = big.copy(Ty::I64, last);
        }
        big.ret(Some(last));
        let big_id = m.add_function(big.finish());
        let mut caller = FunctionBuilder::new("caller", vec![], Some(Ty::I64));
        let r = caller.call(big_id, vec![], true).unwrap();
        caller.ret(Some(r));
        m.add_function(caller.finish());
        let mut fine = FunctionBuilder::new("fine", vec![], Some(Ty::I64));
        let k = fine.iconst(Ty::I64, 9);
        fine.ret(Some(k));
        m.add_function(fine.finish());
        let nm = jit(&m);
        assert!(!nm.is_native(0));
        assert!(nm.refusal(0).unwrap().contains("virtual registers"));
        assert!(!nm.is_native(1), "unsupportedness must propagate to callers");
        assert!(nm.refusal(1).unwrap().contains("@big"));
        assert!(nm.is_native(2), "independent functions stay native");
        let mut c = ctx(1000);
        assert_eq!(nm.run(2, &[], &mut c), 9);
    }

    #[test]
    fn heap_helper_traps_surface_with_sites() {
        let mut b = FunctionBuilder::new("t", vec![Ty::I64], Some(Ty::I64));
        let x = b.param(0);
        let v = b.array_load(Ty::I32, x, x); // helper always traps here
        b.ret(Some(v));
        let mut m = Module::new();
        m.add_function(b.finish());
        let nm = jit(&m);
        let mut c = ctx(1000);
        nm.run(0, &[3], &mut c);
        assert_eq!(code_trap(c.trap_kind), Some(TrapKind::WildAddress));
        let site = nm.site(c.trap_site);
        assert_eq!(site.at, InstId::new(BlockId(0), 0));
        assert_eq!(site.suffix.insts, 1); // the unexecuted ret
    }

    #[test]
    fn reset_counts_clears_the_tally() {
        let mut b = FunctionBuilder::new("t", vec![], Some(Ty::I64));
        let k = b.iconst(Ty::I64, 1);
        b.ret(Some(k));
        let mut m = Module::new();
        m.add_function(b.finish());
        let nm = jit(&m);
        let mut c = ctx(1000);
        nm.run(0, &[], &mut c);
        assert!(nm.tally().insts > 0);
        nm.reset_counts();
        assert_eq!(nm.tally(), Hist::default());
    }
}
