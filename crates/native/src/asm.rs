//! A minimal x86-64 instruction encoder.
//!
//! Only the handful of encodings the template code generator needs are
//! implemented, with a tiny label/fixup pass for `rel32` branch and call
//! targets. Registers are addressed through the [`Gpr`] enum; memory
//! operands are always `[base + disp32]` (the generator keeps every
//! virtual register in a stack slot, so no scaled-index forms are
//! needed). SSE2 scalar-double forms cover the IR's `f64` operations.

/// General-purpose register numbers (hardware encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Gpr {
    /// rax — primary scratch / return value.
    Rax = 0,
    /// rcx — secondary scratch / shift count.
    Rcx = 1,
    /// rdx — tertiary scratch / division remainder.
    Rdx = 2,
    /// rsp — stack pointer.
    Rsp = 4,
    /// rbp — frame pointer; virtual registers live at `[rbp - k]`.
    Rbp = 5,
    /// rsi — second SysV argument (incoming argument array).
    Rsi = 6,
    /// rdi — first SysV argument (context pointer at entry).
    Rdi = 7,
    /// r10 — caller-saved scratch for helper-call targets.
    R10 = 10,
    /// r12 — callee-saved; pinned to the [`NativeCtx`](crate::NativeCtx)
    /// pointer for the whole activation.
    R12 = 12,
}

impl Gpr {
    fn lo3(self) -> u8 {
        self as u8 & 7
    }
    fn hi(self) -> bool {
        self as u8 >= 8
    }
}

/// Condition-code nibbles for `setcc` / `jcc`.
pub mod cc {
    /// Equal / zero.
    pub const E: u8 = 0x4;
    /// Not equal.
    pub const NE: u8 = 0x5;
    /// Signed less than.
    pub const L: u8 = 0xC;
    /// Signed less or equal.
    pub const LE: u8 = 0xE;
    /// Signed greater than.
    pub const G: u8 = 0xF;
    /// Signed greater or equal.
    pub const GE: u8 = 0xD;
    /// Unsigned below (carry set).
    pub const B: u8 = 0x2;
    /// Unsigned below or equal.
    pub const BE: u8 = 0x6;
    /// Unsigned above.
    pub const A: u8 = 0x7;
    /// Unsigned above or equal (carry clear).
    pub const AE: u8 = 0x3;
    /// Parity set (unordered float compare).
    pub const P: u8 = 0xA;
    /// Parity clear (ordered float compare).
    pub const NP: u8 = 0xB;
}

/// Group-1 ALU operations (`reg, r/m` and `r/m, imm` forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alu {
    /// Addition.
    Add,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// Subtraction.
    Sub,
    /// Bitwise xor.
    Xor,
    /// Compare (subtract, discard result, keep flags).
    Cmp,
}

impl Alu {
    /// Opcode of the `op reg, r/m` form.
    fn rm_opcode(self) -> u8 {
        match self {
            Alu::Add => 0x03,
            Alu::Or => 0x0B,
            Alu::And => 0x23,
            Alu::Sub => 0x2B,
            Alu::Xor => 0x33,
            Alu::Cmp => 0x3B,
        }
    }
    /// ModRM extension of the `op r/m, imm` form (opcode 0x81/0x83).
    fn ext(self) -> u8 {
        match self {
            Alu::Add => 0,
            Alu::Or => 1,
            Alu::And => 4,
            Alu::Sub => 5,
            Alu::Xor => 6,
            Alu::Cmp => 7,
        }
    }
}

/// A forward-referencable code position.
#[derive(Debug, Clone, Copy)]
pub struct Label(usize);

/// The instruction buffer plus label bookkeeping.
#[derive(Debug, Default)]
pub struct Asm {
    buf: Vec<u8>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    /// Fresh empty assembler.
    #[must_use]
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current offset into the buffer.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.buf.len()
    }

    /// Allocate an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `l` to the current position.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.buf.len());
    }

    /// Offset a bound label resolves to.
    #[must_use]
    pub fn offset_of(&self, l: Label) -> usize {
        self.labels[l.0].expect("label never bound")
    }

    /// Patch every `rel32` fixup and return the finished machine code.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        for (at, label) in &self.fixups {
            let target = self.labels[*label].expect("branch to unbound label");
            let rel = i32::try_from(target as i64 - (*at as i64 + 4)).expect("rel32 overflow");
            self.buf[*at..*at + 4].copy_from_slice(&rel.to_le_bytes());
        }
        self.buf
    }

    fn b(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn imm32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn imm64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn rel32(&mut self, l: Label) {
        self.fixups.push((self.buf.len(), l.0));
        self.imm32(0);
    }

    /// Emit a REX prefix if any bit is needed; always emitted when `w`.
    fn rex(&mut self, w: bool, reg: bool, base: bool) {
        let r = 0x40 | u8::from(w) << 3 | u8::from(reg) << 2 | u8::from(base);
        if r != 0x40 {
            self.b(r);
        }
    }

    fn modrm_reg(&mut self, reg: u8, rm: u8) {
        self.b(0xC0 | reg << 3 | rm);
    }

    /// ModRM (+SIB) for `[base + disp]`. Handles the rsp/r12 SIB case and
    /// the rbp/r13 no-disp0 case.
    fn mem(&mut self, reg: u8, base: Gpr, disp: i32) {
        let b = base.lo3();
        let mode: u8 = if disp == 0 && b != 5 {
            0
        } else if (-128..=127).contains(&disp) {
            1
        } else {
            2
        };
        self.b(mode << 6 | reg << 3 | b);
        if b == 4 {
            self.b(0x24); // SIB: no index, base = rsp/r12
        }
        match mode {
            1 => self.b(disp as i8 as u8),
            2 => self.imm32(disp),
            _ => {}
        }
    }

    /// `mov dst, [base+disp]` (64-bit when `w`, else 32-bit, zero-extending).
    pub fn mov_load(&mut self, w: bool, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(w, dst.hi(), base.hi());
        self.b(0x8B);
        self.mem(dst.lo3(), base, disp);
    }

    /// `mov [base+disp], src`.
    pub fn mov_store(&mut self, w: bool, base: Gpr, disp: i32, src: Gpr) {
        self.rex(w, src.hi(), base.hi());
        self.b(0x89);
        self.mem(src.lo3(), base, disp);
    }

    /// `mov dst, src` (64-bit).
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex(true, src.hi(), dst.hi());
        self.b(0x89);
        self.modrm_reg(src.lo3(), dst.lo3());
    }

    /// Materialize a 64-bit immediate into `dst` (short form when it fits
    /// in a sign-extended imm32).
    pub fn mov_ri(&mut self, dst: Gpr, imm: i64) {
        if i64::from(imm as i32) == imm {
            self.rex(true, false, dst.hi());
            self.b(0xC7);
            self.modrm_reg(0, dst.lo3());
            self.imm32(imm as i32);
        } else {
            self.rex(true, false, dst.hi());
            self.b(0xB8 + dst.lo3());
            self.imm64(imm);
        }
    }

    /// `mov dst32, imm32` (zero-extends into the full register).
    pub fn mov_r32i(&mut self, dst: Gpr, imm: u32) {
        self.rex(false, false, dst.hi());
        self.b(0xB8 + dst.lo3());
        self.imm32(imm as i32);
    }

    /// `mov dword/qword [base+disp], imm32` (sign-extended when `w`).
    pub fn mov_mem_i32(&mut self, w: bool, base: Gpr, disp: i32, imm: i32) {
        self.rex(w, false, base.hi());
        self.b(0xC7);
        self.mem(0, base, disp);
        self.imm32(imm);
    }

    /// `op dst, [base+disp]`.
    pub fn alu_rm(&mut self, op: Alu, w: bool, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(w, dst.hi(), base.hi());
        self.b(op.rm_opcode());
        self.mem(dst.lo3(), base, disp);
    }

    /// `op dst, src` (64-bit, register form).
    pub fn alu_rr(&mut self, op: Alu, dst: Gpr, src: Gpr) {
        self.rex(true, dst.hi(), src.hi());
        self.b(op.rm_opcode());
        self.modrm_reg(dst.lo3(), src.lo3());
    }

    /// `op rm, imm` (imm8 short form when possible).
    pub fn alu_ri(&mut self, op: Alu, w: bool, rm: Gpr, imm: i32) {
        self.rex(w, false, rm.hi());
        if i32::from(imm as i8) == imm {
            self.b(0x83);
            self.modrm_reg(op.ext(), rm.lo3());
            self.b(imm as i8 as u8);
        } else {
            self.b(0x81);
            self.modrm_reg(op.ext(), rm.lo3());
            self.imm32(imm);
        }
    }

    /// `op qword/dword [base+disp], imm`.
    pub fn alu_mi(&mut self, op: Alu, w: bool, base: Gpr, disp: i32, imm: i32) {
        self.rex(w, false, base.hi());
        if i32::from(imm as i8) == imm {
            self.b(0x83);
            self.mem(op.ext(), base, disp);
            self.b(imm as i8 as u8);
        } else {
            self.b(0x81);
            self.mem(op.ext(), base, disp);
            self.imm32(imm);
        }
    }

    /// `imul dst, [base+disp]` (64-bit).
    pub fn imul_rm(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(true, dst.hi(), base.hi());
        self.b(0x0F);
        self.b(0xAF);
        self.mem(dst.lo3(), base, disp);
    }

    /// Shift `rm` by `cl`: ext 4 = shl, 7 = sar, 5 = shr.
    pub fn shift_cl(&mut self, w: bool, ext: u8, rm: Gpr) {
        self.rex(w, false, rm.hi());
        self.b(0xD3);
        self.modrm_reg(ext, rm.lo3());
    }

    /// `movsxd dst, dword [base+disp]`.
    pub fn movsxd_rm(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(true, dst.hi(), base.hi());
        self.b(0x63);
        self.mem(dst.lo3(), base, disp);
    }

    /// `movsx dst, byte/word [base+disp]` (64-bit destination).
    pub fn movsx_rm(&mut self, bits: u8, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(true, dst.hi(), base.hi());
        self.b(0x0F);
        self.b(if bits == 8 { 0xBE } else { 0xBF });
        self.mem(dst.lo3(), base, disp);
    }

    /// `movzx dst32, byte/word [base+disp]` (upper half auto-zeroed).
    pub fn movzx_rm(&mut self, bits: u8, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(false, dst.hi(), base.hi());
        self.b(0x0F);
        self.b(if bits == 8 { 0xB6 } else { 0xB7 });
        self.mem(dst.lo3(), base, disp);
    }

    /// `movzx dst32, src8` (low byte of `src`; rax..rdx only).
    pub fn movzx8_rr(&mut self, dst: Gpr, src: Gpr) {
        debug_assert!((src as u8) < 4 && (dst as u8) < 8);
        self.b(0x0F);
        self.b(0xB6);
        self.modrm_reg(dst.lo3(), src.lo3());
    }

    /// Group-3 unary on a 64-bit register: ext 2 = not, 3 = neg, 7 = idiv.
    pub fn unary_r(&mut self, ext: u8, rm: Gpr) {
        self.rex(true, false, rm.hi());
        self.b(0xF7);
        self.modrm_reg(ext, rm.lo3());
    }

    /// `cqo` — sign-extend rax into rdx:rax.
    pub fn cqo(&mut self) {
        self.b(0x48);
        self.b(0x99);
    }

    /// `test a, b` (64-bit).
    pub fn test_rr(&mut self, a: Gpr, b: Gpr) {
        self.rex(true, b.hi(), a.hi());
        self.b(0x85);
        self.modrm_reg(b.lo3(), a.lo3());
    }

    /// `test a8, b8` (low bytes; rax..rdx only).
    pub fn test8_rr(&mut self, a: Gpr, b: Gpr) {
        debug_assert!((a as u8) < 4 && (b as u8) < 4);
        self.b(0x84);
        self.modrm_reg(b.lo3(), a.lo3());
    }

    /// `setcc rm8` (rax..rdx only, so no REX is needed).
    pub fn setcc(&mut self, cond: u8, rm: Gpr) {
        debug_assert!((rm as u8) < 4);
        self.b(0x0F);
        self.b(0x90 + cond);
        self.modrm_reg(0, rm.lo3());
    }

    /// `and dst8, src8` (rax..rdx only).
    pub fn and8_rr(&mut self, dst: Gpr, src: Gpr) {
        debug_assert!((dst as u8) < 4 && (src as u8) < 4);
        self.b(0x20);
        self.modrm_reg(src.lo3(), dst.lo3());
    }

    /// `or dst8, src8` (rax..rdx only).
    pub fn or8_rr(&mut self, dst: Gpr, src: Gpr) {
        debug_assert!((dst as u8) < 4 && (src as u8) < 4);
        self.b(0x08);
        self.modrm_reg(src.lo3(), dst.lo3());
    }

    /// `jcc rel32`.
    pub fn jcc(&mut self, cond: u8, l: Label) {
        self.b(0x0F);
        self.b(0x80 + cond);
        self.rel32(l);
    }

    /// `jmp rel32`.
    pub fn jmp(&mut self, l: Label) {
        self.b(0xE9);
        self.rel32(l);
    }

    /// `call rel32`.
    pub fn call_label(&mut self, l: Label) {
        self.b(0xE8);
        self.rel32(l);
    }

    /// `call r`.
    pub fn call_reg(&mut self, r: Gpr) {
        self.rex(false, false, r.hi());
        self.b(0xFF);
        self.modrm_reg(2, r.lo3());
    }

    /// `push r`.
    pub fn push(&mut self, r: Gpr) {
        self.rex(false, false, r.hi());
        self.b(0x50 + r.lo3());
    }

    /// `pop r`.
    pub fn pop(&mut self, r: Gpr) {
        self.rex(false, false, r.hi());
        self.b(0x58 + r.lo3());
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.b(0xC3);
    }

    /// `lea dst, [base+disp]` (64-bit).
    pub fn lea(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(true, dst.hi(), base.hi());
        self.b(0x8D);
        self.mem(dst.lo3(), base, disp);
    }

    /// `inc qword [base+disp]`.
    pub fn inc_mem64(&mut self, base: Gpr, disp: i32) {
        self.rex(true, false, base.hi());
        self.b(0xFF);
        self.mem(0, base, disp);
    }

    /// `dec qword [base+disp]`.
    pub fn dec_mem64(&mut self, base: Gpr, disp: i32) {
        self.rex(true, false, base.hi());
        self.b(0xFF);
        self.mem(1, base, disp);
    }

    /// `btc rm, bit` — complement one bit of a 64-bit register.
    pub fn btc_ri(&mut self, rm: Gpr, bit: u8) {
        self.rex(true, false, rm.hi());
        self.b(0x0F);
        self.b(0xBA);
        self.modrm_reg(7, rm.lo3());
        self.b(bit);
    }

    /// `rep stosq` — zero `rcx` quadwords at `[rdi]` (rax must be 0).
    pub fn rep_stosq(&mut self) {
        self.b(0xF3);
        self.b(0x48);
        self.b(0xAB);
    }

    /// `xor dst32, dst32` — the canonical zero idiom.
    pub fn zero(&mut self, dst: Gpr) {
        self.rex(false, dst.hi(), dst.hi());
        self.b(0x31);
        self.modrm_reg(dst.lo3(), dst.lo3());
    }

    /// `movsd xmm, qword [base+disp]`.
    pub fn movsd_load(&mut self, x: u8, base: Gpr, disp: i32) {
        self.b(0xF2);
        self.rex(false, x >= 8, base.hi());
        self.b(0x0F);
        self.b(0x10);
        self.mem(x & 7, base, disp);
    }

    /// `movsd qword [base+disp], xmm`.
    pub fn movsd_store(&mut self, base: Gpr, disp: i32, x: u8) {
        self.b(0xF2);
        self.rex(false, x >= 8, base.hi());
        self.b(0x0F);
        self.b(0x11);
        self.mem(x & 7, base, disp);
    }

    /// Scalar-double arithmetic `op xmm, qword [base+disp]` — opcodes
    /// 0x58 add, 0x5C sub, 0x59 mul, 0x5E div, 0x51 sqrt.
    pub fn sse_mem(&mut self, opcode: u8, x: u8, base: Gpr, disp: i32) {
        self.b(0xF2);
        self.rex(false, x >= 8, base.hi());
        self.b(0x0F);
        self.b(opcode);
        self.mem(x & 7, base, disp);
    }

    /// `ucomisd xmm_a, xmm_b`.
    pub fn ucomisd_rr(&mut self, a: u8, b: u8) {
        self.b(0x66);
        self.rex(false, a >= 8, b >= 8);
        self.b(0x0F);
        self.b(0x2E);
        self.modrm_reg(a & 7, b & 7);
    }

    /// `cvtsi2sd xmm, qword [base+disp]` — full 64-bit source register.
    pub fn cvtsi2sd_mem(&mut self, x: u8, base: Gpr, disp: i32) {
        self.b(0xF2);
        // REX.W is mandatory for the 64-bit source form and must follow
        // the F2 prefix.
        let r = 0x48 | u8::from(x >= 8) << 2 | u8::from(base.hi());
        self.b(r);
        self.b(0x0F);
        self.b(0x2A);
        self.mem(x & 7, base, disp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(f: impl FnOnce(&mut Asm)) -> Vec<u8> {
        let mut a = Asm::new();
        f(&mut a);
        a.finish()
    }

    #[test]
    fn loads_and_stores() {
        assert_eq!(enc(|a| a.mov_load(true, Gpr::Rax, Gpr::Rbp, -8)), [0x48, 0x8B, 0x45, 0xF8]);
        assert_eq!(
            enc(|a| a.mov_store(true, Gpr::Rbp, -0x100, Gpr::Rcx)),
            [0x48, 0x89, 0x8D, 0x00, 0xFF, 0xFF, 0xFF]
        );
        // r12 base forces a SIB byte.
        assert_eq!(enc(|a| a.mov_load(true, Gpr::Rax, Gpr::R12, 0)), [0x49, 0x8B, 0x04, 0x24]);
        // 32-bit load: no REX.W.
        assert_eq!(enc(|a| a.mov_load(false, Gpr::Rax, Gpr::Rbp, -4)), [0x8B, 0x45, 0xFC]);
    }

    #[test]
    fn ctx_field_ops() {
        // sub qword [r12+8], 5
        assert_eq!(
            enc(|a| a.alu_mi(Alu::Sub, true, Gpr::R12, 8, 5)),
            [0x49, 0x83, 0x6C, 0x24, 0x08, 0x05]
        );
        // cmp dword [r12], 0
        assert_eq!(
            enc(|a| a.alu_mi(Alu::Cmp, false, Gpr::R12, 0, 0)),
            [0x41, 0x83, 0x3C, 0x24, 0x00]
        );
        assert_eq!(enc(|a| a.inc_mem64(Gpr::Rax, 0)), [0x48, 0xFF, 0x00]);
    }

    #[test]
    fn extension_forms() {
        assert_eq!(enc(|a| a.movsxd_rm(Gpr::Rax, Gpr::Rbp, -16)), [0x48, 0x63, 0x45, 0xF0]);
        assert_eq!(enc(|a| a.movsx_rm(16, Gpr::Rax, Gpr::Rbp, -16)), [0x48, 0x0F, 0xBF, 0x45, 0xF0]);
        assert_eq!(enc(|a| a.movzx_rm(8, Gpr::Rax, Gpr::Rbp, -16)), [0x0F, 0xB6, 0x45, 0xF0]);
    }

    #[test]
    fn immediates() {
        // Small immediate uses the sign-extended imm32 form.
        assert_eq!(enc(|a| a.mov_ri(Gpr::Rax, 7)), [0x48, 0xC7, 0xC0, 0x07, 0, 0, 0]);
        // Large immediate falls back to movabs.
        let big = enc(|a| a.mov_ri(Gpr::Rax, i64::MIN));
        assert_eq!(big[..2], [0x48, 0xB8]);
        assert_eq!(big.len(), 10);
    }

    #[test]
    fn label_patching() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.alu_ri(Alu::Sub, true, Gpr::Rax, 1); // 4 bytes
        a.jcc(cc::NE, top); // 6 bytes, rel = -(4+6) = -10
        let code = a.finish();
        assert_eq!(&code[4..6], &[0x0F, 0x85]);
        assert_eq!(i32::from_le_bytes(code[6..10].try_into().unwrap()), -10);
    }

    #[test]
    fn rep_stosq_and_zero() {
        assert_eq!(enc(|a| a.rep_stosq()), [0xF3, 0x48, 0xAB]);
        assert_eq!(enc(|a| a.zero(Gpr::Rax)), [0x31, 0xC0]);
    }
}
