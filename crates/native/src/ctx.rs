//! The native-code ↔ host ABI: the execution context structure shared
//! with generated code, trap codes, and the helper/accounting function
//! tables injected by the embedding VM.

use core::ffi::c_void;

use sxe_ir::{Inst, TrapKind};

/// Execution context handed to every generated function in `rdi` and
/// pinned in `r12` for the whole activation. Generated code addresses the
/// fields by the fixed offsets below, so the layout is `repr(C)` and
/// locked by tests.
#[repr(C)]
#[derive(Debug)]
pub struct NativeCtx {
    /// Trap code ([`TRAP_NONE`] while running); set by trap stubs or by
    /// helpers before returning.
    pub trap_kind: u32,
    /// Index into the module's trap-site table, set by the stub that
    /// observed the trap first (helpers set only `trap_kind`).
    pub trap_site: u32,
    /// Remaining fuel; decremented per accounting segment.
    pub fuel: u64,
    /// Current call nesting (suspended native frames).
    pub depth: u64,
    /// Opaque embedder state (the VM's heap); only helpers look at it.
    pub user: *mut c_void,
    /// Target flavour for load semantics: 0 = Ia64, 1 = Ppc64.
    pub target: u32,
    /// Padding to a round size.
    pub _pad: u32,
}

/// Byte offset of [`NativeCtx::trap_kind`].
pub const CTX_TRAP_KIND: i32 = 0;
/// Byte offset of [`NativeCtx::trap_site`].
pub const CTX_TRAP_SITE: i32 = 4;
/// Byte offset of [`NativeCtx::fuel`].
pub const CTX_FUEL: i32 = 8;
/// Byte offset of [`NativeCtx::depth`].
pub const CTX_DEPTH: i32 = 16;

/// `trap_kind` value while no trap has occurred.
pub const TRAP_NONE: u32 = 0;

/// Encode a [`TrapKind`] as a `trap_kind` code (never [`TRAP_NONE`]).
#[must_use]
pub fn trap_code(kind: TrapKind) -> u32 {
    match kind {
        TrapKind::IndexOutOfBounds => 1,
        TrapKind::NegativeArraySize => 2,
        TrapKind::DivisionByZero => 3,
        TrapKind::WildAddress => 4,
        TrapKind::ResourceExhausted => 5,
    }
}

/// Decode a `trap_kind` code; `None` for [`TRAP_NONE`] or garbage.
#[must_use]
pub fn code_trap(code: u32) -> Option<TrapKind> {
    Some(match code {
        1 => TrapKind::IndexOutOfBounds,
        2 => TrapKind::NegativeArraySize,
        3 => TrapKind::DivisionByZero,
        4 => TrapKind::WildAddress,
        5 => TrapKind::ResourceExhausted,
        _ => return None,
    })
}

/// Runtime helpers injected by the embedder and called from generated
/// code for everything that must share state with the VM (the heap) or
/// is deliberately kept out of line (saturating float conversions).
///
/// Heap helpers signal traps by setting [`NativeCtx::trap_kind`]; the
/// generated call site checks it immediately after the call returns.
#[derive(Debug, Clone, Copy)]
pub struct Helpers {
    /// `array[index]` load; returns the raw 64-bit element value.
    pub aload: extern "C" fn(*mut NativeCtx, i64, i64) -> i64,
    /// `array[index] = value` store.
    pub astore: extern "C" fn(*mut NativeCtx, i64, i64, i64),
    /// Allocate an array: `(ctx, raw_len, elem_code)` → reference. Element
    /// codes follow [`elem_code`].
    pub newarray: extern "C" fn(*mut NativeCtx, i64, u32) -> i64,
    /// Array length.
    pub arraylen: extern "C" fn(*mut NativeCtx, i64) -> i64,
    /// Java `d2i` (saturating, NaN → 0), result sign-extended.
    pub d2i: extern "C" fn(f64) -> i64,
    /// Java `d2l` (saturating, NaN → 0).
    pub d2l: extern "C" fn(f64) -> i64,
    /// `f64` remainder (Rust/C `fmod` semantics).
    pub frem: extern "C" fn(f64, f64) -> f64,
}

/// Encoding of an element type for [`Helpers::newarray`].
#[must_use]
pub fn elem_code(ty: sxe_ir::Ty) -> u32 {
    match ty {
        sxe_ir::Ty::I8 => 0,
        sxe_ir::Ty::I16 => 1,
        sxe_ir::Ty::I32 => 2,
        sxe_ir::Ty::I64 => 3,
        sxe_ir::Ty::F64 => 4,
    }
}

/// Decode an [`elem_code`] value (helpers run on trusted codes only).
#[must_use]
pub fn code_elem(code: u32) -> sxe_ir::Ty {
    match code {
        0 => sxe_ir::Ty::I8,
        1 => sxe_ir::Ty::I16,
        2 => sxe_ir::Ty::I32,
        3 => sxe_ir::Ty::I64,
        _ => {
            if code == 4 {
                sxe_ir::Ty::F64
            } else {
                sxe_ir::Ty::I64
            }
        }
    }
}

/// Accounting callbacks injected by the embedder so the generated code's
/// per-segment histograms use *exactly* the VM's cost model and mnemonic
/// indexing — the two can never drift apart.
#[derive(Debug, Clone, Copy)]
pub struct Accounting {
    /// Cycle cost of one instruction (the VM's `cost::cost_of`).
    pub cost_of: fn(&Inst) -> u64,
    /// Mnemonic slot of one instruction (the VM's `op_index`), in
    /// `0..17`.
    pub op_slot: fn(&Inst) -> usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_layout_matches_generated_offsets() {
        assert_eq!(core::mem::offset_of!(NativeCtx, trap_kind), CTX_TRAP_KIND as usize);
        assert_eq!(core::mem::offset_of!(NativeCtx, trap_site), CTX_TRAP_SITE as usize);
        assert_eq!(core::mem::offset_of!(NativeCtx, fuel), CTX_FUEL as usize);
        assert_eq!(core::mem::offset_of!(NativeCtx, depth), CTX_DEPTH as usize);
    }

    #[test]
    fn trap_codes_round_trip() {
        for kind in [
            TrapKind::IndexOutOfBounds,
            TrapKind::NegativeArraySize,
            TrapKind::DivisionByZero,
            TrapKind::WildAddress,
            TrapKind::ResourceExhausted,
        ] {
            let c = trap_code(kind);
            assert_ne!(c, TRAP_NONE);
            assert_eq!(code_trap(c), Some(kind));
        }
        assert_eq!(code_trap(TRAP_NONE), None);
    }

    #[test]
    fn elem_codes_round_trip() {
        for ty in [sxe_ir::Ty::I8, sxe_ir::Ty::I16, sxe_ir::Ty::I32, sxe_ir::Ty::I64, sxe_ir::Ty::F64]
        {
            assert_eq!(code_elem(elem_code(ty)), ty);
        }
    }
}
