//! The template code generator: one pass over each function's blocks,
//! emitting x86-64 directly from IR instructions.
//!
//! # Code-generation scheme
//!
//! Every virtual register lives in a stack slot (`[rbp - 16 - 8*r]`);
//! `rax`/`rcx`/`rdx` and `xmm0`/`xmm1` are scratch, and `r12` is pinned
//! to the [`NativeCtx`] for the whole activation. There is no register
//! allocator — the point of this backend is not to be a great compiler
//! but to make eliminated sign extensions *physically disappear*: an
//! [`Inst::Extend`] emits a `movsxd`/`movsx` (bytes the generator
//! attributes to the extension and reports per function), while the
//! [`Inst::JustExtended`] dummy that elimination leaves behind emits
//! **zero bytes** when source and destination coincide.
//!
//! # Accounting segments
//!
//! The VM charges fuel and counters per instruction; doing that natively
//! would erase the speedup. Instead each block is split into *segments*
//! at call boundaries, and each segment entry does three cheap things:
//! bump one 64-bit counter, subtract the segment's instruction count
//! from the fuel, and branch to an exhaustion stub on borrow. Counters
//! are reconstructed exactly afterwards as Σ segment-count × segment
//! histogram; a trap mid-segment subtracts the precomputed suffix of
//! instructions *after* the trapping one (and refunds the same number of
//! fuel units), so every observable except the fuel-exhaustion cutoff
//! itself is bit-identical to the interpreters. Splitting at calls means
//! a trap propagating out of a callee needs *no* caller-side correction:
//! the caller's current segment ends exactly at the call instruction.
//!
//! # Trap ABI
//!
//! Inline checks (division by zero, call depth) and post-helper checks
//! jump to per-site cold stubs after the epilogue. A stub stores the
//! trap code and the index of a [`TrapSite`] into the context, then
//! falls into the shared epilogue; the embedder maps the site back to a
//! function/instruction id and the counter suffix.

use std::cell::Cell;

use sxe_ir::{BinOp, BlockId, Cond, Inst, InstId, Module, Ty, UnOp, Width};

use crate::asm::{cc, Alu, Asm, Gpr, Label};
use crate::buf::CodeBuf;
use crate::ctx::{
    elem_code, Accounting, Helpers, NativeCtx, CTX_DEPTH, CTX_FUEL, CTX_TRAP_KIND, CTX_TRAP_SITE,
};

/// Per-segment (and per-suffix) instruction histogram: the exact
/// quantities the VM's counters accumulate, in flat form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hist {
    /// Executed instructions (`Nop`s excluded).
    pub insts: u64,
    /// Cost-model cycles.
    pub cycles: u64,
    /// Explicit sign extensions by width `[w8, w16, w32]`.
    pub extends: [u64; 3],
    /// Executed instructions per mnemonic slot (the VM's `op_index`).
    pub per_op: [u64; 17],
}

impl Hist {
    fn note(&mut self, inst: &Inst, acct: &Accounting) {
        self.insts += 1;
        self.cycles += (acct.cost_of)(inst);
        self.per_op[(acct.op_slot)(inst)] += 1;
        if let Inst::Extend { from, .. } = inst {
            self.extends[width_slot(*from)] += 1;
        }
    }

    /// Add `n` executions of a segment histogram.
    pub fn add_scaled(&mut self, h: &Hist, n: u64) {
        self.insts += h.insts * n;
        self.cycles += h.cycles * n;
        for (a, b) in self.extends.iter_mut().zip(h.extends) {
            *a += b * n;
        }
        for (a, b) in self.per_op.iter_mut().zip(h.per_op) {
            *a += b * n;
        }
    }

    /// Subtract a trap-site suffix (exact by construction).
    pub fn subtract(&mut self, h: &Hist) {
        self.insts -= h.insts;
        self.cycles -= h.cycles;
        for (a, b) in self.extends.iter_mut().zip(h.extends) {
            *a -= b;
        }
        for (a, b) in self.per_op.iter_mut().zip(h.per_op) {
            *a -= b;
        }
    }
}

fn width_slot(w: Width) -> usize {
    match w {
        Width::W8 => 0,
        Width::W16 => 1,
        Width::W32 => 2,
    }
}

/// Where a trap is reported and how to correct the segment-granular
/// counters back to exact per-instruction ones.
#[derive(Debug, Clone)]
pub struct TrapSite {
    /// Function to report (for call-depth traps: the callee, matching
    /// the interpreters).
    pub func: u32,
    /// Instruction to report.
    pub at: InstId,
    /// Histogram of the counted instructions *after* the trapping one in
    /// its segment: subtract from counters, refund `suffix.insts` fuel.
    pub suffix: Hist,
}

/// Compilation limits.
#[derive(Debug, Clone, Copy)]
pub struct CompileOpts {
    /// Functions with more virtual registers than this fall back to the
    /// VM (bounds the native frame so the depth limit bounds the stack).
    pub max_regs: u32,
    /// Call-depth limit; must equal the VM's `MAX_CALL_DEPTH` for
    /// identical `ResourceExhausted` behaviour.
    pub max_call_depth: u64,
}

impl Default for CompileOpts {
    fn default() -> CompileOpts {
        CompileOpts { max_regs: 256, max_call_depth: 256 }
    }
}

/// Per-function compilation result.
#[derive(Debug)]
struct FnInfo {
    /// Code offset of the entry; `None` when the function fell back.
    entry: Option<usize>,
    arity: u32,
    /// Why the function is not natively compiled.
    reason: Option<String>,
    /// Bytes of machine code attributable to `Extend` instructions.
    extend_bytes: usize,
    /// Total machine-code bytes of the function body.
    code_bytes: usize,
}

/// A compiled module: executable code plus the accounting side tables.
#[derive(Debug)]
pub struct NativeModule {
    code: CodeBuf,
    fns: Vec<FnInfo>,
    counts: Box<[Cell<u64>]>,
    hists: Box<[Hist]>,
    sites: Vec<TrapSite>,
    /// Per function, per block: global index of the block's first
    /// segment (whose count equals the block's entry count).
    first_seg: Vec<Vec<u32>>,
}

impl NativeModule {
    /// Whether `func` was natively compiled.
    #[must_use]
    pub fn is_native(&self, func: usize) -> bool {
        self.fns[func].entry.is_some()
    }

    /// Why `func` fell back to the VM, if it did.
    #[must_use]
    pub fn refusal(&self, func: usize) -> Option<&str> {
        self.fns[func].reason.as_deref()
    }

    /// Run a natively compiled function. The caller owns argument
    /// canonicalization and must size `args` to the function's arity.
    ///
    /// # Panics
    /// Panics if `func` is not natively compiled or `args` is short.
    pub fn run(&self, func: usize, args: &[i64], ctx: &mut NativeCtx) -> i64 {
        let info = &self.fns[func];
        let off = info.entry.expect("function is not natively compiled");
        assert!(args.len() >= info.arity as usize, "argument buffer shorter than arity");
        let dummy = [0i64];
        let argp = if args.is_empty() { dummy.as_ptr() } else { args.as_ptr() };
        // SAFETY: `off` is the entry of a complete generated function
        // with this exact signature; the buffer is sealed PROT_EXEC.
        let f: extern "C" fn(*mut NativeCtx, *const i64) -> i64 =
            unsafe { core::mem::transmute(self.code.at(off)) };
        f(core::ptr::from_mut(ctx), argp)
    }

    /// Exact totals for everything executed since the last
    /// [`reset_counts`](NativeModule::reset_counts): Σ count × histogram.
    #[must_use]
    pub fn tally(&self) -> Hist {
        let mut t = Hist::default();
        for (c, h) in self.counts.iter().zip(self.hists.iter()) {
            let n = c.get();
            if n > 0 {
                t.add_scaled(h, n);
            }
        }
        t
    }

    /// Zero all segment counters.
    pub fn reset_counts(&self) {
        for c in self.counts.iter() {
            c.set(0);
        }
    }

    /// Resolve a trap-site index stored in [`NativeCtx::trap_site`].
    #[must_use]
    pub fn site(&self, id: u32) -> &TrapSite {
        &self.sites[id as usize]
    }

    /// Block entry counts for a natively compiled function (the VM's
    /// block profile), `None` otherwise.
    #[must_use]
    pub fn block_counts(&self, func: usize) -> Option<Vec<u64>> {
        self.fns[func].entry?;
        Some(self.first_seg[func].iter().map(|&g| self.counts[g as usize].get()).collect())
    }

    /// Machine-code bytes spent on `Extend` instructions in `func`.
    #[must_use]
    pub fn extend_bytes(&self, func: usize) -> usize {
        self.fns[func].extend_bytes
    }

    /// Total machine-code bytes of `func`'s body (0 when fallen back).
    #[must_use]
    pub fn code_bytes(&self, func: usize) -> usize {
        self.fns[func].code_bytes
    }
}

/// Compile every supported function of `module` into one executable
/// buffer. Unsupported functions are recorded with a reason and left to
/// the embedder's fallback path; `Err` is returned only when the host
/// cannot map executable memory at all.
pub fn compile(
    module: &Module,
    helpers: Helpers,
    acct: Accounting,
    opts: &CompileOpts,
) -> Result<NativeModule, String> {
    let n = module.functions.len();

    // Direct support check, then propagate unsupportedness up the call
    // graph: a function calling a fallback function must itself fall
    // back (a native frame cannot re-enter the interpreter mid-call).
    let mut reason: Vec<Option<String>> = module
        .functions
        .iter()
        .map(|f| {
            if f.reg_count > opts.max_regs {
                return Some(format!(
                    "uses {} virtual registers (native limit {})",
                    f.reg_count, opts.max_regs
                ));
            }
            for b in &f.blocks {
                if b.terminator().is_none() {
                    return Some("has an unfinished block".into());
                }
            }
            for b in &f.blocks {
                for inst in &b.insts {
                    match inst {
                        Inst::Call { func, .. } if func.index() >= n => {
                            return Some(format!("calls out-of-range function {func}"));
                        }
                        // The interpreters return whatever the executed
                        // `ret` carries; generated code returns by
                        // signature, so mismatched shapes fall back.
                        Inst::Ret { value } if value.is_some() != f.ret.is_some() => {
                            return Some(
                                "has a ret whose value shape disagrees with the signature".into(),
                            );
                        }
                        _ => {}
                    }
                }
            }
            None
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            if reason[i].is_some() {
                continue;
            }
            for b in &module.functions[i].blocks {
                for inst in &b.insts {
                    if let Inst::Call { func, .. } = inst {
                        if reason[func.index()].is_some() && reason[i].is_none() {
                            reason[i] = Some(format!(
                                "calls @{}, which is not natively compiled",
                                module.functions[func.index()].name
                            ));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pre-allocate the segment-count array so element addresses can be
    // embedded as immediates (the Box allocation never moves).
    let mut first_seg: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut total_segs = 0u32;
    for (i, f) in module.functions.iter().enumerate() {
        if reason[i].is_some() {
            continue;
        }
        for b in &f.blocks {
            first_seg[i].push(total_segs);
            let calls =
                b.insts.iter().filter(|inst| matches!(inst, Inst::Call { .. })).count() as u32;
            total_segs += 1 + calls;
        }
    }
    let counts: Box<[Cell<u64>]> = vec![0u64; total_segs as usize]
        .into_iter()
        .map(Cell::new)
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let counts_base = counts.as_ptr() as usize;

    let mut asm = Asm::new();
    let fn_labels: Vec<Label> = (0..n).map(|_| asm.label()).collect();
    let mut hists: Vec<Hist> = Vec::with_capacity(total_segs as usize);
    let mut sites: Vec<TrapSite> = Vec::new();
    let mut fns: Vec<FnInfo> = Vec::with_capacity(n);

    for (i, f) in module.functions.iter().enumerate() {
        let arity = f.params.len() as u32;
        if let Some(why) = reason[i].take() {
            fns.push(FnInfo {
                entry: None,
                arity,
                reason: Some(why),
                extend_bytes: 0,
                code_bytes: 0,
            });
            continue;
        }
        let start = asm.pos();
        let mut em = FnEmitter {
            asm: &mut asm,
            module,
            func: i,
            fn_labels: &fn_labels,
            hists: &mut hists,
            sites: &mut sites,
            acct: &acct,
            helpers: &helpers,
            opts,
            counts_base,
            seg_base: first_seg[i][0],
            extend_bytes: 0,
        };
        em.emit();
        let extend_bytes = em.extend_bytes;
        fns.push(FnInfo {
            entry: Some(asm.offset_of(fn_labels[i])),
            arity,
            reason: None,
            extend_bytes,
            code_bytes: asm.pos() - start,
        });
    }

    debug_assert_eq!(hists.len(), total_segs as usize);
    let code = CodeBuf::new(&asm.finish())?;
    Ok(NativeModule {
        code,
        fns,
        counts,
        hists: hists.into_boxed_slice(),
        sites,
        first_seg,
    })
}

/// Virtual-register stack slot displacement from rbp.
fn slot(r: u32) -> i32 {
    -16 - 8 * r as i32
}

/// Cold stubs collected during body emission, placed after the epilogue.
enum Stub {
    /// Inline trap: store kind + site, exit.
    Trap { code: u32, site: u32 },
    /// Helper already stored the kind: store site only, exit.
    HelperTrap { site: u32 },
    /// Fuel borrow at a segment entry: kind, site, fuel := 0, exit.
    Exhaust { site: u32 },
}

struct FnEmitter<'a> {
    asm: &'a mut Asm,
    module: &'a Module,
    func: usize,
    fn_labels: &'a [Label],
    hists: &'a mut Vec<Hist>,
    sites: &'a mut Vec<TrapSite>,
    acct: &'a Accounting,
    helpers: &'a Helpers,
    opts: &'a CompileOpts,
    counts_base: usize,
    seg_base: u32,
    extend_bytes: usize,
}

impl FnEmitter<'_> {
    fn emit(&mut self) {
        let f = &self.module.functions[self.func];
        let nregs = f.reg_count;
        let out_max = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::Call { args, .. } => Some(args.len()),
                _ => None,
            })
            .max()
            .unwrap_or(0) as u32;
        // Keep rsp ≡ 0 (mod 16) at call sites: after `push rbp; push r12`
        // rsp ≡ 8, so the frame size must be ≡ 8 (mod 16).
        let mut frame = 8 * nregs as i32 + 8 * out_max as i32;
        if frame % 16 != 8 {
            frame += 8;
        }

        let a = &mut *self.asm;
        a.bind(self.fn_labels[self.func]);
        a.push(Gpr::Rbp);
        a.mov_rr(Gpr::Rbp, Gpr::Rsp);
        a.push(Gpr::R12);
        a.mov_rr(Gpr::R12, Gpr::Rdi);
        a.alu_ri(Alu::Sub, true, Gpr::Rsp, frame);
        // Zero the register file — the interpreters start all registers
        // at 0, and fuzzed code may read before writing.
        if nregs > 0 {
            a.lea(Gpr::Rdi, Gpr::Rbp, -8 - 8 * nregs as i32);
            a.mov_r32i(Gpr::Rcx, nregs);
            a.zero(Gpr::Rax);
            a.rep_stosq();
        }
        for (i, (reg, _ty)) in f.params.iter().enumerate() {
            a.mov_load(true, Gpr::Rax, Gpr::Rsi, 8 * i as i32);
            a.mov_store(true, Gpr::Rbp, slot(reg.0), Gpr::Rax);
        }

        let block_labels: Vec<Label> = f.blocks.iter().map(|_| a.label()).collect();
        let epilogue = a.label();
        let mut stubs: Vec<(Label, Stub)> = Vec::new();

        let mut seg = self.seg_base;
        for (bi, block) in f.blocks.iter().enumerate() {
            self.asm.bind(block_labels[bi]);
            // Split the block into accounting segments at call
            // boundaries; the call is the last instruction of its
            // segment, so propagated traps need no caller correction.
            let mut segments: Vec<Vec<usize>> = vec![Vec::new()];
            for (p, inst) in block.insts.iter().enumerate() {
                segments.last_mut().unwrap().push(p);
                if matches!(inst, Inst::Call { .. }) {
                    segments.push(Vec::new());
                }
            }
            if segments.last().is_some_and(Vec::is_empty) {
                // A block cannot end in a call (terminators only), so
                // this only trims the artifact of the split above.
                segments.pop();
            }
            for positions in &segments {
                let mut hist = Hist::default();
                for &p in positions {
                    let inst = &block.insts[p];
                    if !matches!(inst, Inst::Nop) {
                        hist.note(inst, self.acct);
                    }
                }
                self.emit_segment_entry(seg, &hist, bi, positions, block, &mut stubs);
                self.hists.push(hist);
                for (k, &p) in positions.iter().enumerate() {
                    let inst = &block.insts[p];
                    if matches!(inst, Inst::Nop) {
                        continue;
                    }
                    let suffix = |em: &Self| {
                        let mut s = Hist::default();
                        for &q in &positions[k + 1..] {
                            let i2 = &block.insts[q];
                            if !matches!(i2, Inst::Nop) {
                                s.note(i2, em.acct);
                            }
                        }
                        s
                    };
                    self.emit_inst(
                        inst,
                        InstId::new(BlockId(bi as u32), p),
                        suffix,
                        &block_labels,
                        f.blocks.len(),
                        bi,
                        epilogue,
                        &mut stubs,
                    );
                }
                seg += 1;
            }
        }

        let a = &mut *self.asm;
        a.bind(epilogue);
        a.lea(Gpr::Rsp, Gpr::Rbp, -8);
        a.pop(Gpr::R12);
        a.pop(Gpr::Rbp);
        a.ret();

        for (label, stub) in stubs {
            let a = &mut *self.asm;
            a.bind(label);
            match stub {
                Stub::Trap { code, site } => {
                    a.mov_mem_i32(false, Gpr::R12, CTX_TRAP_KIND, code as i32);
                    a.mov_mem_i32(false, Gpr::R12, CTX_TRAP_SITE, site as i32);
                }
                Stub::HelperTrap { site } => {
                    a.mov_mem_i32(false, Gpr::R12, CTX_TRAP_SITE, site as i32);
                }
                Stub::Exhaust { site } => {
                    a.mov_mem_i32(
                        false,
                        Gpr::R12,
                        CTX_TRAP_KIND,
                        crate::ctx::trap_code(sxe_ir::TrapKind::ResourceExhausted) as i32,
                    );
                    a.mov_mem_i32(false, Gpr::R12, CTX_TRAP_SITE, site as i32);
                    a.mov_mem_i32(true, Gpr::R12, CTX_FUEL, 0);
                }
            }
            a.jmp(epilogue);
        }
    }

    /// Segment entry: bump the segment counter, charge fuel in bulk,
    /// exit through the exhaustion stub on borrow.
    fn emit_segment_entry(
        &mut self,
        seg: u32,
        hist: &Hist,
        bi: usize,
        positions: &[usize],
        block: &sxe_ir::Block,
        stubs: &mut Vec<(Label, Stub)>,
    ) {
        let addr = self.counts_base + 8 * seg as usize;
        let site = if hist.insts > 0 {
            let at = positions
                .iter()
                .copied()
                .find(|&p| !matches!(block.insts[p], Inst::Nop))
                .unwrap_or(positions[0]);
            Some(self.new_site(InstId::new(BlockId(bi as u32), at), Hist::default()))
        } else {
            None
        };
        let a = &mut *self.asm;
        a.mov_ri(Gpr::Rax, addr as i64);
        a.inc_mem64(Gpr::Rax, 0);
        if let Some(site) = site {
            let stub = a.label();
            a.alu_mi(Alu::Sub, true, Gpr::R12, CTX_FUEL, hist.insts as i32);
            a.jcc(cc::B, stub);
            stubs.push((stub, Stub::Exhaust { site }));
        }
    }

    fn new_site(&mut self, at: InstId, suffix: Hist) -> u32 {
        self.new_site_in(self.func as u32, at, suffix)
    }

    fn new_site_in(&mut self, func: u32, at: InstId, suffix: Hist) -> u32 {
        self.sites.push(TrapSite { func, at, suffix });
        (self.sites.len() - 1) as u32
    }

    /// Post-helper-call trap check: helpers store the kind; the stub
    /// records the site.
    fn helper_check(
        &mut self,
        at: InstId,
        suffix: Hist,
        stubs: &mut Vec<(Label, Stub)>,
    ) {
        let site = self.new_site(at, suffix);
        let a = &mut *self.asm;
        let stub = a.label();
        a.alu_mi(Alu::Cmp, false, Gpr::R12, CTX_TRAP_KIND, 0);
        a.jcc(cc::NE, stub);
        stubs.push((stub, Stub::HelperTrap { site }));
    }

    fn helper_call(&mut self, target: usize) {
        let a = &mut *self.asm;
        a.mov_ri(Gpr::R10, target as i64);
        a.call_reg(Gpr::R10);
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_inst(
        &mut self,
        inst: &Inst,
        at: InstId,
        suffix: impl Fn(&Self) -> Hist,
        block_labels: &[Label],
        nblocks: usize,
        bi: usize,
        epilogue: Label,
        stubs: &mut Vec<(Label, Stub)>,
    ) {
        let next_is = |b: BlockId| b.index() == bi + 1 && b.index() < nblocks;
        match *inst {
            Inst::Nop => {}
            Inst::Const { dst, value, .. } => self.store_imm(dst.0, value),
            Inst::ConstF { dst, value } => self.store_imm(dst.0, value.to_bits() as i64),
            Inst::Copy { dst, src, .. } | Inst::JustExtended { dst, src, .. } => {
                // An eliminated extension's dummy marker compiles to
                // nothing when it names a single register — the paper's
                // deleted `sxt4`, literally zero bytes.
                if dst != src {
                    let a = &mut *self.asm;
                    a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(src.0));
                    a.mov_store(true, Gpr::Rbp, slot(dst.0), Gpr::Rax);
                }
            }
            Inst::Extend { dst, src, from } => {
                let start = self.asm.pos();
                let a = &mut *self.asm;
                match from {
                    Width::W32 => a.movsxd_rm(Gpr::Rax, Gpr::Rbp, slot(src.0)),
                    Width::W16 => a.movsx_rm(16, Gpr::Rax, Gpr::Rbp, slot(src.0)),
                    Width::W8 => a.movsx_rm(8, Gpr::Rax, Gpr::Rbp, slot(src.0)),
                }
                a.mov_store(true, Gpr::Rbp, slot(dst.0), Gpr::Rax);
                self.extend_bytes += self.asm.pos() - start;
            }
            Inst::Un { op, ty, dst, src } => self.emit_un(op, ty, dst.0, src.0),
            Inst::Bin { op, ty, dst, lhs, rhs } => {
                let is_float_arith = ty == Ty::F64
                    && matches!(
                        op,
                        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
                    );
                if is_float_arith {
                    self.emit_f64_bin(op, dst.0, lhs.0, rhs.0);
                } else {
                    // Integer ops — and the robustness path for bitwise
                    // ops on floats, which the interpreters evaluate as
                    // raw 64-bit integer ops.
                    let eff_ty = if ty == Ty::F64 { Ty::I64 } else { ty };
                    self.emit_int_bin(op, eff_ty, dst.0, lhs.0, rhs.0, at, &suffix, stubs);
                }
            }
            Inst::Setcc { cond, ty, dst, lhs, rhs } => {
                self.emit_cond_to_al(cond, ty, lhs.0, rhs.0);
                let a = &mut *self.asm;
                a.movzx8_rr(Gpr::Rax, Gpr::Rax);
                a.mov_store(true, Gpr::Rbp, slot(dst.0), Gpr::Rax);
            }
            Inst::NewArray { dst, len, elem } => {
                let a = &mut *self.asm;
                a.mov_rr(Gpr::Rdi, Gpr::R12);
                a.mov_load(true, Gpr::Rsi, Gpr::Rbp, slot(len.0));
                a.mov_r32i(Gpr::Rdx, elem_code(elem));
                let target = self.helpers.newarray as usize;
                self.helper_call(target);
                self.helper_check(at, suffix(self), stubs);
                let a = &mut *self.asm;
                a.mov_store(true, Gpr::Rbp, slot(dst.0), Gpr::Rax);
            }
            Inst::ArrayLen { dst, array } => {
                let a = &mut *self.asm;
                a.mov_rr(Gpr::Rdi, Gpr::R12);
                a.mov_load(true, Gpr::Rsi, Gpr::Rbp, slot(array.0));
                let target = self.helpers.arraylen as usize;
                self.helper_call(target);
                self.helper_check(at, suffix(self), stubs);
                let a = &mut *self.asm;
                a.mov_store(true, Gpr::Rbp, slot(dst.0), Gpr::Rax);
            }
            Inst::ArrayLoad { dst, array, index, .. } => {
                let a = &mut *self.asm;
                a.mov_rr(Gpr::Rdi, Gpr::R12);
                a.mov_load(true, Gpr::Rsi, Gpr::Rbp, slot(array.0));
                a.mov_load(true, Gpr::Rdx, Gpr::Rbp, slot(index.0));
                let target = self.helpers.aload as usize;
                self.helper_call(target);
                self.helper_check(at, suffix(self), stubs);
                let a = &mut *self.asm;
                a.mov_store(true, Gpr::Rbp, slot(dst.0), Gpr::Rax);
            }
            Inst::ArrayStore { array, index, src, .. } => {
                let a = &mut *self.asm;
                a.mov_rr(Gpr::Rdi, Gpr::R12);
                a.mov_load(true, Gpr::Rsi, Gpr::Rbp, slot(array.0));
                a.mov_load(true, Gpr::Rdx, Gpr::Rbp, slot(index.0));
                a.mov_load(true, Gpr::Rcx, Gpr::Rbp, slot(src.0));
                let target = self.helpers.astore as usize;
                self.helper_call(target);
                self.helper_check(at, suffix(self), stubs);
            }
            Inst::Call { dst, func, ref args } => {
                // Depth trap: reported at the callee's entry with an
                // empty suffix (the call itself was charged), exactly
                // like the decoded engine.
                let site = self.new_site_in(
                    func.0,
                    InstId::new(BlockId(0), 0),
                    Hist::default(),
                );
                let a = &mut *self.asm;
                let depth_stub = a.label();
                a.alu_mi(Alu::Cmp, true, Gpr::R12, CTX_DEPTH, self.opts.max_call_depth as i32);
                a.jcc(cc::AE, depth_stub);
                stubs.push((
                    depth_stub,
                    Stub::Trap {
                        code: crate::ctx::trap_code(sxe_ir::TrapKind::ResourceExhausted),
                        site,
                    },
                ));
                a.inc_mem64(Gpr::R12, CTX_DEPTH);
                for (k, arg) in args.iter().enumerate() {
                    a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(arg.0));
                    a.mov_store(true, Gpr::Rsp, 8 * k as i32, Gpr::Rax);
                }
                a.mov_rr(Gpr::Rdi, Gpr::R12);
                a.mov_rr(Gpr::Rsi, Gpr::Rsp);
                a.call_label(self.fn_labels[func.index()]);
                a.dec_mem64(Gpr::R12, CTX_DEPTH);
                // Propagate a callee trap without touching the recorded
                // site: our segment ended at this call, so the counters
                // are already exact.
                a.alu_mi(Alu::Cmp, false, Gpr::R12, CTX_TRAP_KIND, 0);
                a.jcc(cc::NE, epilogue);
                if let Some(d) = dst {
                    a.mov_store(true, Gpr::Rbp, slot(d.0), Gpr::Rax);
                }
            }
            Inst::Br { target } => {
                if !next_is(target) {
                    self.asm.jmp(block_labels[target.index()]);
                }
            }
            Inst::CondBr { cond, ty, lhs, rhs, then_bb, else_bb } => {
                if ty == Ty::F64 {
                    self.emit_cond_to_al(cond, ty, lhs.0, rhs.0);
                    let a = &mut *self.asm;
                    a.test8_rr(Gpr::Rax, Gpr::Rax);
                    a.jcc(cc::NE, block_labels[then_bb.index()]);
                } else {
                    let w64 = ty == Ty::I64;
                    let a = &mut *self.asm;
                    a.mov_load(w64, Gpr::Rax, Gpr::Rbp, slot(lhs.0));
                    a.alu_rm(Alu::Cmp, w64, Gpr::Rax, Gpr::Rbp, slot(rhs.0));
                    a.jcc(int_cc(cond), block_labels[then_bb.index()]);
                }
                if !next_is(else_bb) {
                    self.asm.jmp(block_labels[else_bb.index()]);
                }
            }
            Inst::Ret { value } => {
                let a = &mut *self.asm;
                match value {
                    Some(v) => a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(v.0)),
                    None => a.zero(Gpr::Rax),
                }
                a.jmp(epilogue);
            }
        }
    }

    fn store_imm(&mut self, dst: u32, value: i64) {
        let a = &mut *self.asm;
        if i64::from(value as i32) == value {
            a.mov_mem_i32(true, Gpr::Rbp, slot(dst), value as i32);
        } else {
            a.mov_ri(Gpr::Rax, value);
            a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
        }
    }

    fn emit_un(&mut self, op: UnOp, ty: Ty, dst: u32, src: u32) {
        match op {
            UnOp::Neg if ty == Ty::F64 => self.flip_sign(dst, src),
            UnOp::Neg => {
                let a = &mut *self.asm;
                a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(src));
                a.unary_r(3, Gpr::Rax);
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
            }
            UnOp::Not => {
                let a = &mut *self.asm;
                a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(src));
                a.unary_r(2, Gpr::Rax);
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
            }
            // Both conversions read the full 64-bit register — an
            // unextended 32-bit value converts to a wrong double, by
            // design (paper Figure 2).
            UnOp::I32ToF64 | UnOp::I64ToF64 => {
                let a = &mut *self.asm;
                a.cvtsi2sd_mem(0, Gpr::Rbp, slot(src));
                a.movsd_store(Gpr::Rbp, slot(dst), 0);
            }
            UnOp::F64ToI32 | UnOp::F64ToI64 => {
                let a = &mut *self.asm;
                a.movsd_load(0, Gpr::Rbp, slot(src));
                let target = if op == UnOp::F64ToI32 {
                    self.helpers.d2i as usize
                } else {
                    self.helpers.d2l as usize
                };
                self.helper_call(target);
                let a = &mut *self.asm;
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
            }
            UnOp::Zext(w) => {
                let a = &mut *self.asm;
                match w {
                    Width::W8 => a.movzx_rm(8, Gpr::Rax, Gpr::Rbp, slot(src)),
                    Width::W16 => a.movzx_rm(16, Gpr::Rax, Gpr::Rbp, slot(src)),
                    // A 32-bit load zero-extends for free.
                    Width::W32 => a.mov_load(false, Gpr::Rax, Gpr::Rbp, slot(src)),
                }
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
            }
            UnOp::FNeg => self.flip_sign(dst, src),
            UnOp::FSqrt => {
                let a = &mut *self.asm;
                a.sse_mem(0x51, 0, Gpr::Rbp, slot(src));
                a.movsd_store(Gpr::Rbp, slot(dst), 0);
            }
            UnOp::FAbs => {
                let a = &mut *self.asm;
                a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(src));
                a.mov_ri(Gpr::Rcx, 0x7FFF_FFFF_FFFF_FFFF);
                a.alu_rr(Alu::And, Gpr::Rax, Gpr::Rcx);
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
            }
        }
    }

    /// IEEE sign-bit flip — negation on the integer view of the bits,
    /// exactly matching the interpreters' `from_bits`-based evaluation.
    fn flip_sign(&mut self, dst: u32, src: u32) {
        let a = &mut *self.asm;
        a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(src));
        a.btc_ri(Gpr::Rax, 63);
        a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
    }

    fn emit_f64_bin(&mut self, op: BinOp, dst: u32, lhs: u32, rhs: u32) {
        let a = &mut *self.asm;
        if op == BinOp::Rem {
            a.movsd_load(0, Gpr::Rbp, slot(lhs));
            a.movsd_load(1, Gpr::Rbp, slot(rhs));
            let target = self.helpers.frem as usize;
            self.helper_call(target);
            let a = &mut *self.asm;
            a.movsd_store(Gpr::Rbp, slot(dst), 0);
            return;
        }
        let opcode = match op {
            BinOp::Add => 0x58,
            BinOp::Sub => 0x5C,
            BinOp::Mul => 0x59,
            BinOp::Div => 0x5E,
            _ => unreachable!("handled by the integer path"),
        };
        a.movsd_load(0, Gpr::Rbp, slot(lhs));
        a.sse_mem(opcode, 0, Gpr::Rbp, slot(rhs));
        a.movsd_store(Gpr::Rbp, slot(dst), 0);
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_int_bin(
        &mut self,
        op: BinOp,
        ty: Ty,
        dst: u32,
        lhs: u32,
        rhs: u32,
        at: InstId,
        suffix: &impl Fn(&Self) -> Hist,
        stubs: &mut Vec<(Label, Stub)>,
    ) {
        let w32 = ty != Ty::I64;
        match op {
            BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => {
                // 32-bit ops are performed as full 64-bit ops: the upper
                // bits carry the machine model's deliberate garbage.
                let alu = match op {
                    BinOp::Add => Alu::Add,
                    BinOp::Sub => Alu::Sub,
                    BinOp::And => Alu::And,
                    BinOp::Or => Alu::Or,
                    _ => Alu::Xor,
                };
                let a = &mut *self.asm;
                a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(lhs));
                a.alu_rm(alu, true, Gpr::Rax, Gpr::Rbp, slot(rhs));
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
            }
            BinOp::Mul => {
                let a = &mut *self.asm;
                a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(lhs));
                a.imul_rm(Gpr::Rax, Gpr::Rbp, slot(rhs));
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
            }
            BinOp::Shl | BinOp::Shr => {
                let a = &mut *self.asm;
                a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(lhs));
                a.mov_load(true, Gpr::Rcx, Gpr::Rbp, slot(rhs));
                if w32 {
                    // 32-bit shifts mask the count to 31 but still act
                    // on the full 64-bit value (IA64 semantics).
                    a.alu_ri(Alu::And, false, Gpr::Rcx, 31);
                }
                a.shift_cl(true, if op == BinOp::Shl { 4 } else { 7 }, Gpr::Rax);
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
            }
            BinOp::Shru => {
                let a = &mut *self.asm;
                if w32 {
                    // extr.u: extract the low 32 bits, then shift — a
                    // 32-bit shr does both (and zero-extends).
                    a.mov_load(false, Gpr::Rax, Gpr::Rbp, slot(lhs));
                    a.mov_load(true, Gpr::Rcx, Gpr::Rbp, slot(rhs));
                    a.shift_cl(false, 5, Gpr::Rax);
                } else {
                    a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(lhs));
                    a.mov_load(true, Gpr::Rcx, Gpr::Rbp, slot(rhs));
                    a.shift_cl(true, 5, Gpr::Rax);
                }
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
            }
            BinOp::Div | BinOp::Rem => {
                let site = self.new_site(at, suffix(self));
                let a = &mut *self.asm;
                let zero_stub = a.label();
                let do_div = a.label();
                let done = a.label();
                a.mov_load(true, Gpr::Rax, Gpr::Rbp, slot(lhs));
                a.mov_load(true, Gpr::Rcx, Gpr::Rbp, slot(rhs));
                a.test_rr(Gpr::Rcx, Gpr::Rcx);
                a.jcc(cc::E, zero_stub);
                // Guard the one overflowing case the hardware faults on:
                // i64::MIN / -1 wraps (quotient i64::MIN, remainder 0).
                a.alu_ri(Alu::Cmp, true, Gpr::Rcx, -1);
                a.jcc(cc::NE, do_div);
                a.mov_ri(Gpr::Rdx, i64::MIN);
                a.alu_rr(Alu::Cmp, Gpr::Rax, Gpr::Rdx);
                a.jcc(cc::NE, do_div);
                if op == BinOp::Rem {
                    a.zero(Gpr::Rax);
                }
                a.jmp(done);
                a.bind(do_div);
                a.cqo();
                a.unary_r(7, Gpr::Rcx);
                if op == BinOp::Rem {
                    a.mov_rr(Gpr::Rax, Gpr::Rdx);
                }
                a.bind(done);
                a.mov_store(true, Gpr::Rbp, slot(dst), Gpr::Rax);
                stubs.push((
                    zero_stub,
                    Stub::Trap {
                        code: crate::ctx::trap_code(sxe_ir::TrapKind::DivisionByZero),
                        site,
                    },
                ));
            }
        }
    }

    /// Evaluate a comparison into `al` (int fast path leaves flags and
    /// uses `setcc`; floats go through `ucomisd` with NaN handling).
    fn emit_cond_to_al(&mut self, cond: Cond, ty: Ty, lhs: u32, rhs: u32) {
        let a = &mut *self.asm;
        if ty == Ty::F64 {
            a.movsd_load(0, Gpr::Rbp, slot(lhs));
            a.movsd_load(1, Gpr::Rbp, slot(rhs));
            match cond {
                Cond::Eq => {
                    a.ucomisd_rr(0, 1);
                    a.setcc(cc::E, Gpr::Rax);
                    a.setcc(cc::NP, Gpr::Rcx);
                    a.and8_rr(Gpr::Rax, Gpr::Rcx);
                }
                Cond::Ne => {
                    a.ucomisd_rr(0, 1);
                    a.setcc(cc::NE, Gpr::Rax);
                    a.setcc(cc::P, Gpr::Rcx);
                    a.or8_rr(Gpr::Rax, Gpr::Rcx);
                }
                // Operand-swap trick: a < b ⇔ b > a, and `seta`/`setae`
                // are false on unordered, matching IEEE semantics.
                Cond::Lt | Cond::Ult => {
                    a.ucomisd_rr(1, 0);
                    a.setcc(cc::A, Gpr::Rax);
                }
                Cond::Le | Cond::Ule => {
                    a.ucomisd_rr(1, 0);
                    a.setcc(cc::AE, Gpr::Rax);
                }
                Cond::Gt | Cond::Ugt => {
                    a.ucomisd_rr(0, 1);
                    a.setcc(cc::A, Gpr::Rax);
                }
                Cond::Ge | Cond::Uge => {
                    a.ucomisd_rr(0, 1);
                    a.setcc(cc::AE, Gpr::Rax);
                }
            }
        } else {
            // Narrow compares read only the low 32 bits (cmp4): a 32-bit
            // hardware compare with the signed/unsigned condition is
            // exactly the interpreters' `int_cond`.
            let w64 = ty == Ty::I64;
            a.mov_load(w64, Gpr::Rax, Gpr::Rbp, slot(lhs));
            a.alu_rm(Alu::Cmp, w64, Gpr::Rax, Gpr::Rbp, slot(rhs));
            a.setcc(int_cc(cond), Gpr::Rax);
        }
    }
}

/// x86 condition code for an integer comparison.
fn int_cc(cond: Cond) -> u8 {
    match cond {
        Cond::Eq => cc::E,
        Cond::Ne => cc::NE,
        Cond::Lt => cc::L,
        Cond::Le => cc::LE,
        Cond::Gt => cc::G,
        Cond::Ge => cc::GE,
        Cond::Ult => cc::B,
        Cond::Ule => cc::BE,
        Cond::Ugt => cc::A,
        Cond::Uge => cc::AE,
    }
}
