//! Executable code buffers via raw `mmap`/`mprotect`.
//!
//! `std` already links libc on every supported platform, so declaring the
//! three syscall wrappers directly keeps the crate dependency-free. The
//! buffer follows W^X discipline: it is written while `PROT_READ |
//! PROT_WRITE`, then sealed to `PROT_READ | PROT_EXEC` before any code
//! pointer escapes.

use core::ffi::c_void;

#[cfg(all(target_arch = "x86_64", unix))]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const PROT_EXEC: i32 = 4;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_ANONYMOUS: i32 = 0x20;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
    }
}

/// A sealed, executable copy of generated machine code.
pub struct CodeBuf {
    ptr: *mut u8,
    len: usize,
}

// The mapping is owned exclusively; moving it across threads is fine.
// (`CodeBuf` is still `!Sync` by virtue of the raw pointer.)
unsafe impl Send for CodeBuf {}

impl std::fmt::Debug for CodeBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CodeBuf({} bytes @ {:p})", self.len, self.ptr)
    }
}

impl CodeBuf {
    /// Map `code` into fresh executable memory.
    #[cfg(all(target_arch = "x86_64", unix))]
    pub fn new(code: &[u8]) -> Result<CodeBuf, String> {
        let len = code.len().max(1).div_ceil(4096) * 4096;
        // SAFETY: anonymous private mapping with no address hint; the
        // result is checked against MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                core::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(format!("mmap of {len} code bytes failed"));
        }
        let ptr = ptr.cast::<u8>();
        // SAFETY: the mapping is `len` bytes and writable.
        unsafe {
            core::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
            if sys::mprotect(ptr.cast::<c_void>(), len, sys::PROT_READ | sys::PROT_EXEC) != 0 {
                sys::munmap(ptr.cast::<c_void>(), len);
                return Err("mprotect(PROT_EXEC) failed".into());
            }
        }
        Ok(CodeBuf { ptr, len })
    }

    /// Unsupported host: the native backend only targets x86-64 unix.
    #[cfg(not(all(target_arch = "x86_64", unix)))]
    pub fn new(_code: &[u8]) -> Result<CodeBuf, String> {
        Err("native backend requires an x86-64 unix host".into())
    }

    /// Pointer to the code at byte offset `off`.
    #[must_use]
    pub fn at(&self, off: usize) -> *const u8 {
        assert!(off < self.len);
        // SAFETY: bounds-checked above.
        unsafe { self.ptr.add(off) }
    }

    /// Mapped size in bytes (page-rounded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a built buffer).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for CodeBuf {
    fn drop(&mut self) {
        #[cfg(all(target_arch = "x86_64", unix))]
        // SAFETY: ptr/len come from our own successful mmap.
        unsafe {
            sys::munmap(self.ptr.cast::<c_void>(), self.len);
        }
    }
}

#[cfg(all(target_arch = "x86_64", unix, test))]
mod tests {
    use super::*;

    #[test]
    fn executes_a_trivial_function() {
        // mov eax, 42; ret
        let code = [0xB8, 42, 0, 0, 0, 0xC3];
        let buf = CodeBuf::new(&code).expect("mmap");
        // SAFETY: the buffer holds a complete, valid function.
        let f: extern "C" fn() -> i32 = unsafe { core::mem::transmute(buf.at(0)) };
        assert_eq!(f(), 42);
    }
}
