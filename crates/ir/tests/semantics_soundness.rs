//! Direct soundness checks of the shared semantics tables against the
//! concrete evaluation: the facts `def_facts` promises must hold on the
//! values `eval` computes, for every operation and a battery of inputs.
//! This is the contract every elimination decision ultimately rests on.

use sxe_ir::eval::{int_bin, int_bin_on, int_cond, int_neg_on};
use sxe_ir::rng::XorShift;
use sxe_ir::semantics::def_facts;
use sxe_ir::{BinOp, Cond, ExtFacts, Inst, Reg, Target, Ty, UnOp, Width};

const OPS: [BinOp; 11] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Shru,
];

fn is_sx32(v: i64) -> bool {
    v == (v as i32) as i64
}

fn is_u032(v: i64) -> bool {
    v == ((v as u32) as i64)
}

fn holds(facts: ExtFacts, v: i64) -> bool {
    (!facts.sign_extended || is_sx32(v)) && (!facts.upper_zero || is_u032(v))
}

/// Raw register values exhibiting each operand-fact class.
fn values_with(facts: ExtFacts) -> Vec<i64> {
    match (facts.sign_extended, facts.upper_zero) {
        // NONNEG: non-negative i32 values.
        (true, true) => vec![0, 1, 7, 0x7FFF_FFFF, 12345],
        // EXTENDED: any sign-extended i32.
        (true, false) => vec![-1, i32::MIN as i64, -12345, 5, 0x7FFF_FFFF],
        // UPPER_ZERO: zero-extended u32 (bit 31 may be set).
        (false, true) => vec![0xFFFF_FFFF, 0x8000_0000, 3, 0x7FFF_FFFF],
        // NONE: arbitrary raw bits.
        (false, false) => vec![
            0x1234_5678_9ABC_DEF0u64 as i64,
            -1,
            0x8000_0000,
            i64::MIN,
            42,
        ],
    }
}

const FACT_CLASSES: [ExtFacts; 4] =
    [ExtFacts::NONNEG, ExtFacts::EXTENDED, ExtFacts::UPPER_ZERO, ExtFacts::NONE];

/// For every binary op and every combination of operand-fact classes:
/// whatever `def_facts` claims about the result must hold on the raw
/// machine result for all witness values of those classes.
#[test]
fn bin_def_facts_sound_on_eval() {
    for op in OPS {
        let inst = Inst::Bin { op, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        for lf in FACT_CLASSES {
            for rf in FACT_CLASSES {
                let mut facts_of = |r: Reg| if r == Reg(0) { lf } else { rf };
                let claim = def_facts(&inst, Target::Ia64, Width::W32, &mut facts_of);
                if claim == ExtFacts::NONE {
                    continue;
                }
                for &a in &values_with(lf) {
                    for &b in &values_with(rf) {
                        // Shifts/div get sane right operands from the
                        // witness lists already (shift amounts are
                        // masked; division by zero is skipped).
                        let Some(v) = int_bin(op, a, b, Ty::I32) else { continue };
                        assert!(
                            holds(claim, v),
                            "{op:?} claim {claim:?} violated: a={a:#x} ({lf:?}) b={b:#x} ({rf:?}) -> {v:#x}"
                        );
                    }
                }
            }
        }
    }
}

/// The same contract on MIPS64: whatever `def_facts` claims for the
/// canonical-form target must hold on the values the target-aware
/// evaluation computes. This is the soundness edge the MIPS64 port rests
/// on — every 32-bit ALU result is claimed EXTENDED, and `int_bin_on`
/// must actually deliver it.
#[test]
fn mips64_bin_def_facts_sound_on_target_eval() {
    for op in OPS {
        let inst = Inst::Bin { op, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        for lf in FACT_CLASSES {
            for rf in FACT_CLASSES {
                let mut facts_of = |r: Reg| if r == Reg(0) { lf } else { rf };
                let claim = def_facts(&inst, Target::Mips64, Width::W32, &mut facts_of);
                // Canonicalizing ops must claim EXTENDED regardless of
                // their inputs.
                if !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) {
                    assert!(claim.sign_extended, "{op:?} must claim sign_extended on mips64");
                }
                if claim == ExtFacts::NONE {
                    continue;
                }
                for &a in &values_with(lf) {
                    for &b in &values_with(rf) {
                        let Some(v) = int_bin_on(op, a, b, Ty::I32, Target::Mips64) else {
                            continue;
                        };
                        assert!(
                            holds(claim, v),
                            "mips64 {op:?} claim {claim:?} violated: a={a:#x} ({lf:?}) b={b:#x} ({rf:?}) -> {v:#x}"
                        );
                    }
                }
            }
        }
    }
}

/// MIPS64 narrow negate (`subu $0, v`) claims EXTENDED and the evaluator
/// delivers it for arbitrary raw inputs.
#[test]
fn mips64_neg_def_facts_sound_on_target_eval() {
    let inst = Inst::Un { op: UnOp::Neg, ty: Ty::I32, dst: Reg(1), src: Reg(0) };
    let mut none = |_: Reg| ExtFacts::NONE;
    let claim = def_facts(&inst, Target::Mips64, Width::W32, &mut none);
    assert!(claim.sign_extended);
    for &a in &values_with(ExtFacts::NONE) {
        let v = int_neg_on(a, Ty::I32, Target::Mips64);
        assert!(holds(claim, v), "neg claim {claim:?} on {a:#x} -> {v:#x}");
    }
    // On IA64 the same instruction may carry garbage upper bits, so no
    // such claim is made.
    let ia = def_facts(&inst, Target::Ia64, Width::W32, &mut none);
    assert!(!ia.sign_extended);
}

/// MIPS64's canonical 32-bit results agree with true i32 arithmetic on
/// the low word for arbitrary raw inputs — no operand preparation needed,
/// because the hardware reads the (canonical) low words itself.
#[test]
fn mips64_int_bin_low32_matches_i32_semantics() {
    let mut rng = XorShift::new(0x5eed_0003);
    for case in 0..4096 {
        let a = sample_i64(&mut rng, case % 16);
        let b = sample_i64(&mut rng, (case / 16) % 16);
        let op = OPS[rng.index(OPS.len())];
        let (a32, b32) = (a as i32, b as i32);
        let expect: Option<i32> = match op {
            BinOp::Add => Some(a32.wrapping_add(b32)),
            BinOp::Sub => Some(a32.wrapping_sub(b32)),
            BinOp::Mul => Some(a32.wrapping_mul(b32)),
            BinOp::Div => (b32 != 0).then(|| a32.wrapping_div(b32)),
            BinOp::Rem => (b32 != 0).then(|| a32.wrapping_rem(b32)),
            BinOp::And => Some(a32 & b32),
            BinOp::Or => Some(a32 | b32),
            BinOp::Xor => Some(a32 ^ b32),
            BinOp::Shl => Some(a32.wrapping_shl((b & 31) as u32)),
            BinOp::Shr => Some(a32.wrapping_shr((b & 31) as u32)),
            BinOp::Shru => Some(((a32 as u32) >> (b & 31)) as i32),
        };
        match (int_bin_on(op, a, b, Ty::I32, Target::Mips64), expect) {
            (Some(v), Some(e)) => {
                assert_eq!(v as i32, e, "{op:?} a={a:#x} b={b:#x}");
                // And unlike the raw model, the full register is the
                // sign extension of that low word (except bitwise ops,
                // which are 64-bit register ops).
                if !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) {
                    assert_eq!(v, (v as i32) as i64, "{op:?} result not canonical");
                }
            }
            (None, None) => {}
            (got, want) => panic!("mips64 {op:?}: got {got:?} want {want:?}"),
        }
    }
}

/// Extensions and constants: the unconditional fact claims.
#[test]
fn unary_def_facts_sound_on_eval() {
    // extend.W makes the value sign-extended from W (and hence from 32).
    for w in [Width::W8, Width::W16, Width::W32] {
        let inst = Inst::Extend { dst: Reg(1), src: Reg(0), from: w };
        let mut none = |_: Reg| ExtFacts::NONE;
        let claim = def_facts(&inst, Target::Ia64, Width::W32, &mut none);
        for &a in &values_with(ExtFacts::NONE) {
            let v = w.sign_extend(a);
            assert!(holds(claim, v), "extend.{w} claim {claim:?} on {a:#x} -> {v:#x}");
        }
    }
    // Constants are materialized sign-extended by definition.
    for value in [-1i64, 0, 1, i32::MIN as i64, i32::MAX as i64] {
        let inst = Inst::Const { dst: Reg(0), value, ty: Ty::I32 };
        let mut none = |_: Reg| ExtFacts::NONE;
        let claim = def_facts(&inst, Target::Ia64, Width::W32, &mut none);
        assert!(holds(claim, value), "const {value}");
    }
}

/// Interesting boundary values mixed into the random streams below.
const EDGE_I64: [i64; 10] = [
    0,
    1,
    -1,
    i32::MAX as i64,
    i32::MIN as i64,
    i64::MAX,
    i64::MIN,
    0xFFFF_FFFF,
    0x8000_0000,
    -0x8000_0001,
];

fn sample_i64(rng: &mut XorShift, i: usize) -> i64 {
    if i < EDGE_I64.len() {
        EDGE_I64[i]
    } else {
        rng.any_i64()
    }
}

/// The low 32 bits of the machine's 64-bit operation equal the true
/// wrapping 32-bit operation, **given each operand prepared per its
/// classification**: operands `classify_uses` marks `Required`
/// (the dividend/divisor, the arithmetic-shift input) are
/// sign-extended, all others are raw — the machine-model premise.
#[test]
fn int_bin_low32_matches_i32_semantics() {
    let mut rng = XorShift::new(0x5eed_0001);
    for case in 0..4096 {
        let a = sample_i64(&mut rng, case % 16);
        let b = sample_i64(&mut rng, (case / 16) % 16);
        let op = OPS[rng.index(OPS.len())];
        let (a32, b32) = (a as i32, b as i32);
        // Prepare Required operands.
        let (a, b) = match op {
            BinOp::Shr => (a32 as i64, b),
            BinOp::Div | BinOp::Rem => (a32 as i64, b32 as i64),
            _ => (a, b),
        };
        let expect: Option<i32> = match op {
            BinOp::Add => Some(a32.wrapping_add(b32)),
            BinOp::Sub => Some(a32.wrapping_sub(b32)),
            BinOp::Mul => Some(a32.wrapping_mul(b32)),
            BinOp::Div => (b32 != 0).then(|| a32.wrapping_div(b32)),
            BinOp::Rem => (b32 != 0).then(|| a32.wrapping_rem(b32)),
            BinOp::And => Some(a32 & b32),
            BinOp::Or => Some(a32 | b32),
            BinOp::Xor => Some(a32 ^ b32),
            BinOp::Shl => Some(a32.wrapping_shl((b & 31) as u32)),
            BinOp::Shr => Some(a32.wrapping_shr((b & 31) as u32)),
            BinOp::Shru => Some(((a32 as u32) >> (b & 31)) as i32),
        };
        match (int_bin(op, a, b, Ty::I32), expect) {
            (Some(raw), Some(e)) => assert_eq!(raw as i32, e, "{op:?} a={a:#x} b={b:#x}"),
            (None, None) => {}
            (got, want) => panic!("{op:?}: got {got:?} want {want:?}"),
        }
    }
}

/// 32-bit compares depend only on the low 32 bits.
#[test]
fn cmp32_ignores_upper_bits() {
    let mut rng = XorShift::new(0x5eed_0002);
    for case in 0..4096 {
        let a = sample_i64(&mut rng, case % 16);
        let b = sample_i64(&mut rng, (case / 16) % 16);
        let garbage = (rng.any_i32() as i64) << 32;
        for cond in
            [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge, Cond::Ult, Cond::Uge]
        {
            assert_eq!(
                int_cond(cond, Ty::I32, a, b),
                int_cond(cond, Ty::I32, a ^ garbage, b),
                "{cond} a={a:#x} b={b:#x} garbage={garbage:#x}"
            );
        }
    }
}
