//! # sxe-ir — a compiler IR for studying sign-extension elimination
//!
//! This crate provides the intermediate representation used throughout the
//! `sxe` workspace, a from-scratch reproduction of *Effective Sign
//! Extension Elimination* (Kawahito, Komatsu, Nakatani; IBM Research
//! Report RT0442 / PLDI 2002).
//!
//! The IR is a non-SSA register machine modelling a 64-bit architecture:
//!
//! * Every register is 64 bits wide. Operations at [`Ty::I32`] produce
//!   results whose low 32 bits are always correct and whose upper 32 bits
//!   are unspecified unless an [`Inst::Extend`] re-establishes them.
//! * [`Inst::Extend`] is the explicit sign extension (IA64 `sxt4`, PPC
//!   `extsw`) whose dynamic count the paper's evaluation measures.
//! * Array accesses follow Java semantics: a negative or out-of-range
//!   index traps, the bounds check compares only the low 32 bits of the
//!   index, and the effective address uses the full register — the
//!   premise of the paper's §3 array-subscript theorems.
//!
//! ## Quick example
//!
//! ```
//! use sxe_ir::{FunctionBuilder, Ty, BinOp, Width, verify_function};
//!
//! let mut b = FunctionBuilder::new("inc", vec![Ty::I32], Some(Ty::I32));
//! let x = b.param(0);
//! let one = b.iconst(Ty::I32, 1);
//! b.bin_to(BinOp::Add, Ty::I32, x, x, one); // x = x + 1 (32-bit)
//! b.extend_in_place(x, Width::W32);         // x = extend(x)
//! b.ret(Some(x));
//! let f = b.finish();
//! verify_function(&f)?;
//! assert_eq!(f.count_extends(None), 1);
//! # Ok::<(), sxe_ir::VerifyError>(())
//! ```
//!
//! The sibling crates build on this one: `sxe-analysis` (dataflow, UD/DU
//! chains, value ranges), `sxe-core` (the paper's elimination algorithms),
//! `sxe-opt` (general optimizations), `sxe-vm` (a machine-model
//! interpreter), and `sxe-bench` (the table/figure reproduction harness).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod budget;
mod builder;
mod cfg;
mod display;
mod dom;
pub mod eval;
mod function;
mod inst;
mod loops;
mod parse;
pub mod rng;
pub mod semantics;
mod types;
mod verify;

pub use budget::Budget;
pub use builder::FunctionBuilder;
pub use cfg::Cfg;
pub use display::{block_to_string, inst_to_string};
pub use dom::DomTree;
pub use function::{Block, Function, InstId, Module};
pub use inst::{BinOp, BlockId, FuncId, Inst, Reg, UnOp};
pub use loops::{Loop, LoopForest};
pub use parse::{parse_function, parse_module, ParseError};
pub use semantics::{ExtFacts, UseKind};
pub use types::{Cond, Target, Ty, Width};
pub use verify::{verify_function, verify_module, VerifyError};

/// Kinds of run-time traps the machine model can raise.
///
/// Defined here (rather than in the VM crate) because trap behaviour is
/// part of the IR's semantics: optimizations must preserve it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// Array access with the low 32 bits of the index out of `0..len`
    /// (Java `ArrayIndexOutOfBoundsException`).
    IndexOutOfBounds,
    /// Array allocation with a negative length
    /// (Java `NegativeArraySizeException`).
    NegativeArraySize,
    /// Integer division or remainder by zero
    /// (Java `ArithmeticException`).
    DivisionByZero,
    /// The low-32-bit bounds check passed but the full 64-bit register
    /// held a different value, so the effective address would fall outside
    /// the array. This is a *miscompilation indicator*: a sound
    /// sign-extension eliminator never produces it (paper §3, Theorems
    /// 1–4).
    WildAddress,
    /// Resource limit of the interpreter exceeded (fuel or memory); not a
    /// program semantics trap.
    ResourceExhausted,
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrapKind::IndexOutOfBounds => "index out of bounds",
            TrapKind::NegativeArraySize => "negative array size",
            TrapKind::DivisionByZero => "division by zero",
            TrapKind::WildAddress => "wild address (unsound sign-extension elimination)",
            TrapKind::ResourceExhausted => "resource exhausted",
        };
        f.write_str(s)
    }
}
