//! Natural-loop discovery and loop-nesting depth.
//!
//! The order-determination phase (paper §2.2) estimates block execution
//! frequency "from both the loop nesting level of B and the execution
//! frequency of B within its acyclic region"; this module supplies the loop
//! nesting structure.

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::inst::BlockId;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop body, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Sources of the back edges into `header`.
    pub latches: Vec<BlockId>,
    /// Index of the innermost enclosing loop in
    /// [`LoopForest::loops`], if any.
    pub parent: Option<usize>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
}

/// All natural loops of a function, with per-block nesting depths.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// The loops, in no particular order except that parents precede
    /// children is **not** guaranteed; use [`Loop::parent`].
    pub loops: Vec<Loop>,
    depth: Vec<u32>,
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Discover the natural loops of the CFG.
    ///
    /// Back edges are edges `t -> h` where `h` dominates `t`; the natural
    /// loop of a header is the union of the natural loops of all its back
    /// edges. Irreducible cycles (none are produced by the builder-based
    /// front ends here) are ignored.
    #[must_use]
    pub fn compute(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let n = cfg.num_blocks();
        // Gather back edges grouped by header.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    match headers.iter().position(|&h| h == s) {
                        Some(i) => latches_of[i].push(b),
                        None => {
                            headers.push(s);
                            latches_of.push(vec![b]);
                        }
                    }
                }
            }
        }

        // Natural loop body: header + all blocks that reach a latch without
        // passing through the header (walk predecessors backward).
        let mut loops: Vec<Loop> = Vec::new();
        for (h, latches) in headers.iter().zip(&latches_of) {
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(*h);
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in latches {
                if blocks.insert(l) {
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) && blocks.insert(p) {
                        stack.push(p);
                    }
                }
            }
            loops.push(Loop {
                header: *h,
                blocks,
                latches: latches.clone(),
                parent: None,
                depth: 0,
            });
        }

        // Parent: the smallest other loop strictly containing this loop's
        // header whose block set is a superset.
        let containing: Vec<Option<usize>> = (0..loops.len())
            .map(|i| {
                let mut best: Option<usize> = None;
                for (j, other) in loops.iter().enumerate() {
                    if i != j
                        && other.blocks.contains(&loops[i].header)
                        && other.header != loops[i].header
                        && other.blocks.is_superset(&loops[i].blocks)
                    {
                        best = match best {
                            None => Some(j),
                            Some(b) if loops[j].blocks.len() < loops[b].blocks.len() => Some(j),
                            Some(b) => Some(b),
                        };
                    }
                }
                best
            })
            .collect();
        for (i, p) in containing.iter().enumerate() {
            loops[i].parent = *p;
        }
        // Depth via parent chains.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = d;
        }

        // Per-block depth and innermost loop.
        let mut depth = vec![0u32; n];
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                if l.depth > depth[b.index()] {
                    depth[b.index()] = l.depth;
                    innermost[b.index()] = Some(i);
                }
            }
        }
        LoopForest { loops, depth, innermost }
    }

    /// Loop-nesting depth of block `b` (0 outside all loops).
    #[must_use]
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Index into [`LoopForest::loops`] of the innermost loop containing
    /// `b`, if any.
    #[must_use]
    pub fn innermost(&self, b: BlockId) -> Option<usize> {
        self.innermost[b.index()]
    }

    /// Whether the function contains any loop (insertion is applied "only
    /// to those methods which include a loop", paper §2.1).
    #[must_use]
    pub fn has_loops(&self) -> bool {
        !self.loops.is_empty()
    }

    /// Whether block `b` is a loop header.
    #[must_use]
    pub fn is_header(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.header == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{Cond, Ty};
    use crate::{BinOp, Function};

    /// Two nested loops:
    /// entry -> outer_head; outer_head -> {inner_head, exit};
    /// inner_head -> {inner_body, outer_latch}; inner_body -> inner_head;
    /// outer_latch -> outer_head.
    fn nested() -> Function {
        let mut fb = FunctionBuilder::new("f", vec![Ty::I32, Ty::I32], None);
        let i = fb.param(0);
        let j = fb.param(1);
        let zero = fb.iconst(Ty::I32, 0);
        let oh = fb.new_block();
        let ih = fb.new_block();
        let ib = fb.new_block();
        let ol = fb.new_block();
        let exit = fb.new_block();
        fb.br(oh);
        fb.switch_to(oh);
        fb.cond_br(Cond::Gt, Ty::I32, i, zero, ih, exit);
        fb.switch_to(ih);
        fb.cond_br(Cond::Gt, Ty::I32, j, zero, ib, ol);
        fb.switch_to(ib);
        let one = fb.iconst(Ty::I32, 1);
        fb.bin_to(BinOp::Sub, Ty::I32, j, j, one);
        fb.br(ih);
        fb.switch_to(ol);
        let one2 = fb.iconst(Ty::I32, 1);
        fb.bin_to(BinOp::Sub, Ty::I32, i, i, one2);
        fb.br(oh);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn nested_loop_depths() {
        let f = nested();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        assert!(lf.has_loops());
        assert_eq!(lf.loops.len(), 2);
        let (entry, oh, ih, ib, ol, exit) = (
            BlockId(0),
            BlockId(1),
            BlockId(2),
            BlockId(3),
            BlockId(4),
            BlockId(5),
        );
        assert_eq!(lf.depth(entry), 0);
        assert_eq!(lf.depth(oh), 1);
        assert_eq!(lf.depth(ih), 2);
        assert_eq!(lf.depth(ib), 2);
        assert_eq!(lf.depth(ol), 1);
        assert_eq!(lf.depth(exit), 0);
        assert!(lf.is_header(oh));
        assert!(lf.is_header(ih));
        assert!(!lf.is_header(ib));

        let inner_idx = lf.innermost(ib).unwrap();
        assert_eq!(lf.loops[inner_idx].header, ih);
        assert_eq!(lf.loops[inner_idx].parent.map(|p| lf.loops[p].header), Some(oh));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut fb = FunctionBuilder::new("g", vec![], None);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        assert!(!lf.has_loops());
        assert_eq!(lf.depth(BlockId(0)), 0);
    }

    #[test]
    fn self_loop() {
        let mut fb = FunctionBuilder::new("h", vec![Ty::I32], None);
        let x = fb.param(0);
        let zero = fb.iconst(Ty::I32, 0);
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(body);
        fb.switch_to(body);
        let one = fb.iconst(Ty::I32, 1);
        fb.bin_to(BinOp::Sub, Ty::I32, x, x, one);
        fb.cond_br(Cond::Gt, Ty::I32, x, zero, body, exit);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let lf = LoopForest::compute(&cfg, &dom);
        assert_eq!(lf.loops.len(), 1);
        assert_eq!(lf.loops[0].header, body);
        assert_eq!(lf.loops[0].latches, vec![body]);
        assert_eq!(lf.depth(body), 1);
    }
}
