//! Control-flow graph utilities: predecessor maps and block orderings.

use crate::function::Function;
use crate::inst::BlockId;

/// Predecessor/successor maps plus depth-first orderings over a function's
/// CFG, computed once and then queried.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder of a DFS from the entry. Unreachable
    /// blocks are excluded.
    rpo: Vec<BlockId>,
    /// `rpo_index[b] == Some(i)` iff `rpo[i] == b`; `None` for unreachable
    /// blocks.
    rpo_index: Vec<Option<u32>>,
}

impl Cfg {
    /// Compute the CFG of `f`.
    #[must_use]
    pub fn compute(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for b in f.block_ids() {
            let ss = f.block(b).successors();
            for s in &ss {
                preds[s.index()].push(b);
            }
            succs[b.index()] = ss;
        }

        // Iterative postorder DFS from the entry.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack of (block, next successor index to visit).
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
        visited[f.entry().index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *i < ss.len() {
                let next = ss[*i];
                *i += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let mut rpo = post;
        rpo.reverse();
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i as u32);
        }
        Cfg { preds, succs, rpo, rpo_index }
    }

    /// Predecessors of `b` (in no particular order).
    #[must_use]
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`, in terminator order.
    #[must_use]
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks in reverse postorder (entry first); unreachable blocks are
    /// omitted.
    #[must_use]
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse postorder, or `None` if unreachable.
    #[must_use]
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index[b.index()].map(|i| i as usize)
    }

    /// Whether `b` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()].is_some()
    }

    /// Number of blocks in the function (including unreachable ones).
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{Cond, Ty};

    /// entry -> (loop_head -> loop_body -> loop_head | exit)
    fn loopy() -> Function {
        let mut b = FunctionBuilder::new("f", vec![Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let zero = b.iconst(Ty::I32, 0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        b.cond_br(Cond::Gt, Ty::I32, x, zero, body, exit);
        b.switch_to(body);
        let one = b.iconst(Ty::I32, 1);
        b.bin_to(crate::BinOp::Sub, Ty::I32, x, x, one);
        b.br(head);
        b.switch_to(exit);
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn preds_and_succs() {
        let f = loopy();
        let cfg = Cfg::compute(&f);
        let (entry, head, body, exit) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(cfg.succs(entry), &[head]);
        let mut hp = cfg.preds(head).to_vec();
        hp.sort();
        assert_eq!(hp, vec![entry, body]);
        assert_eq!(cfg.preds(exit), &[head]);
        assert_eq!(cfg.succs(head), &[body, exit]);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = loopy();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.rpo().len(), 4);
        // Entry precedes head precedes body and exit.
        let idx = |b| cfg.rpo_index(b).unwrap();
        assert!(idx(BlockId(0)) < idx(BlockId(1)));
        assert!(idx(BlockId(1)) < idx(BlockId(2)));
        assert!(idx(BlockId(1)) < idx(BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut f = loopy();
        let dead = f.new_block();
        f.block_mut(dead).insts.push(crate::Inst::Ret { value: None });
        let cfg = Cfg::compute(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo_index(dead), None);
        assert_eq!(cfg.rpo().len(), 4);
    }
}
