//! Parser for the textual IR form produced by [`crate::display`].
//!
//! ```
//! let m = sxe_ir::parse_module(
//!     "func @id(i32) -> i32 {\nb0:\n    ret r0\n}\n",
//! ).unwrap();
//! assert_eq!(m.functions.len(), 1);
//! ```

use std::fmt;

use crate::function::{Block, Function, Module};
use crate::inst::{BinOp, BlockId, FuncId, Inst, Reg, UnOp};
use crate::types::{Cond, Ty, Width};

/// Error produced when parsing textual IR fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

fn parse_ty(s: &str, line: usize) -> Result<Ty, ParseError> {
    match s {
        "i8" => Ok(Ty::I8),
        "i16" => Ok(Ty::I16),
        "i32" => Ok(Ty::I32),
        "i64" => Ok(Ty::I64),
        "f64" => Ok(Ty::F64),
        _ => err(line, format!("unknown type `{s}`")),
    }
}

fn parse_width(s: &str, line: usize) -> Result<Width, ParseError> {
    match s {
        "8" => Ok(Width::W8),
        "16" => Ok(Width::W16),
        "32" => Ok(Width::W32),
        _ => err(line, format!("unknown width `{s}`")),
    }
}

fn parse_cond(s: &str, line: usize) -> Result<Cond, ParseError> {
    match s {
        "eq" => Ok(Cond::Eq),
        "ne" => Ok(Cond::Ne),
        "lt" => Ok(Cond::Lt),
        "le" => Ok(Cond::Le),
        "gt" => Ok(Cond::Gt),
        "ge" => Ok(Cond::Ge),
        "ult" => Ok(Cond::Ult),
        "ule" => Ok(Cond::Ule),
        "ugt" => Ok(Cond::Ugt),
        "uge" => Ok(Cond::Uge),
        _ => err(line, format!("unknown condition `{s}`")),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    let body = s
        .strip_prefix('r')
        .ok_or_else(|| ParseError { line, message: format!("expected register, got `{s}`") })?;
    body.parse::<u32>()
        .map(Reg)
        .map_err(|_| ParseError { line, message: format!("bad register `{s}`") })
}

fn parse_block_id(s: &str, line: usize) -> Result<BlockId, ParseError> {
    let body = s
        .strip_prefix('b')
        .ok_or_else(|| ParseError { line, message: format!("expected block, got `{s}`") })?;
    body.parse::<u32>()
        .map(BlockId)
        .map_err(|_| ParseError { line, message: format!("bad block `{s}`") })
}

fn parse_bin_op(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "shru" => BinOp::Shru,
        _ => return None,
    })
}

fn parse_un_op(s: &str) -> Option<UnOp> {
    Some(match s {
        "neg" => UnOp::Neg,
        "not" => UnOp::Not,
        "i32tof64" => UnOp::I32ToF64,
        "i64tof64" => UnOp::I64ToF64,
        "f64toi32" => UnOp::F64ToI32,
        "f64toi64" => UnOp::F64ToI64,
        "fneg" => UnOp::FNeg,
        "fsqrt" => UnOp::FSqrt,
        "fabs" => UnOp::FAbs,
        "zext8" => UnOp::Zext(Width::W8),
        "zext16" => UnOp::Zext(Width::W16),
        "zext32" => UnOp::Zext(Width::W32),
        _ => return None,
    })
}

/// Split `name.suffix` at the *first* dot.
fn split_dot(s: &str) -> (&str, Option<&str>) {
    match s.find('.') {
        Some(i) => (&s[..i], Some(&s[i + 1..])),
        None => (s, None),
    }
}

struct PendingCall {
    func_name: String,
    line: usize,
}

/// Parse a full module from its textual form.
///
/// # Errors
/// Returns a [`ParseError`] naming the offending line on malformed input.
/// Function references (`@name`) may be forward references; they are
/// resolved after all functions have been parsed.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new();
    // (function index, inst position) -> callee name, resolved at the end.
    let mut pending: Vec<(usize, crate::InstId, PendingCall)> = Vec::new();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln0, raw)) = lines.next() {
        let line = ln0 + 1;
        let l = strip_comment(raw).trim();
        if l.is_empty() {
            continue;
        }
        let Some(rest) = l.strip_prefix("func ") else {
            return err(line, format!("expected `func`, got `{l}`"));
        };
        // Signature: @name(ty, ty) [-> ty] {
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix('@') else {
            return err(line, "expected `@name`");
        };
        let open = rest
            .find('(')
            .ok_or_else(|| ParseError { line, message: "expected `(`".into() })?;
        let name = rest[..open].to_string();
        let close = rest
            .find(')')
            .ok_or_else(|| ParseError { line, message: "expected `)`".into() })?;
        let params_src = &rest[open + 1..close];
        let mut params = Vec::new();
        for p in params_src.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            params.push(parse_ty(p, line)?);
        }
        let tail = rest[close + 1..].trim();
        let (ret, tail) = match tail.strip_prefix("->") {
            Some(t) => {
                let t = t.trim();
                let (ty_str, brace) = t
                    .split_once('{')
                    .ok_or_else(|| ParseError { line, message: "expected `{`".into() })?;
                let _ = brace;
                (Some(parse_ty(ty_str.trim(), line)?), "{")
            }
            None => (None, tail),
        };
        if !tail.starts_with('{') {
            return err(line, "expected `{` after signature");
        }

        let mut func = Function::new(name, params, ret);
        func.blocks.clear();
        let fidx = module.functions.len();
        let mut max_reg = func.reg_count;

        // Body until `}`.
        let mut cur_block: Option<usize> = None;
        loop {
            let Some((ln0, raw)) = lines.next() else {
                return err(line, "unexpected end of input inside function");
            };
            let bline = ln0 + 1;
            let l = strip_comment(raw).trim();
            if l.is_empty() {
                continue;
            }
            if l == "}" {
                break;
            }
            if let Some(lbl) = l.strip_suffix(':') {
                let id = parse_block_id(lbl, bline)?;
                if id.index() != func.blocks.len() {
                    return err(bline, format!("blocks must be declared in order, got {lbl}"));
                }
                func.blocks.push(Block::default());
                cur_block = Some(id.index());
                continue;
            }
            let Some(bi) = cur_block else {
                return err(bline, "instruction before first block label");
            };
            let (inst, callee) = parse_inst(l, bline)?;
            for u in inst.uses() {
                max_reg = max_reg.max(u.0 + 1);
            }
            if let Some(d) = inst.dst() {
                max_reg = max_reg.max(d.0 + 1);
            }
            let iid = crate::InstId::new(BlockId(bi as u32), func.blocks[bi].insts.len());
            func.blocks[bi].insts.push(inst);
            if let Some(c) = callee {
                pending.push((fidx, iid, c));
            }
        }
        func.reg_count = max_reg;
        module.functions.push(func);
    }

    // Resolve callee names.
    for (fidx, iid, call) in pending {
        let target = module
            .function_by_name(&call.func_name)
            .ok_or_else(|| ParseError {
                line: call.line,
                message: format!("unknown function `@{}`", call.func_name),
            })?;
        if let Inst::Call { func, .. } = module.functions[fidx].inst_mut(iid) {
            *func = target;
        }
    }
    Ok(module)
}

/// Parse a single function (convenience for tests).
///
/// # Errors
/// Same as [`parse_module`]; additionally errors if the text does not
/// contain exactly one function.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let m = parse_module(text)?;
    if m.functions.len() != 1 {
        return err(0, format!("expected exactly one function, got {}", m.functions.len()));
    }
    Ok(m.functions.into_iter().next().expect("one function"))
}

fn strip_comment(l: &str) -> &str {
    match l.find("//") {
        Some(i) => &l[..i],
        None => l,
    }
}

type InstAndCallee = (Inst, Option<PendingCall>);

fn parse_inst(l: &str, line: usize) -> Result<InstAndCallee, ParseError> {
    // Forms: `dst = op ...` or `op ...`.
    if let Some((lhs, rhs)) = l.split_once('=') {
        let dst = parse_reg(lhs.trim(), line)?;
        let (inst, callee) = parse_rhs(dst, rhs.trim(), line)?;
        Ok((inst, callee))
    } else {
        parse_stmt(l, line)
    }
}

fn operands(s: &str, line: usize) -> Result<Vec<Reg>, ParseError> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| parse_reg(p, line))
        .collect()
}

fn parse_rhs(dst: Reg, rhs: &str, line: usize) -> Result<InstAndCallee, ParseError> {
    let (head, tail) = match rhs.split_once(' ') {
        Some((h, t)) => (h, t.trim()),
        None => (rhs, ""),
    };
    if head == "call" || head.starts_with("call") && tail.is_empty() {
        return parse_call(Some(dst), rhs, line);
    }
    let (op, suffix) = split_dot(head);
    match op {
        "const" => {
            let ty = parse_ty(suffix.unwrap_or(""), line)?;
            let value = tail
                .parse::<i64>()
                .map_err(|_| ParseError { line, message: format!("bad constant `{tail}`") })?;
            Ok((Inst::Const { dst, value, ty }, None))
        }
        "constf" => {
            let value = tail
                .parse::<f64>()
                .map_err(|_| ParseError { line, message: format!("bad float `{tail}`") })?;
            Ok((Inst::ConstF { dst, value }, None))
        }
        "copy" => {
            let ty = parse_ty(suffix.unwrap_or(""), line)?;
            let src = parse_reg(tail, line)?;
            Ok((Inst::Copy { dst, src, ty }, None))
        }
        "extend" => {
            let from = parse_width(suffix.unwrap_or(""), line)?;
            let src = parse_reg(tail, line)?;
            Ok((Inst::Extend { dst, src, from }, None))
        }
        "justext" => {
            let from = parse_width(suffix.unwrap_or(""), line)?;
            let src = parse_reg(tail, line)?;
            Ok((Inst::JustExtended { dst, src, from }, None))
        }
        "newarray" => {
            let elem = parse_ty(suffix.unwrap_or(""), line)?;
            let len = parse_reg(tail, line)?;
            Ok((Inst::NewArray { dst, len, elem }, None))
        }
        "len" => {
            let array = parse_reg(tail, line)?;
            Ok((Inst::ArrayLen { dst, array }, None))
        }
        "aload" => {
            let elem = parse_ty(suffix.unwrap_or(""), line)?;
            let ops = operands(tail, line)?;
            if ops.len() != 2 {
                return err(line, "aload needs `array, index`");
            }
            Ok((Inst::ArrayLoad { dst, array: ops[0], index: ops[1], elem }, None))
        }
        "set" => {
            // set.<cond>.<ty>
            let (cond_s, ty_s) = split_dot(suffix.unwrap_or(""));
            let cond = parse_cond(cond_s, line)?;
            let ty = parse_ty(ty_s.unwrap_or(""), line)?;
            let ops = operands(tail, line)?;
            if ops.len() != 2 {
                return err(line, "set needs two operands");
            }
            Ok((Inst::Setcc { cond, ty, dst, lhs: ops[0], rhs: ops[1] }, None))
        }
        _ => {
            if let Some(bin) = parse_bin_op(op) {
                let ty = parse_ty(suffix.unwrap_or(""), line)?;
                let ops = operands(tail, line)?;
                if ops.len() != 2 {
                    return err(line, format!("{op} needs two operands"));
                }
                return Ok((Inst::Bin { op: bin, ty, dst, lhs: ops[0], rhs: ops[1] }, None));
            }
            if let Some(un) = parse_un_op(op) {
                let ty = parse_ty(suffix.unwrap_or(""), line)?;
                let src = parse_reg(tail, line)?;
                return Ok((Inst::Un { op: un, ty, dst, src }, None));
            }
            err(line, format!("unknown instruction `{op}`"))
        }
    }
}

fn parse_call(dst: Option<Reg>, text: &str, line: usize) -> Result<InstAndCallee, ParseError> {
    // call @name(r1, r2)
    let rest = text
        .trim()
        .strip_prefix("call")
        .ok_or_else(|| ParseError { line, message: "expected `call`".into() })?
        .trim();
    let rest = rest
        .strip_prefix('@')
        .ok_or_else(|| ParseError { line, message: "expected `@name`".into() })?;
    let open = rest
        .find('(')
        .ok_or_else(|| ParseError { line, message: "expected `(`".into() })?;
    let name = rest[..open].to_string();
    let close = rest
        .rfind(')')
        .ok_or_else(|| ParseError { line, message: "expected `)`".into() })?;
    let args = operands(&rest[open + 1..close], line)?;
    Ok((
        Inst::Call { dst, func: FuncId(u32::MAX), args },
        Some(PendingCall { func_name: name, line }),
    ))
}

fn parse_stmt(l: &str, line: usize) -> Result<InstAndCallee, ParseError> {
    let (head, tail) = match l.split_once(' ') {
        Some((h, t)) => (h, t.trim()),
        None => (l, ""),
    };
    let (op, suffix) = split_dot(head);
    match op {
        "nop" => Ok((Inst::Nop, None)),
        "astore" => {
            let elem = parse_ty(suffix.unwrap_or(""), line)?;
            let ops = operands(tail, line)?;
            if ops.len() != 3 {
                return err(line, "astore needs `array, index, src`");
            }
            Ok((Inst::ArrayStore { array: ops[0], index: ops[1], src: ops[2], elem }, None))
        }
        "call" => parse_call(None, l, line),
        "br" => Ok((Inst::Br { target: parse_block_id(tail, line)? }, None)),
        "condbr" => {
            // condbr <cond>.<ty> lhs, rhs, then, else
            let (ct, rest) = tail
                .split_once(' ')
                .ok_or_else(|| ParseError { line, message: "condbr needs operands".into() })?;
            let (cond_s, ty_s) = split_dot(ct);
            let cond = parse_cond(cond_s, line)?;
            let ty = parse_ty(ty_s.unwrap_or(""), line)?;
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 4 {
                return err(line, "condbr needs `lhs, rhs, then, else`");
            }
            Ok((
                Inst::CondBr {
                    cond,
                    ty,
                    lhs: parse_reg(parts[0], line)?,
                    rhs: parse_reg(parts[1], line)?,
                    then_bb: parse_block_id(parts[2], line)?,
                    else_bb: parse_block_id(parts[3], line)?,
                },
                None,
            ))
        }
        "ret" => {
            let value = if tail.is_empty() { None } else { Some(parse_reg(tail, line)?) };
            Ok((Inst::Ret { value }, None))
        }
        _ => err(line, format!("unknown statement `{op}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROUNDTRIP: &str = "\
func @kernel(i32, i32) -> f64 {
b0:
    r2 = const.i32 10
    r3 = constf 2.5
    r4 = newarray.i32 r2
    r5 = len r4
    br b1
b1:
    r6 = add.i32 r0, r1
    r6 = extend.32 r6
    r7 = aload.i32 r4, r6
    r7 = justext.32 r7
    astore.i16 r4, r6, r7
    r8 = set.lt.i32 r7, r5
    condbr gt.i64 r8, r2, b1, b2
b2:
    r9 = i32tof64.f64 r6
    nop
    ret r9
}
";

    #[test]
    fn round_trip() {
        let m = parse_module(ROUNDTRIP).expect("parses");
        let printed = m.to_string();
        let m2 = parse_module(&printed).expect("reparses");
        assert_eq!(m, m2);
    }

    #[test]
    fn parses_signature() {
        let f = parse_function("func @g(i32, f64) -> i64 {\nb0:\n    ret r2\n}\n").unwrap();
        assert_eq!(f.name, "g");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(Ty::I64));
        assert_eq!(f.reg_count, 3);
    }

    #[test]
    fn void_function() {
        let f = parse_function("func @v() {\nb0:\n    ret\n}\n").unwrap();
        assert_eq!(f.ret, None);
        assert!(f.params.is_empty());
    }

    #[test]
    fn comments_ignored() {
        let f = parse_function(
            "// header\nfunc @c() {\nb0: // entry\n    ret // done\n}\n",
        )
        .unwrap();
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn calls_resolve_forward() {
        let m = parse_module(
            "func @a() -> i32 {\nb0:\n    r0 = call @b()\n    ret r0\n}\n\
             func @b() -> i32 {\nb0:\n    r0 = const.i32 3\n    ret r0\n}\n",
        )
        .unwrap();
        let a = m.function(m.function_by_name("a").unwrap());
        match &a.blocks[0].insts[0] {
            Inst::Call { func, .. } => assert_eq!(*func, m.function_by_name("b").unwrap()),
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let e = parse_module("func @x() {\nb0:\n    r0 = bogus.i32 r1\n}\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unknown_callee_is_error() {
        let e = parse_module("func @x() {\nb0:\n    call @nope()\n    ret\n}\n").unwrap_err();
        assert!(e.message.contains("nope"));
    }
}
