//! A convenient builder for constructing IR functions.
//!
//! Workload kernels and tests use this DSL; it tracks a *current block* and
//! appends instructions to it, allocating fresh destination registers:
//!
//! ```
//! use sxe_ir::{FunctionBuilder, Ty, BinOp, Cond};
//!
//! let mut b = FunctionBuilder::new("add1", vec![Ty::I32], Some(Ty::I32));
//! let x = b.param(0);
//! let one = b.iconst(Ty::I32, 1);
//! let y = b.bin(BinOp::Add, Ty::I32, x, one);
//! b.ret(Some(y));
//! let func = b.finish();
//! assert_eq!(func.name, "add1");
//! ```

use crate::function::{Block, Function, InstId};
use crate::inst::{BinOp, BlockId, FuncId, Inst, Reg, UnOp};
use crate::types::{Cond, Ty, Width};

/// Incrementally constructs a [`Function`].
///
/// See the crate-level builder example in the module documentation.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Start building a function with the given signature. The entry block
    /// is current.
    #[must_use]
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> FunctionBuilder {
        let func = Function::new(name, params, ret);
        let cur = func.entry();
        FunctionBuilder { func, cur }
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn param(&self, i: usize) -> Reg {
        self.func.params[i].0
    }

    /// Allocate a fresh register without emitting anything.
    pub fn new_reg(&mut self) -> Reg {
        self.func.new_reg()
    }

    /// Create a new (empty, unpositioned) block.
    pub fn new_block(&mut self) -> BlockId {
        self.func.new_block()
    }

    /// Make `b` the current block for subsequent instructions.
    ///
    /// # Panics
    /// Panics if `b` already has a terminator.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            self.func.block(b).terminator().is_none(),
            "block {b} is already terminated"
        );
        self.cur = b;
    }

    /// The block instructions are currently appended to.
    #[must_use]
    pub fn current(&self) -> BlockId {
        self.cur
    }

    fn push(&mut self, inst: Inst) -> InstId {
        let blk = self.func.block_mut(self.cur);
        debug_assert!(
            blk.terminator().is_none(),
            "appending after terminator in {}",
            self.cur
        );
        blk.insts.push(inst);
        InstId::new(self.cur, blk.insts.len() - 1)
    }

    /// Emit an integer constant.
    pub fn iconst(&mut self, ty: Ty, value: i64) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Const { dst, value, ty });
        dst
    }

    /// Emit a float constant.
    pub fn fconst(&mut self, value: f64) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::ConstF { dst, value });
        dst
    }

    /// Emit a copy into a fresh register.
    pub fn copy(&mut self, ty: Ty, src: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Copy { dst, src, ty });
        dst
    }

    /// Emit a copy into an existing register (mutating IR style, as the
    /// paper's examples use: `i = j`).
    pub fn copy_to(&mut self, ty: Ty, dst: Reg, src: Reg) {
        self.push(Inst::Copy { dst, src, ty });
    }

    /// Emit a binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, ty: Ty, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Bin { op, ty, dst, lhs, rhs });
        dst
    }

    /// Emit a binary operation into an existing register (`i = i + 1`).
    pub fn bin_to(&mut self, op: BinOp, ty: Ty, dst: Reg, lhs: Reg, rhs: Reg) {
        self.push(Inst::Bin { op, ty, dst, lhs, rhs });
    }

    /// Emit a unary operation into a fresh register.
    pub fn un(&mut self, op: UnOp, ty: Ty, src: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Un { op, ty, dst, src });
        dst
    }

    /// Emit a unary operation into an existing register.
    pub fn un_to(&mut self, op: UnOp, ty: Ty, dst: Reg, src: Reg) {
        self.push(Inst::Un { op, ty, dst, src });
    }

    /// Emit a compare-and-set (0/1 result).
    pub fn setcc(&mut self, cond: Cond, ty: Ty, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Setcc { cond, ty, dst, lhs, rhs });
        dst
    }

    /// Emit an explicit sign extension into a fresh register.
    pub fn extend(&mut self, src: Reg, from: Width) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::Extend { dst, src, from });
        dst
    }

    /// Emit an in-place sign extension `r = extend(r)`, the canonical form
    /// the elimination passes operate on.
    pub fn extend_in_place(&mut self, r: Reg, from: Width) -> InstId {
        self.push(Inst::Extend { dst: r, src: r, from })
    }

    /// Emit an array allocation.
    pub fn new_array(&mut self, elem: Ty, len: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::NewArray { dst, len, elem });
        dst
    }

    /// Emit an array-length read.
    pub fn array_len(&mut self, array: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::ArrayLen { dst, array });
        dst
    }

    /// Emit an array load into a fresh register.
    pub fn array_load(&mut self, elem: Ty, array: Reg, index: Reg) -> Reg {
        let dst = self.func.new_reg();
        self.push(Inst::ArrayLoad { dst, array, index, elem });
        dst
    }

    /// Emit an array load into an existing register (`j = a[i]`).
    pub fn array_load_to(&mut self, elem: Ty, dst: Reg, array: Reg, index: Reg) {
        self.push(Inst::ArrayLoad { dst, array, index, elem });
    }

    /// Emit an array store.
    pub fn array_store(&mut self, elem: Ty, array: Reg, index: Reg, src: Reg) {
        self.push(Inst::ArrayStore { array, index, src, elem });
    }

    /// Emit a call.
    pub fn call(&mut self, func: FuncId, args: Vec<Reg>, has_result: bool) -> Option<Reg> {
        let dst = has_result.then(|| self.func.new_reg());
        self.push(Inst::Call { dst, func, args });
        dst
    }

    /// Terminate the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Inst::Br { target });
    }

    /// Terminate the current block with a conditional branch.
    pub fn cond_br(
        &mut self,
        cond: Cond,
        ty: Ty,
        lhs: Reg,
        rhs: Reg,
        then_bb: BlockId,
        else_bb: BlockId,
    ) {
        self.push(Inst::CondBr { cond, ty, lhs, rhs, then_bb, else_bb });
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.push(Inst::Ret { value });
    }

    /// Finish building, returning the function.
    ///
    /// The result is not verified; run
    /// [`verify`](crate::verify::verify_function) if the input is untrusted.
    #[must_use]
    pub fn finish(self) -> Function {
        self.func
    }

    /// Access the function under construction (for advanced uses such as
    /// emitting raw instructions).
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Append a raw instruction to the current block.
    pub fn raw(&mut self, inst: Inst) -> InstId {
        self.push(inst)
    }

    /// Current contents of the block under construction (test helper).
    #[must_use]
    pub fn current_block(&self) -> &Block {
        self.func.block(self.cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let c = b.iconst(Ty::I32, 41);
        let s = b.bin(BinOp::Add, Ty::I32, x, c);
        b.ret(Some(s));
        let f = b.finish();
        assert_eq!(f.inst_count(), 3);
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn diamond_cfg() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let zero = b.iconst(Ty::I32, 0);
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        b.cond_br(Cond::Lt, Ty::I32, x, zero, then_bb, else_bb);

        b.switch_to(then_bb);
        let n = b.un(UnOp::Neg, Ty::I32, x);
        b.copy_to(Ty::I32, x, n);
        b.br(join);

        b.switch_to(else_bb);
        b.br(join);

        b.switch_to(join);
        b.ret(Some(x));

        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.block(BlockId(0)).successors(), vec![then_bb, else_bb]);
        assert_eq!(f.block(then_bb).successors(), vec![join]);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn cannot_switch_to_terminated() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let entry = b.current();
        let next = b.new_block();
        b.br(next);
        b.switch_to(entry);
    }

    #[test]
    fn in_place_forms() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I32], Some(Ty::I32));
        let x = b.param(0);
        let one = b.iconst(Ty::I32, 1);
        b.bin_to(BinOp::Sub, Ty::I32, x, x, one);
        let id = b.extend_in_place(x, Width::W32);
        b.ret(Some(x));
        let f = b.finish();
        assert!(f.inst(id).is_extend(Some(Width::W32)));
        assert_eq!(f.count_extends(None), 1);
    }
}
