//! Textual form of the IR.
//!
//! The format round-trips through [`crate::parse`]:
//!
//! ```text
//! func @sum(i32, i32) -> i32 {
//! b0:
//!     r2 = add.i32 r0, r1
//!     r2 = extend.32 r2
//!     ret r2
//! }
//! ```

use std::fmt;

use crate::function::{Block, Function, Module};
use crate::inst::Inst;

struct InstDisplay<'a> {
    inst: &'a Inst,
    module: Option<&'a Module>,
}

impl fmt::Display for InstDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self.inst {
            Inst::Nop => write!(f, "nop"),
            Inst::Const { dst, value, ty } => write!(f, "{dst} = const.{ty} {value}"),
            Inst::ConstF { dst, value } => {
                // `{:?}` keeps round-trip precision for f64.
                write!(f, "{dst} = constf {value:?}")
            }
            Inst::Copy { dst, src, ty } => write!(f, "{dst} = copy.{ty} {src}"),
            Inst::Un { op, ty, dst, src } => write!(f, "{dst} = {op}.{ty} {src}"),
            Inst::Bin { op, ty, dst, lhs, rhs } => {
                write!(f, "{dst} = {op}.{ty} {lhs}, {rhs}")
            }
            Inst::Setcc { cond, ty, dst, lhs, rhs } => {
                write!(f, "{dst} = set.{cond}.{ty} {lhs}, {rhs}")
            }
            Inst::Extend { dst, src, from } => write!(f, "{dst} = extend.{from} {src}"),
            Inst::JustExtended { dst, src, from } => {
                write!(f, "{dst} = justext.{from} {src}")
            }
            Inst::NewArray { dst, len, elem } => write!(f, "{dst} = newarray.{elem} {len}"),
            Inst::ArrayLen { dst, array } => write!(f, "{dst} = len {array}"),
            Inst::ArrayLoad { dst, array, index, elem } => {
                write!(f, "{dst} = aload.{elem} {array}, {index}")
            }
            Inst::ArrayStore { array, index, src, elem } => {
                write!(f, "astore.{elem} {array}, {index}, {src}")
            }
            Inst::Call { dst, func, ref args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                match self.module {
                    Some(m) => write!(f, "call @{}(", m.function(func).name)?,
                    None => write!(f, "call {func}(")?,
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Br { target } => write!(f, "br {target}"),
            Inst::CondBr { cond, ty, lhs, rhs, then_bb, else_bb } => {
                write!(f, "condbr {cond}.{ty} {lhs}, {rhs}, {then_bb}, {else_bb}")
            }
            Inst::Ret { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
        }
    }
}

/// Render one instruction without module context (callees print as raw
/// function ids).
#[must_use]
pub fn inst_to_string(inst: &Inst) -> String {
    InstDisplay { inst, module: None }.to_string()
}

fn fmt_function(f: &Function, module: Option<&Module>, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(out, "func @{}(", f.name)?;
    for (i, (_, ty)) in f.params.iter().enumerate() {
        if i > 0 {
            write!(out, ", ")?;
        }
        write!(out, "{ty}")?;
    }
    write!(out, ")")?;
    if let Some(ret) = f.ret {
        write!(out, " -> {ret}")?;
    }
    writeln!(out, " {{")?;
    for (bi, blk) in f.blocks.iter().enumerate() {
        writeln!(out, "b{bi}:")?;
        for inst in &blk.insts {
            writeln!(out, "    {}", InstDisplay { inst, module })?;
        }
    }
    writeln!(out, "}}")
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_function(self, None, f)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            fmt_function(func, Some(self), f)?;
        }
        Ok(())
    }
}

/// Render a block body (without a label) for diagnostics.
#[must_use]
pub fn block_to_string(b: &Block) -> String {
    let mut s = String::new();
    for inst in &b.insts {
        s.push_str("    ");
        s.push_str(&inst_to_string(inst));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{Cond, Ty, Width};
    use crate::{BinOp, Reg, UnOp};

    #[test]
    fn prints_reasonably() {
        let mut b = FunctionBuilder::new("demo", vec![Ty::I32], Some(Ty::F64));
        let x = b.param(0);
        let c = b.iconst(Ty::I32, -5);
        let s = b.bin(BinOp::Add, Ty::I32, x, c);
        b.extend_in_place(s, Width::W32);
        let d = b.un(UnOp::I32ToF64, Ty::F64, s);
        b.ret(Some(d));
        let f = b.finish();
        let text = f.to_string();
        assert!(text.contains("func @demo(i32) -> f64 {"));
        assert!(text.contains("r1 = const.i32 -5"));
        assert!(text.contains("r2 = add.i32 r0, r1"));
        assert!(text.contains("r2 = extend.32 r2"));
        assert!(text.contains("r3 = i32tof64.f64 r2"));
        assert!(text.contains("ret r3"));
    }

    #[test]
    fn prints_control_flow() {
        let mut b = FunctionBuilder::new("cf", vec![Ty::I32], None);
        let x = b.param(0);
        let z = b.iconst(Ty::I32, 0);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(Cond::Ge, Ty::I32, x, z, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let text = f.to_string();
        assert!(text.contains("condbr ge.i32 r0, r1, b1, b2"));
    }

    #[test]
    fn prints_arrays_and_calls() {
        use crate::Module;
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("callee", vec![Ty::I32], Some(Ty::I32));
        let p = b.param(0);
        b.ret(Some(p));
        let callee = m.add_function(b.finish());

        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let n = b.iconst(Ty::I32, 8);
        let arr = b.new_array(Ty::I32, n);
        let len = b.array_len(arr);
        let i0 = b.iconst(Ty::I32, 0);
        let v = b.array_load(Ty::I32, arr, i0);
        b.array_store(Ty::I32, arr, i0, len);
        let r = b.call(callee, vec![v], true).unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());

        let text = m.to_string();
        assert!(text.contains("= newarray.i32 "));
        assert!(text.contains("= len "));
        assert!(text.contains("= aload.i32 "));
        assert!(text.contains("astore.i32 "));
        assert!(text.contains("call @callee("));
    }

    #[test]
    fn nop_prints() {
        assert_eq!(inst_to_string(&Inst::Nop), "nop");
        assert_eq!(
            inst_to_string(&Inst::JustExtended { dst: Reg(1), src: Reg(1), from: Width::W32 }),
            "r1 = justext.32 r1"
        );
    }

    use crate::Inst;
}
