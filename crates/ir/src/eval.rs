//! Concrete evaluation of operations on raw 64-bit register values.
//!
//! This is the *single* implementation of the machine's arithmetic,
//! shared by the VM interpreter and by compile-time constant folding, so
//! the two can never disagree about the (deliberately modelled) garbage
//! upper bits of 32-bit results.

use crate::types::{Cond, Target, Ty, Width};
use crate::BinOp;

/// Evaluate an integer binary op at width `ty` on raw register values.
///
/// 32-bit operations are performed as full 64-bit operations: the low 32
/// bits of the result equal the true 32-bit result; the upper 32 bits are
/// whatever the 64-bit operation produces. Returns `None` for division by
/// zero (a trap at run time; not folded at compile time).
#[inline]
#[must_use]
pub fn int_bin(op: BinOp, a: i64, b: i64, ty: Ty) -> Option<i64> {
    let w32 = ty != Ty::I64;
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            let s = if w32 { b & 31 } else { b & 63 };
            a.wrapping_shl(s as u32)
        }
        BinOp::Shr => {
            let s = if w32 { b & 31 } else { b & 63 };
            a.wrapping_shr(s as u32)
        }
        BinOp::Shru => {
            if w32 {
                // IA64 extr.u: extract the low 32 bits, then shift.
                (((a as u32) >> (b & 31)) as u64) as i64
            } else {
                ((a as u64) >> (b & 63)) as i64
            }
        }
    })
}

/// Whether `op` at width `ty` is a *canonicalizing* 32-bit op on MIPS64.
///
/// MIPS64 has true 32-bit forms of the arithmetic and shift ops
/// (`addu`/`subu`/`mul`/`div`/`mod`/`sll`/`sra`/`srl`): each reads the
/// sign-extended low words and writes its result sign-extended from
/// bit 31. The bitwise ops have no 32-bit forms — they are full 64-bit
/// register ops on every MIPS — so they keep the raw semantics.
#[inline]
#[must_use]
fn mips64_canonicalizes(op: BinOp, ty: Ty) -> bool {
    ty != Ty::I64 && !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor)
}

/// Target-aware [`int_bin`]: identical on IA64/PPC64 (raw 64-bit
/// arithmetic with modelled garbage upper bits), but on MIPS64 the
/// canonicalizing 32-bit ops compute from the sign-extended low words and
/// sign-extend the result from bit 31 — the hardware's canonical-form
/// invariant. `INT_MIN / -1` still wraps to `INT_MIN` (the 64-bit quotient
/// `+2^31` sign-extends from bit 31 back to `INT_MIN`), and the
/// divide-by-zero check applies to the canonicalized low word, which has
/// the same zeroness as the raw one.
#[inline]
#[must_use]
pub fn int_bin_on(op: BinOp, a: i64, b: i64, ty: Ty, target: Target) -> Option<i64> {
    if target == Target::Mips64 && mips64_canonicalizes(op, ty) {
        let v = int_bin(op, a as i32 as i64, b as i32 as i64, ty)?;
        return Some(v as i32 as i64);
    }
    int_bin(op, a, b, ty)
}

/// Target-aware integer negation at width `ty`: raw 64-bit negate on
/// IA64/PPC64; on MIPS64 a narrow negate is `subu $0, v` and therefore
/// canonicalizes its result like every other 32-bit ALU op.
#[inline]
#[must_use]
pub fn int_neg_on(v: i64, ty: Ty, target: Target) -> i64 {
    if target == Target::Mips64 && ty != Ty::I64 {
        (v as i32).wrapping_neg() as i64
    } else {
        v.wrapping_neg()
    }
}

/// Evaluate a float binary op. Non-arithmetic ops (bitwise on floats) are
/// not representable in well-formed IR and return `None`.
#[inline]
#[must_use]
pub fn f64_bin(op: BinOp, x: f64, y: f64) -> Option<f64> {
    Some(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Rem => x % y,
        _ => return None,
    })
}

/// Evaluate an integer comparison at width `ty` on raw register values.
///
/// A 32-bit compare (`cmp4`) reads only the low 32 bits: signed
/// conditions interpret them as `i32`, unsigned as `u32`. A 64-bit
/// compare reads the full registers.
#[must_use]
pub fn int_cond(cond: Cond, ty: Ty, a: i64, b: i64) -> bool {
    match ty {
        Ty::I64 => cond.eval_i64(a, b),
        _ => {
            let (x, y) = match cond {
                Cond::Ult | Cond::Ule | Cond::Ugt | Cond::Uge => {
                    ((a as u32) as i64, (b as u32) as i64)
                }
                _ => (a as i32 as i64, b as i32 as i64),
            };
            cond.eval_i64(x, y)
        }
    }
}

/// Java `d2i`: NaN → 0, otherwise truncate toward zero with saturation.
/// The result is sign-extended.
#[inline]
#[must_use]
pub fn d2i(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i32::MAX as f64 {
        i32::MAX as i64
    } else if v <= i32::MIN as f64 {
        i32::MIN as i64
    } else {
        v as i32 as i64
    }
}

/// Java `d2l`: NaN → 0, saturating.
#[inline]
#[must_use]
pub fn d2l(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else if v >= i64::MAX as f64 {
        i64::MAX
    } else if v <= i64::MIN as f64 {
        i64::MIN
    } else {
        v as i64
    }
}

/// Evaluate a unary integer conversion/extension helper used by folding.
#[must_use]
pub fn zext(w: Width, v: i64) -> i64 {
    w.zero_extend(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add32_keeps_raw_upper_bits() {
        // 0x7fffffff + 1 as a 64-bit add: +2^31, NOT sign-extended.
        let r = int_bin(BinOp::Add, i32::MAX as i64, 1, Ty::I32).unwrap();
        assert_eq!(r, 0x8000_0000);
        assert_ne!(r, r as i32 as i64);
    }

    #[test]
    fn div_by_zero_is_none() {
        assert_eq!(int_bin(BinOp::Div, 1, 0, Ty::I32), None);
        assert_eq!(int_bin(BinOp::Rem, 1, 0, Ty::I64), None);
    }

    #[test]
    fn int_min_div_minus_one() {
        // On sign-extended inputs the 64-bit divide gives +2^31; the low
        // 32 bits are INT_MIN, matching Java's wrapping semantics.
        let r = int_bin(BinOp::Div, i32::MIN as i64, -1, Ty::I32).unwrap();
        assert_eq!(r, 0x8000_0000);
        assert_eq!(r as i32, i32::MIN);
    }

    #[test]
    fn shift_masking() {
        assert_eq!(int_bin(BinOp::Shl, 1, 33, Ty::I32).unwrap(), 2); // 33 & 31 = 1
        assert_eq!(int_bin(BinOp::Shl, 1, 33, Ty::I64).unwrap(), 1 << 33);
        assert_eq!(int_bin(BinOp::Shru, -1, 28, Ty::I32).unwrap(), 0xF);
    }

    #[test]
    fn cmp32_vs_cmp64() {
        // Raw +2^31: as a 32-bit compare it is INT_MIN (negative).
        let v = 0x8000_0000i64;
        assert!(int_cond(Cond::Lt, Ty::I32, v, 0));
        assert!(!int_cond(Cond::Lt, Ty::I64, v, 0));
        assert!(int_cond(Cond::Ugt, Ty::I32, v, 1));
    }

    #[test]
    fn d2i_saturates() {
        assert_eq!(d2i(f64::NAN), 0);
        assert_eq!(d2i(1e10), i32::MAX as i64);
        assert_eq!(d2i(-1e10), i32::MIN as i64);
        assert_eq!(d2i(-3.7), -3);
    }

    #[test]
    fn mips64_alu_results_are_canonical() {
        // The overflow case that stays raw elsewhere sign-extends on MIPS64.
        let r = int_bin_on(BinOp::Add, i32::MAX as i64, 1, Ty::I32, Target::Mips64).unwrap();
        assert_eq!(r, i32::MIN as i64);
        assert_eq!(
            int_bin_on(BinOp::Add, i32::MAX as i64, 1, Ty::I32, Target::Ia64),
            int_bin(BinOp::Add, i32::MAX as i64, 1, Ty::I32)
        );
        // Inputs are read as their sign-extended low words: garbage upper
        // bits of an operand never leak into a 32-bit result.
        let garbage = 0x1234_5678_0000_0003_i64;
        let r = int_bin_on(BinOp::Mul, garbage, 5, Ty::I32, Target::Mips64).unwrap();
        assert_eq!(r, 15);
        // srl: the shifted word is sign-extended from bit 31, not zero-extended.
        let r = int_bin_on(BinOp::Shru, -1, 0, Ty::I32, Target::Mips64).unwrap();
        assert_eq!(r, -1);
        assert_eq!(int_bin_on(BinOp::Shru, -1, 0, Ty::I32, Target::Ia64).unwrap(), 0xFFFF_FFFF);
        // Bitwise ops have no 32-bit MIPS forms: raw on every target.
        let r = int_bin_on(BinOp::Or, garbage, 0, Ty::I32, Target::Mips64).unwrap();
        assert_eq!(r, garbage);
    }

    #[test]
    fn mips64_divide_edge_cases() {
        // INT_MIN / -1 wraps to INT_MIN, now in canonical (sign-extended) form.
        let r = int_bin_on(BinOp::Div, i32::MIN as i64, -1, Ty::I32, Target::Mips64).unwrap();
        assert_eq!(r, i32::MIN as i64);
        // The zero check reads the canonicalized low word.
        assert_eq!(int_bin_on(BinOp::Div, 1, 0x1_0000_0000, Ty::I32, Target::Mips64), None);
        assert_eq!(int_bin_on(BinOp::Rem, 1, 0, Ty::I32, Target::Mips64), None);
        // 64-bit ops are untouched.
        assert_eq!(
            int_bin_on(BinOp::Div, 1, 0x1_0000_0000, Ty::I64, Target::Mips64),
            int_bin(BinOp::Div, 1, 0x1_0000_0000, Ty::I64)
        );
    }

    #[test]
    fn neg_canonicalizes_only_on_mips64() {
        let v = 0x7fff_ffff_i64;
        // negu is subu $0, v: result sign-extended from bit 31.
        assert_eq!(int_neg_on(v, Ty::I32, Target::Mips64), -0x7fff_ffff);
        assert_eq!(int_neg_on(i32::MIN as i64, Ty::I32, Target::Mips64), i32::MIN as i64);
        assert_eq!(int_neg_on(v, Ty::I32, Target::Ia64), -0x7fff_ffff);
        let garbage = 0x1_0000_0001_i64;
        assert_eq!(int_neg_on(garbage, Ty::I32, Target::Mips64), -1);
        assert_eq!(int_neg_on(garbage, Ty::I32, Target::Ppc64), garbage.wrapping_neg());
        assert_eq!(int_neg_on(garbage, Ty::I64, Target::Mips64), garbage.wrapping_neg());
    }

    #[test]
    fn f64_bitwise_is_none() {
        assert!(f64_bin(BinOp::And, 1.0, 2.0).is_none());
        assert_eq!(f64_bin(BinOp::Add, 1.0, 2.0), Some(3.0));
    }
}
