//! Compile budgets: a fuel counter plus an optional wall-clock deadline.
//!
//! A JIT must bound the time it spends improving code. [`Budget`] is the
//! shared primitive threaded through the pipeline's fixpoint loops (the
//! general-optimization rounds and the per-extension elimination loop):
//! each unit of work [`spend`](Budget::spend)s fuel, and once the fuel or
//! the deadline is gone the loops stop where they stand, salvaging the
//! current — still verified — IR instead of aborting the compilation.
//!
//! The counter is interiorly atomic so one budget can be shared by every
//! worker of a sharded compilation: all shards draw fuel from the same
//! pool through `&Budget`, and exhaustion observed by one shard stops
//! the others at their next spend.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A fuel counter with an optional deadline. An unlimited budget is the
/// default and costs nothing to check.
///
/// All mutating operations take `&self` (the counters are atomic), so a
/// single budget can be drawn from concurrently by parallel compilation
/// workers.
#[derive(Debug)]
pub struct Budget {
    fuel: AtomicU64,
    deadline: Option<Instant>,
    limited: AtomicBool,
}

impl Clone for Budget {
    fn clone(&self) -> Budget {
        Budget {
            fuel: AtomicU64::new(self.fuel.load(Ordering::Relaxed)),
            deadline: self.deadline,
            limited: AtomicBool::new(self.limited.load(Ordering::Relaxed)),
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never exhausts.
    #[must_use]
    pub fn unlimited() -> Budget {
        Budget {
            fuel: AtomicU64::new(u64::MAX),
            deadline: None,
            limited: AtomicBool::new(false),
        }
    }

    /// A budget of `fuel` work units and, optionally, a wall-clock limit
    /// starting now.
    #[must_use]
    pub fn new(fuel: u64, time: Option<Duration>) -> Budget {
        Budget {
            fuel: AtomicU64::new(fuel),
            deadline: time.map(|t| Instant::now() + t),
            limited: AtomicBool::new(true),
        }
    }

    /// Remaining fuel.
    #[must_use]
    pub fn fuel_left(&self) -> u64 {
        self.fuel.load(Ordering::Relaxed)
    }

    /// Whether the budget is exhausted (no fuel left or deadline passed).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        if !self.limited.load(Ordering::Relaxed) {
            return false;
        }
        self.fuel.load(Ordering::Relaxed) == 0
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Consume `units` of fuel; returns `true` when there was fuel to pay
    /// for this unit of work (a budget of N fuel pays for N unit spends),
    /// `false` once the budget is exhausted and the caller should stop.
    pub fn spend(&self, units: u64) -> bool {
        if !self.limited.load(Ordering::Relaxed) {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return false;
        }
        self.fuel
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                (f > 0).then(|| f.saturating_sub(units))
            })
            .is_ok()
    }

    /// Exhaust the budget immediately (used by fault injection and by
    /// salvage paths that want to stop all further optimization).
    pub fn exhaust(&self) {
        self.limited.store(true, Ordering::Relaxed);
        self.fuel.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.spend(1_000_000));
        }
        assert!(!b.exhausted());
    }

    #[test]
    fn fuel_runs_out() {
        let b = Budget::new(3, None);
        assert!(b.spend(1));
        assert!(b.spend(1));
        assert!(b.spend(1), "third unit paid by the last fuel");
        assert!(b.exhausted());
        assert!(!b.spend(1));
    }

    #[test]
    fn deadline_counts() {
        let b = Budget::new(u64::MAX, Some(Duration::ZERO));
        assert!(b.exhausted());
    }

    #[test]
    fn exhaust_is_immediate() {
        let b = Budget::unlimited();
        b.exhaust();
        assert!(b.exhausted());
    }

    #[test]
    fn shared_across_threads() {
        let b = Budget::new(1000, None);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| while b.spend(1) {});
            }
        });
        assert!(b.exhausted());
        assert_eq!(b.fuel_left(), 0);
    }
}
