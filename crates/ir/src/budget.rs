//! Compile budgets: a fuel counter plus an optional wall-clock deadline.
//!
//! A JIT must bound the time it spends improving code. [`Budget`] is the
//! shared primitive threaded through the pipeline's fixpoint loops (the
//! general-optimization rounds and the per-extension elimination loop):
//! each unit of work [`spend`](Budget::spend)s fuel, and once the fuel or
//! the deadline is gone the loops stop where they stand, salvaging the
//! current — still verified — IR instead of aborting the compilation.

use std::time::{Duration, Instant};

/// A fuel counter with an optional deadline. An unlimited budget is the
/// default and costs nothing to check.
#[derive(Debug, Clone)]
pub struct Budget {
    fuel: u64,
    deadline: Option<Instant>,
    limited: bool,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never exhausts.
    #[must_use]
    pub fn unlimited() -> Budget {
        Budget { fuel: u64::MAX, deadline: None, limited: false }
    }

    /// A budget of `fuel` work units and, optionally, a wall-clock limit
    /// starting now.
    #[must_use]
    pub fn new(fuel: u64, time: Option<Duration>) -> Budget {
        Budget {
            fuel,
            deadline: time.map(|t| Instant::now() + t),
            limited: true,
        }
    }

    /// Remaining fuel.
    #[must_use]
    pub fn fuel_left(&self) -> u64 {
        self.fuel
    }

    /// Whether the budget is exhausted (no fuel left or deadline passed).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        if !self.limited {
            return false;
        }
        self.fuel == 0 || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Consume `units` of fuel; returns `true` when there was fuel to pay
    /// for this unit of work (a budget of N fuel pays for N unit spends),
    /// `false` once the budget is exhausted and the caller should stop.
    pub fn spend(&mut self, units: u64) -> bool {
        if !self.limited {
            return true;
        }
        if self.exhausted() {
            return false;
        }
        self.fuel = self.fuel.saturating_sub(units);
        true
    }

    /// Exhaust the budget immediately (used by fault injection and by
    /// salvage paths that want to stop all further optimization).
    pub fn exhaust(&mut self) {
        self.limited = true;
        self.fuel = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.spend(1_000_000));
        }
        assert!(!b.exhausted());
    }

    #[test]
    fn fuel_runs_out() {
        let mut b = Budget::new(3, None);
        assert!(b.spend(1));
        assert!(b.spend(1));
        assert!(b.spend(1), "third unit paid by the last fuel");
        assert!(b.exhausted());
        assert!(!b.spend(1));
    }

    #[test]
    fn deadline_counts() {
        let b = Budget::new(u64::MAX, Some(Duration::ZERO));
        assert!(b.exhausted());
    }

    #[test]
    fn exhaust_is_immediate() {
        let mut b = Budget::unlimited();
        b.exhaust();
        assert!(b.exhausted());
    }
}
