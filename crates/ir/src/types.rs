//! Scalar types, extension widths, comparison conditions, and targets.

use std::fmt;

/// Scalar type of a value, an operation, or an array element.
///
/// The IR models a 64-bit machine: every integer register is physically
/// 64 bits wide, and `Ty` describes the *program-level* type an instruction
/// operates at. Operations at [`Ty::I32`] produce results whose low 32 bits
/// are meaningful and whose upper 32 bits are unspecified unless an
/// [`extend`](crate::Inst::Extend) guarantees otherwise — this is the
/// central premise of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// Signed 8-bit integer (Java `byte`).
    I8,
    /// Signed 16-bit integer (Java `short`).
    I16,
    /// Signed 32-bit integer (Java `int`).
    I32,
    /// Signed 64-bit integer (Java `long`).
    I64,
    /// IEEE-754 double (Java `double`).
    F64,
}

impl Ty {
    /// Size of one value of this type in bytes, as laid out in arrays.
    #[must_use]
    pub fn size_bytes(self) -> u32 {
        match self {
            Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
            Ty::I64 | Ty::F64 => 8,
        }
    }

    /// Whether this is an integer type.
    #[must_use]
    pub fn is_int(self) -> bool {
        !matches!(self, Ty::F64)
    }

    /// Whether a value of this type occupies fewer bits than a 64-bit
    /// register and therefore needs widening on a 64-bit architecture.
    #[must_use]
    pub fn is_narrow_int(self) -> bool {
        matches!(self, Ty::I8 | Ty::I16 | Ty::I32)
    }

    /// The extension width for a narrow integer type, if any.
    #[must_use]
    pub fn width(self) -> Option<Width> {
        match self {
            Ty::I8 => Some(Width::W8),
            Ty::I16 => Some(Width::W16),
            Ty::I32 => Some(Width::W32),
            Ty::I64 | Ty::F64 => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// Source width of a sign (or zero) extension: the number of low bits that
/// are extended into the full 64-bit register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    /// Extend from the low 8 bits.
    W8,
    /// Extend from the low 16 bits.
    W16,
    /// Extend from the low 32 bits (the case the paper's evaluation counts).
    W32,
}

impl Width {
    /// Number of bits this width covers.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
        }
    }

    /// Sign-extend the low `self.bits()` bits of `v` to a full `i64`.
    #[inline]
    #[must_use]
    pub fn sign_extend(self, v: i64) -> i64 {
        match self {
            Width::W8 => v as i8 as i64,
            Width::W16 => v as i16 as i64,
            Width::W32 => v as i32 as i64,
        }
    }

    /// Zero-extend the low `self.bits()` bits of `v` to a full `i64`.
    #[inline]
    #[must_use]
    pub fn zero_extend(self, v: i64) -> i64 {
        match self {
            Width::W8 => (v as u8) as i64,
            Width::W16 => (v as u16) as i64,
            Width::W32 => (v as u32) as i64,
        }
    }

    /// The narrow integer type corresponding to this width.
    #[must_use]
    pub fn ty(self) -> Ty {
        match self {
            Width::W8 => Ty::I8,
            Width::W16 => Ty::I16,
            Width::W32 => Ty::I32,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// Comparison condition for [`Setcc`](crate::Inst::Setcc) and
/// [`CondBr`](crate::Inst::CondBr).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less than or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater than or equal.
    Ge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less than or equal.
    Ule,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater than or equal.
    Uge,
}

impl Cond {
    /// The condition with both operands swapped (`a < b` ⇔ `b > a`).
    #[must_use]
    pub fn swapped(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Gt,
            Cond::Le => Cond::Ge,
            Cond::Gt => Cond::Lt,
            Cond::Ge => Cond::Le,
            Cond::Ult => Cond::Ugt,
            Cond::Ule => Cond::Uge,
            Cond::Ugt => Cond::Ult,
            Cond::Uge => Cond::Ule,
        }
    }

    /// The logical negation of the condition (`a < b` ⇔ `!(a >= b)`).
    #[must_use]
    pub fn negated(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::Ult => Cond::Uge,
            Cond::Ule => Cond::Ugt,
            Cond::Ugt => Cond::Ule,
            Cond::Uge => Cond::Ult,
        }
    }

    /// Evaluate the condition on two signed 64-bit values.
    #[must_use]
    pub fn eval_i64(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
            Cond::Ult => (a as u64) < (b as u64),
            Cond::Ule => (a as u64) <= (b as u64),
            Cond::Ugt => (a as u64) > (b as u64),
            Cond::Uge => (a as u64) >= (b as u64),
        }
    }

    /// Evaluate the condition on two doubles.
    ///
    /// Every ordered comparison with a NaN operand is false; `Ne` is true.
    /// Unsigned variants are not meaningful for floats and compare like
    /// their signed counterparts.
    #[must_use]
    pub fn eval_f64(self, a: f64, b: f64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt | Cond::Ult => a < b,
            Cond::Le | Cond::Ule => a <= b,
            Cond::Gt | Cond::Ugt => a > b,
            Cond::Ge | Cond::Uge => a >= b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::Ult => "ult",
            Cond::Ule => "ule",
            Cond::Ugt => "ugt",
            Cond::Uge => "uge",
        };
        f.write_str(s)
    }
}

/// Target 64-bit architecture flavour.
///
/// The flavours differ exactly where the paper says they do:
///
/// * [`Target::Ia64`] zero-extends 32-bit memory reads (no *implicit sign
///   extension*), so a loaded `int` has its upper 32 bits cleared but is not
///   sign-extended.
/// * [`Target::Ppc64`] has the `lwa` load-word-algebraic instruction, so a
///   loaded `int` arrives sign-extended; arithmetic is otherwise raw 64-bit.
/// * [`Target::Mips64`] enforces the MIPS canonical-form invariant: every
///   true 32-bit ALU op (`addu`/`subu`/`mul`/`div`/`sll`/`sra`/`srl`)
///   computes on the sign-extended low words and writes its result
///   sign-extended from bit 31, and 32-bit loads (`lw`) sign-extend. Only
///   the bitwise ops (`and`/`or`/`xor`/`nor`), which have no 32-bit forms,
///   stay raw 64-bit register ops.
///
/// All targets have a 32-bit compare that ignores the upper halves of its
/// operands, so array bounds checks never require an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Target {
    /// Intel Itanium: zero-extending 32-bit loads, explicit `sxt4`.
    #[default]
    Ia64,
    /// PowerPC 64: sign-extending `lwa` loads, explicit `exts*`.
    Ppc64,
    /// MIPS64: sign-extending `lw` loads *and* canonically sign-extended
    /// 32-bit ALU results (`addu`, `sll`, … all write bit 31 through the
    /// upper word).
    Mips64,
}

impl Target {
    /// Every supported target, in display order.
    pub const ALL: [Target; 3] = [Target::Ia64, Target::Ppc64, Target::Mips64];
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Ia64 => f.write_str("ia64"),
            Target::Ppc64 => f.write_str("ppc64"),
            Target::Mips64 => f.write_str("mips64"),
        }
    }
}

impl std::str::FromStr for Target {
    type Err = String;

    fn from_str(s: &str) -> Result<Target, String> {
        match s {
            "ia64" => Ok(Target::Ia64),
            "ppc64" => Ok(Target::Ppc64),
            "mips64" => Ok(Target::Mips64),
            other => Err(format!(
                "unknown target `{other}` (expected `ia64`, `ppc64`, or `mips64`)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::I8.size_bytes(), 1);
        assert_eq!(Ty::I16.size_bytes(), 2);
        assert_eq!(Ty::I32.size_bytes(), 4);
        assert_eq!(Ty::I64.size_bytes(), 8);
        assert_eq!(Ty::F64.size_bytes(), 8);
    }

    #[test]
    fn narrow_widths() {
        assert_eq!(Ty::I8.width(), Some(Width::W8));
        assert_eq!(Ty::I32.width(), Some(Width::W32));
        assert_eq!(Ty::I64.width(), None);
        assert!(Ty::I32.is_narrow_int());
        assert!(!Ty::I64.is_narrow_int());
        assert!(!Ty::F64.is_int());
    }

    #[test]
    fn sign_extension_semantics() {
        assert_eq!(Width::W32.sign_extend(0x0000_0000_8000_0000), i32::MIN as i64);
        assert_eq!(Width::W32.sign_extend(0x1234_5678_0000_0001), 1);
        assert_eq!(Width::W16.sign_extend(0xFFFF), -1);
        assert_eq!(Width::W8.sign_extend(0x80), -128);
        assert_eq!(Width::W8.sign_extend(0x7F), 127);
    }

    #[test]
    fn zero_extension_semantics() {
        assert_eq!(Width::W32.zero_extend(-1), 0xFFFF_FFFF);
        assert_eq!(Width::W16.zero_extend(-1), 0xFFFF);
        assert_eq!(Width::W8.zero_extend(-1), 0xFF);
    }

    #[test]
    fn cond_swap_negate() {
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
            Cond::Ult,
            Cond::Ule,
            Cond::Ugt,
            Cond::Uge,
        ] {
            assert_eq!(c.swapped().swapped(), c);
            assert_eq!(c.negated().negated(), c);
            // Exhaustive semantic check on a few value pairs.
            for (a, b) in [(0i64, 0i64), (1, 2), (-1, 1), (i64::MIN, i64::MAX)] {
                assert_eq!(c.eval_i64(a, b), c.swapped().eval_i64(b, a));
                assert_eq!(c.eval_i64(a, b), !c.negated().eval_i64(a, b));
            }
        }
    }

    #[test]
    fn cond_unsigned() {
        assert!(Cond::Ult.eval_i64(1, -1)); // -1 is u64::MAX
        assert!(!Cond::Lt.eval_i64(1, -1));
    }

    #[test]
    fn target_parses_and_displays() {
        for t in Target::ALL {
            assert_eq!(t.to_string().parse::<Target>(), Ok(t));
        }
        assert_eq!("mips64".parse::<Target>(), Ok(Target::Mips64));
        let err = "sparc64".parse::<Target>().unwrap_err();
        assert!(err.contains("sparc64") && err.contains("mips64"));
        assert_eq!(Target::default(), Target::Ia64);
    }

    #[test]
    fn cond_float_nan() {
        assert!(!Cond::Lt.eval_f64(f64::NAN, 1.0));
        assert!(!Cond::Eq.eval_f64(f64::NAN, f64::NAN));
        assert!(Cond::Ne.eval_f64(f64::NAN, f64::NAN));
    }
}
