//! IR well-formedness verification.
//!
//! [`verify_function`] is also the *pass gate* of the fault-isolated
//! compile pipeline in `sxe-jit`: it runs after every optimization pass,
//! and a failure rolls the function back to its last-good snapshot. The
//! checks therefore go beyond pure structure: a definite-assignment
//! analysis guarantees every use is reached by a definition along every
//! path (defs dominate uses along UD chains), and conversion/extension
//! instructions are checked for operand-width consistency.

use std::fmt;

use crate::cfg::Cfg;
use crate::function::{Function, InstId, Module};
use crate::inst::Inst;
use crate::types::{Ty, Width};
use crate::UnOp;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub function: String,
    /// Offending instruction, if the error is instruction-local.
    pub at: Option<InstId>,
    /// Description of the violation.
    pub message: String,
    /// Name of the compilation pass whose output failed the gate, when
    /// verification ran as a pipeline gate (filled by the `sxe-jit`
    /// containment harness; `None` for standalone verification).
    pub pass: Option<String>,
}

impl VerifyError {
    /// Attach the name of the pass whose output failed the gate.
    #[must_use]
    pub fn in_pass(mut self, pass: &str) -> VerifyError {
        self.pass = Some(pass.to_string());
        self
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(pass) = &self.pass {
            write!(f, "after pass `{pass}`: ")?;
        }
        match self.at {
            Some(at) => write!(f, "{}: at {}: {}", self.function, at, self.message),
            None => write!(f, "{}: {}", self.function, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Check the structural invariants of a function:
///
/// * every block ends with exactly one terminator, and terminators appear
///   nowhere else;
/// * all branch targets are valid block ids;
/// * all registers are below `reg_count`;
/// * `ret` carries a value iff the function has a return type;
/// * conversion and zero-extension operations carry consistent types
///   (`i32tof64` produces `f64`, `zext32` widens to `i64`, ...);
/// * on every reachable path, each register use is preceded by a
///   definition of that register (definite assignment — the static
///   counterpart of "defs dominate uses" on the UD chains).
///
/// # Errors
/// Returns the first violation found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let fail = |at: Option<InstId>, message: String| VerifyError {
        function: f.name.clone(),
        at,
        message,
        pass: None,
    };
    if f.blocks.is_empty() {
        return Err(fail(None, "function has no blocks".into()));
    }
    for b in f.block_ids() {
        let blk = f.block(b);
        let Some(term) = blk.insts.last() else {
            return Err(fail(None, format!("block {b} is empty")));
        };
        if !term.is_terminator() {
            return Err(fail(
                Some(InstId::new(b, blk.insts.len() - 1)),
                format!("block {b} does not end with a terminator"),
            ));
        }
        for (i, inst) in blk.insts.iter().enumerate() {
            let at = InstId::new(b, i);
            if i + 1 != blk.insts.len() && inst.is_terminator() {
                return Err(fail(Some(at), "terminator in the middle of a block".into()));
            }
            for t in inst.successors() {
                if t.index() >= f.blocks.len() {
                    return Err(fail(Some(at), format!("branch to missing block {t}")));
                }
            }
            for r in inst.uses() {
                if r.0 >= f.reg_count {
                    return Err(fail(Some(at), format!("use of unallocated register {r}")));
                }
            }
            if let Some(d) = inst.dst() {
                if d.0 >= f.reg_count {
                    return Err(fail(Some(at), format!("def of unallocated register {d}")));
                }
            }
            if let Inst::Ret { value } = inst {
                match (value, f.ret) {
                    (Some(_), None) => {
                        return Err(fail(Some(at), "ret with value in void function".into()))
                    }
                    (None, Some(_)) => {
                        return Err(fail(Some(at), "ret without value in non-void function".into()))
                    }
                    _ => {}
                }
            }
            check_width_consistency(inst).map_err(|m| fail(Some(at), m))?;
        }
    }
    check_definite_assignment(f, &fail)?;
    Ok(())
}

/// Operand-width consistency for conversions and zero extensions: the
/// declared operation type must match what the operation produces. A pass
/// that rewrites types carelessly (or corrupted IR injected by the chaos
/// harness) is caught here before it can miscompile.
fn check_width_consistency(inst: &Inst) -> Result<(), String> {
    let Inst::Un { op, ty, .. } = inst else { return Ok(()) };
    match (op, ty) {
        (UnOp::I32ToF64 | UnOp::I64ToF64, Ty::F64) => Ok(()),
        (UnOp::I32ToF64 | UnOp::I64ToF64, ty) => {
            Err(format!("{op} must produce f64, not {ty}"))
        }
        (UnOp::F64ToI32, Ty::I32) | (UnOp::F64ToI64, Ty::I64) => Ok(()),
        (UnOp::F64ToI32, ty) => Err(format!("{op} must produce i32, not {ty}")),
        (UnOp::F64ToI64, ty) => Err(format!("{op} must produce i64, not {ty}")),
        (UnOp::Zext(Width::W32), Ty::I64) => Ok(()),
        (UnOp::Zext(Width::W32), ty) => {
            Err(format!("zext32 must widen to i64, not {ty}"))
        }
        (UnOp::Zext(_), Ty::I32 | Ty::I64) => Ok(()),
        (UnOp::Zext(w), ty) => Err(format!("zext{} at non-integer type {ty}", w.bits())),
        _ => Ok(()),
    }
}

/// Definite assignment: on every path from function entry to a use of
/// register `r`, some definition of `r` (a parameter or an instruction
/// def) must occur first. Forward must-dataflow over the reachable CFG
/// with bitsets; unreachable blocks are skipped (they execute never and
/// routinely hold dead code mid-pipeline).
fn check_definite_assignment(
    f: &Function,
    fail: &dyn Fn(Option<InstId>, String) -> VerifyError,
) -> Result<(), VerifyError> {
    let cfg = Cfg::compute(f);
    let words = (f.reg_count as usize).div_ceil(64);
    let set = |bits: &mut [u64], r: u32| bits[r as usize / 64] |= 1 << (r % 64);
    let test = |bits: &[u64], r: u32| bits[r as usize / 64] >> (r % 64) & 1 == 1;

    let mut entry_in = vec![0u64; words];
    for &(r, _) in &f.params {
        set(&mut entry_in, r.0);
    }

    // OUT[b]; `None` means "not yet computed" (the must-analysis top:
    // universal set).
    let mut out: Vec<Option<Vec<u64>>> = vec![None; f.blocks.len()];
    let block_in = |out: &[Option<Vec<u64>>], b: crate::BlockId| -> Vec<u64> {
        if b == f.entry() {
            return entry_in.clone();
        }
        let mut acc: Option<Vec<u64>> = None;
        for &p in cfg.preds(b) {
            if let Some(po) = &out[p.index()] {
                acc = Some(match acc {
                    None => po.clone(),
                    Some(mut a) => {
                        for (aw, pw) in a.iter_mut().zip(po) {
                            *aw &= pw;
                        }
                        a
                    }
                });
            }
        }
        // No computed predecessor yet: start from the universal set so the
        // intersection can only shrink.
        acc.unwrap_or_else(|| vec![u64::MAX; words])
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo() {
            let mut cur = block_in(&out, b);
            for inst in &f.block(b).insts {
                if let Some(d) = inst.dst() {
                    set(&mut cur, d.0);
                }
            }
            if out[b.index()].as_ref() != Some(&cur) {
                out[b.index()] = Some(cur);
                changed = true;
            }
        }
    }

    for &b in cfg.rpo() {
        let mut cur = block_in(&out, b);
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            for r in inst.uses() {
                if !test(&cur, r.0) {
                    return Err(fail(
                        Some(InstId::new(b, i)),
                        format!("use of {r} before definite assignment"),
                    ));
                }
            }
            if let Some(d) = inst.dst() {
                set(&mut cur, d.0);
            }
        }
    }
    Ok(())
}

/// Verify every function of a module, plus call-site arity against the
/// callee signatures.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for (_, f) in m.iter() {
        verify_function(f)?;
        for (at, inst) in f.insts() {
            if let Inst::Call { dst, func, args } = inst {
                if func.index() >= m.functions.len() {
                    return Err(VerifyError {
                        function: f.name.clone(),
                        at: Some(at),
                        message: format!("call to missing function {func}"),
                        pass: None,
                    });
                }
                let callee = m.function(*func);
                if args.len() != callee.params.len() {
                    return Err(VerifyError {
                        function: f.name.clone(),
                        at: Some(at),
                        message: format!(
                            "call to @{} passes {} args, expected {}",
                            callee.name,
                            args.len(),
                            callee.params.len()
                        ),
                        pass: None,
                    });
                }
                if dst.is_some() != callee.ret.is_some() {
                    return Err(VerifyError {
                        function: f.name.clone(),
                        at: Some(at),
                        message: format!(
                            "call result mismatch with @{} (returns {:?})",
                            callee.name, callee.ret
                        ),
                        pass: None,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BlockId, Reg};
    use crate::types::Ty;

    #[test]
    fn good_function_verifies() {
        let mut b = FunctionBuilder::new("ok", vec![Ty::I32], Some(Ty::I32));
        let p = b.param(0);
        b.ret(Some(p));
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn missing_terminator() {
        let mut f = Function::new("bad", vec![], None);
        f.block_mut(BlockId(0)).insts.push(Inst::Nop);
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "block b0 does not end with a terminator");
    }

    #[test]
    fn unreachable_block_missing_terminator() {
        // The unreachable block still fails the *structural* checks: a
        // rolled-back pass must leave no half-built blocks anywhere.
        let mut f = Function::new("bad", vec![], None);
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: None });
        let b1 = f.new_block();
        f.block_mut(b1).insts.push(Inst::Nop);
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "block b1 does not end with a terminator");
        assert_eq!(e.at, Some(InstId::new(b1, 0)));
    }

    #[test]
    fn unreachable_empty_block() {
        let mut f = Function::new("bad", vec![], None);
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: None });
        f.new_block();
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "block b1 is empty");
    }

    #[test]
    fn branch_to_missing_block() {
        let mut f = Function::new("bad", vec![], None);
        f.block_mut(BlockId(0)).insts.push(Inst::Br { target: BlockId(9) });
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "branch to missing block b9");
    }

    #[test]
    fn unallocated_register() {
        let mut f = Function::new("bad", vec![], Some(Ty::I32));
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: Some(Reg(5)) });
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "use of unallocated register r5");
    }

    #[test]
    fn unallocated_def_register() {
        let mut f = Function::new("bad", vec![], None);
        f.block_mut(BlockId(0)).insts.push(Inst::Const { dst: Reg(3), value: 0, ty: Ty::I32 });
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: None });
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "def of unallocated register r3");
    }

    #[test]
    fn ret_arity() {
        let mut f = Function::new("bad", vec![], None);
        f.reg_count = 1;
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: Some(Reg(0)) });
        // `ret r0` also uses r0 before assignment, but the arity check
        // runs first within an instruction.
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "ret with value in void function");
    }

    #[test]
    fn ret_missing_value() {
        let mut f = Function::new("bad", vec![], Some(Ty::I32));
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: None });
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "ret without value in non-void function");
    }

    #[test]
    fn use_before_any_definition() {
        let mut f = Function::new("bad", vec![], Some(Ty::I32));
        f.reg_count = 1;
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: Some(Reg(0)) });
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "use of r0 before definite assignment");
    }

    #[test]
    fn use_defined_on_one_path_only() {
        // b0: condbr p, b1, b2 ; b1 defines r1 then joins; b2 joins
        // directly; the join uses r1 — not definitely assigned.
        let mut f = Function::new("bad", vec![Ty::I32], Some(Ty::I32));
        f.reg_count = 2;
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        f.block_mut(BlockId(0)).insts.push(Inst::CondBr {
            cond: crate::Cond::Gt,
            ty: Ty::I32,
            lhs: Reg(0),
            rhs: Reg(0),
            then_bb: b1,
            else_bb: b2,
        });
        f.block_mut(b1).insts.push(Inst::Const { dst: Reg(1), value: 1, ty: Ty::I32 });
        f.block_mut(b1).insts.push(Inst::Br { target: b3 });
        f.block_mut(b2).insts.push(Inst::Br { target: b3 });
        f.block_mut(b3).insts.push(Inst::Ret { value: Some(Reg(1)) });
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "use of r1 before definite assignment");
        assert_eq!(e.at, Some(InstId::new(b3, 0)));
    }

    #[test]
    fn use_defined_on_both_paths_ok() {
        let mut b = FunctionBuilder::new("ok", vec![Ty::I32], Some(Ty::I32));
        let p = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let out = b.new_reg();
        b.cond_br(crate::Cond::Gt, Ty::I32, p, p, t, e);
        b.switch_to(t);
        b.copy_to(Ty::I32, out, p);
        b.br(j);
        b.switch_to(e);
        let one = b.iconst(Ty::I32, 1);
        b.copy_to(Ty::I32, out, one);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(out));
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn loop_carried_definition_ok() {
        // r1 defined before the loop, redefined inside, used after: the
        // back edge must not confuse the must-analysis.
        let f = crate::parse_function(
            "func @f(i32) -> i32 {\n\
             b0:\n    r1 = const.i32 0\n    br b1\n\
             b1:\n    r2 = const.i32 1\n    r1 = add.i32 r1, r2\n    condbr gt.i32 r0, r1, b1, b2\n\
             b2:\n    ret r1\n}\n",
        )
        .unwrap();
        assert!(verify_function(&f).is_ok());
    }

    #[test]
    fn width_mismatch_i2d() {
        let mut f = Function::new("bad", vec![Ty::I32], Some(Ty::I32));
        f.block_mut(BlockId(0)).insts.push(Inst::Un {
            op: UnOp::I32ToF64,
            ty: Ty::I32,
            dst: Reg(1),
            src: Reg(0),
        });
        f.reg_count = 2;
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: Some(Reg(1)) });
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "i32tof64 must produce f64, not i32");
    }

    #[test]
    fn width_mismatch_zext32() {
        let mut f = Function::new("bad", vec![Ty::I32], Some(Ty::I32));
        f.block_mut(BlockId(0)).insts.push(Inst::Un {
            op: UnOp::Zext(Width::W32),
            ty: Ty::I32,
            dst: Reg(1),
            src: Reg(0),
        });
        f.reg_count = 2;
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: Some(Reg(1)) });
        let e = verify_function(&f).unwrap_err();
        assert_eq!(e.message, "zext32 must widen to i64, not i32");
    }

    #[test]
    fn pass_context_in_display() {
        let mut f = Function::new("bad", vec![], None);
        f.block_mut(BlockId(0)).insts.push(Inst::Nop);
        let e = verify_function(&f).unwrap_err().in_pass("dce");
        assert_eq!(e.pass.as_deref(), Some("dce"));
        let s = e.to_string();
        assert!(s.starts_with("after pass `dce`:"), "{s}");
    }

    #[test]
    fn call_arity_checked() {
        use crate::Module;
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("callee", vec![Ty::I32, Ty::I32], None);
        b.ret(None);
        let callee = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("caller", vec![Ty::I32], None);
        let p = b.param(0);
        b.call(callee, vec![p], false);
        b.ret(None);
        m.add_function(b.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("expected 2"));
    }
}
