//! IR well-formedness verification.

use std::fmt;

use crate::function::{Function, InstId, Module};
use crate::inst::Inst;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub function: String,
    /// Offending instruction, if the error is instruction-local.
    pub at: Option<InstId>,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(at) => write!(f, "{}: at {}: {}", self.function, at, self.message),
            None => write!(f, "{}: {}", self.function, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Check the structural invariants of a function:
///
/// * every block ends with exactly one terminator, and terminators appear
///   nowhere else;
/// * all branch targets are valid block ids;
/// * all registers are below `reg_count`;
/// * `ret` carries a value iff the function has a return type.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let fail = |at: Option<InstId>, message: String| VerifyError {
        function: f.name.clone(),
        at,
        message,
    };
    if f.blocks.is_empty() {
        return Err(fail(None, "function has no blocks".into()));
    }
    for b in f.block_ids() {
        let blk = f.block(b);
        let Some(term) = blk.insts.last() else {
            return Err(fail(None, format!("block {b} is empty")));
        };
        if !term.is_terminator() {
            return Err(fail(
                Some(InstId::new(b, blk.insts.len() - 1)),
                format!("block {b} does not end with a terminator"),
            ));
        }
        for (i, inst) in blk.insts.iter().enumerate() {
            let at = InstId::new(b, i);
            if i + 1 != blk.insts.len() && inst.is_terminator() {
                return Err(fail(Some(at), "terminator in the middle of a block".into()));
            }
            for t in inst.successors() {
                if t.index() >= f.blocks.len() {
                    return Err(fail(Some(at), format!("branch to missing block {t}")));
                }
            }
            for r in inst.uses() {
                if r.0 >= f.reg_count {
                    return Err(fail(Some(at), format!("use of unallocated register {r}")));
                }
            }
            if let Some(d) = inst.dst() {
                if d.0 >= f.reg_count {
                    return Err(fail(Some(at), format!("def of unallocated register {d}")));
                }
            }
            if let Inst::Ret { value } = inst {
                match (value, f.ret) {
                    (Some(_), None) => {
                        return Err(fail(Some(at), "ret with value in void function".into()))
                    }
                    (None, Some(_)) => {
                        return Err(fail(Some(at), "ret without value in non-void function".into()))
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

/// Verify every function of a module, plus call-site arity against the
/// callee signatures.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for (_, f) in m.iter() {
        verify_function(f)?;
        for (at, inst) in f.insts() {
            if let Inst::Call { dst, func, args } = inst {
                if func.index() >= m.functions.len() {
                    return Err(VerifyError {
                        function: f.name.clone(),
                        at: Some(at),
                        message: format!("call to missing function {func}"),
                    });
                }
                let callee = m.function(*func);
                if args.len() != callee.params.len() {
                    return Err(VerifyError {
                        function: f.name.clone(),
                        at: Some(at),
                        message: format!(
                            "call to @{} passes {} args, expected {}",
                            callee.name,
                            args.len(),
                            callee.params.len()
                        ),
                    });
                }
                if dst.is_some() != callee.ret.is_some() {
                    return Err(VerifyError {
                        function: f.name.clone(),
                        at: Some(at),
                        message: format!(
                            "call result mismatch with @{} (returns {:?})",
                            callee.name, callee.ret
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BlockId, Reg};
    use crate::types::Ty;

    #[test]
    fn good_function_verifies() {
        let mut b = FunctionBuilder::new("ok", vec![Ty::I32], Some(Ty::I32));
        let p = b.param(0);
        b.ret(Some(p));
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn missing_terminator() {
        let mut f = Function::new("bad", vec![], None);
        f.block_mut(BlockId(0)).insts.push(Inst::Nop);
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("terminator"));
    }

    #[test]
    fn branch_to_missing_block() {
        let mut f = Function::new("bad", vec![], None);
        f.block_mut(BlockId(0)).insts.push(Inst::Br { target: BlockId(9) });
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("missing block"));
    }

    #[test]
    fn unallocated_register() {
        let mut f = Function::new("bad", vec![], Some(Ty::I32));
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: Some(Reg(5)) });
        let e = verify_function(&f).unwrap_err();
        assert!(e.message.contains("unallocated"));
    }

    #[test]
    fn ret_arity() {
        let mut f = Function::new("bad", vec![], None);
        f.reg_count = 1;
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { value: Some(Reg(0)) });
        assert!(verify_function(&f).unwrap_err().message.contains("void"));
    }

    #[test]
    fn call_arity_checked() {
        use crate::Module;
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("callee", vec![Ty::I32, Ty::I32], None);
        b.ret(None);
        let callee = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("caller", vec![Ty::I32], None);
        let p = b.param(0);
        b.call(callee, vec![p], false);
        b.ret(None);
        m.add_function(b.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("expected 2"));
    }
}
