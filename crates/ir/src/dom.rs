//! Dominator tree computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;
use crate::inst::BlockId;

/// Immediate-dominator tree for the reachable part of a function's CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; the entry's idom is itself;
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Compute the dominator tree from a CFG.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> DomTree {
        let n = cfg.num_blocks();
        let rpo = cfg.rpo();
        let entry = rpo[0];
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up the tree using RPO numbers as the ordering.
            let num = |x: BlockId| cfg.rpo_index(x).expect("reachable");
            while a != b {
                while num(a) > num(b) {
                    a = idom[a.index()].expect("processed");
                }
                while num(b) > num(a) {
                    b = idom[b.index()].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                let new_idom = new_idom.expect("reachable block has a processed pred in RPO");
                if idom[b.index()] != Some(new_idom) {
                    idom[b.index()] = Some(new_idom);
                    changed = true;
                }
            }
        }
        DomTree { idom, entry }
    }

    /// Immediate dominator of `b`; `None` for the entry and for unreachable
    /// blocks.
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    ///
    /// Returns `false` if either block is unreachable.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[a.index()].is_none() || self.idom[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{Cond, Ty};
    use crate::Function;

    /// Classic diamond with a loop on one arm.
    ///
    /// ```text
    /// entry -> a -> {b, c}; b -> d; c -> c (self loop) -> d; d -> ret
    /// ```
    fn build() -> Function {
        let mut fb = FunctionBuilder::new("f", vec![Ty::I32], None);
        let x = fb.param(0);
        let zero = fb.iconst(Ty::I32, 0);
        let a = fb.new_block();
        let b = fb.new_block();
        let c = fb.new_block();
        let d = fb.new_block();
        fb.br(a);
        fb.switch_to(a);
        fb.cond_br(Cond::Lt, Ty::I32, x, zero, b, c);
        fb.switch_to(b);
        fb.br(d);
        fb.switch_to(c);
        fb.cond_br(Cond::Gt, Ty::I32, x, zero, c, d);
        fb.switch_to(d);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn idoms() {
        let f = build();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let (entry, a, b, c, d) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3), BlockId(4));
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(a), Some(entry));
        assert_eq!(dom.idom(b), Some(a));
        assert_eq!(dom.idom(c), Some(a));
        assert_eq!(dom.idom(d), Some(a)); // join point
    }

    #[test]
    fn dominates_relation() {
        let f = build();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let (entry, a, b, d) = (BlockId(0), BlockId(1), BlockId(2), BlockId(4));
        assert!(dom.dominates(entry, d));
        assert!(dom.dominates(a, d));
        assert!(!dom.dominates(b, d));
        assert!(dom.dominates(d, d));
        assert!(!dom.dominates(d, a));
    }
}
