//! Instructions and virtual registers.

use std::fmt;

use crate::types::{Cond, Ty, Width};

/// A virtual register.
///
/// Every register is physically 64 bits wide on the modelled machine.
/// Integer registers hold raw 64-bit bit patterns; float registers hold an
/// `f64`. The IR is *not* in SSA form — the same register may be defined by
/// many instructions, exactly like the paper's JIT IR, and def–use
/// relationships are recovered with UD/DU chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// Index of this register, usable for dense side tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index of this block, usable for dense side tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifies a function within a [`Module`](crate::Module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Index of this function, usable for dense side tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Binary integer/float operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division (traps on division by zero for integer types).
    Div,
    /// Signed remainder (traps on division by zero for integer types).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left. The shift amount is masked to the operation width.
    Shl,
    /// Arithmetic (sign-propagating) shift right.
    Shr,
    /// Logical (zero-filling) shift right.
    Shru,
}

impl BinOp {
    /// Whether the operation is commutative.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Whether the operation may trap at run time (integer division by zero).
    #[must_use]
    pub fn may_trap(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Shru => "shru",
        };
        f.write_str(s)
    }
}

/// Unary operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation at the operation width.
    Neg,
    /// Bitwise not.
    Not,
    /// Convert a signed 32-bit integer to `f64` (Java `i2d`).
    ///
    /// Reads the **full 64-bit register** — this is a use that *requires*
    /// its source to be sign-extended (paper Figure 2).
    I32ToF64,
    /// Convert a signed 64-bit integer to `f64` (Java `l2d`).
    I64ToF64,
    /// Convert an `f64` to a signed 32-bit integer, truncating toward zero
    /// and saturating like Java `d2i`. The result is sign-extended.
    F64ToI32,
    /// Convert an `f64` to a signed 64-bit integer (Java `d2l`).
    F64ToI64,
    /// Zero-extend the low bits of the source into the full register
    /// (Java `char` widening for [`Width::W16`], unsigned masks otherwise).
    Zext(Width),
    /// Float negation.
    FNeg,
    /// Float square root (needed by several numeric workloads).
    FSqrt,
    /// Float absolute value.
    FAbs,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("neg"),
            UnOp::Not => f.write_str("not"),
            UnOp::I32ToF64 => f.write_str("i32tof64"),
            UnOp::I64ToF64 => f.write_str("i64tof64"),
            UnOp::F64ToI32 => f.write_str("f64toi32"),
            UnOp::F64ToI64 => f.write_str("f64toi64"),
            UnOp::Zext(w) => write!(f, "zext{w}"),
            UnOp::FNeg => f.write_str("fneg"),
            UnOp::FSqrt => f.write_str("fsqrt"),
            UnOp::FAbs => f.write_str("fabs"),
        }
    }
}

/// One IR instruction.
///
/// The final instruction of every basic block is a *terminator*
/// ([`Inst::Br`], [`Inst::CondBr`], or [`Inst::Ret`]); no terminator may
/// appear elsewhere. Deleted instructions are replaced by [`Inst::Nop`]
/// tombstones so that [`InstId`](crate::InstId)s remain stable while the
/// elimination passes mutate a function.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// A deleted instruction; ignored by all analyses and by the VM.
    Nop,
    /// Materialize an integer constant of type `ty` into `dst`.
    ///
    /// Like real code generators, the constant is materialized in full
    /// 64-bit sign-extended form, so the destination is always known to be
    /// sign-extended (and upper-zero when the value is non-negative).
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant, stored sign-extended.
        value: i64,
        /// Program-level type of the constant.
        ty: Ty,
    },
    /// Materialize a float constant.
    ConstF {
        /// Destination register.
        dst: Reg,
        /// The constant.
        value: f64,
    },
    /// Register-to-register copy at the given type.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Program-level type of the copied value.
        ty: Ty,
    },
    /// Unary operation. Integer ops operate at width `ty`.
    Un {
        /// Operation.
        op: UnOp,
        /// Program-level type the operation is performed at.
        ty: Ty,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Binary operation at width `ty`.
    ///
    /// At `ty == I32` the machine performs the full 64-bit operation on the
    /// raw register values; the low 32 bits of the result always equal the
    /// true 32-bit result, the upper 32 bits are unspecified (except for
    /// ops where they are derivable, see [`semantics`](crate::semantics)).
    Bin {
        /// Operation.
        op: BinOp,
        /// Program-level type the operation is performed at.
        ty: Ty,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// Compare and set `dst` to 1 or 0.
    ///
    /// `ty` selects the comparison width: `I32` compares only the low 32
    /// bits (IA64 `cmp4` / PPC `cmpw`), `I64` compares full registers (and
    /// therefore requires sign-extended operands for 32-bit values), `F64`
    /// compares floats.
    Setcc {
        /// Condition.
        cond: Cond,
        /// Comparison width.
        ty: Ty,
        /// Destination register (receives 0 or 1).
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// Explicit sign extension: `dst = sign_extend(low from-bits of src)`.
    ///
    /// This is the instruction whose dynamic count the paper's evaluation
    /// measures and whose elimination is the subject of the algorithm.
    Extend {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// How many low bits are extended.
        from: Width,
    },
    /// A *dummy* sign extension (paper §2.1): semantically a no-op marker
    /// asserting that `src` is already sign-extended at this point (for
    /// example, an array index just used in a successful access).
    ///
    /// Dummies participate in UD/DU chains like real extensions so that
    /// `AnalyzeDEF` can rely on them, and are removed after elimination.
    JustExtended {
        /// Destination register (always equal to `src` when inserted by
        /// the framework).
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Width the value is known to be extended from.
        from: Width,
    },
    /// Allocate a new array of `len` elements of type `elem`, initialized
    /// to zero. Traps with [`NegativeArraySize`](crate::TrapKind) if the
    /// low 32 bits of `len` are negative.
    NewArray {
        /// Destination register (receives an array reference).
        dst: Reg,
        /// Requested length (an `i32`).
        len: Reg,
        /// Element type.
        elem: Ty,
    },
    /// Read the length of an array into `dst`. The result is in
    /// `0 ..= 0x7fff_ffff` and thus both sign-extended and upper-zero.
    ArrayLen {
        /// Destination register.
        dst: Reg,
        /// Array reference.
        array: Reg,
    },
    /// Load `array[index]` into `dst`.
    ///
    /// Semantics follow the paper's §3 machine model: the bounds check
    /// compares only the **low 32 bits** of `index` (as an unsigned value)
    /// against the length, then the effective address is computed from the
    /// **full 64-bit register** (IA64 `shladd`). Narrow elements are
    /// zero-extended on [`Target::Ia64`](crate::Target) and sign-extended
    /// on [`Target::Ppc64`](crate::Target), except `I8`/`I16` which load
    /// sign-extended on both (Java `byte`/`short` loads).
    ArrayLoad {
        /// Destination register.
        dst: Reg,
        /// Array reference.
        array: Reg,
        /// Index (an `i32` subscript expression).
        index: Reg,
        /// Element type.
        elem: Ty,
    },
    /// Store `src` into `array[index]`; same addressing semantics as
    /// [`Inst::ArrayLoad`]. Only the low `elem` bits of `src` are stored,
    /// so the store itself never requires a sign extension.
    ArrayStore {
        /// Array reference.
        array: Reg,
        /// Index (an `i32` subscript expression).
        index: Reg,
        /// Value to store.
        src: Reg,
        /// Element type.
        elem: Ty,
    },
    /// Call another function in the module.
    ///
    /// The calling convention is the usual 64-bit one: narrow integer
    /// arguments and return values are passed **sign-extended**, so an
    /// `i32` argument is a use that requires extension and an `i32` return
    /// value arrives sign-extended in the caller.
    Call {
        /// Destination register for the return value, if any.
        dst: Option<Reg>,
        /// Callee.
        func: FuncId,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch. Comparison width semantics are identical to
    /// [`Inst::Setcc`].
    CondBr {
        /// Condition.
        cond: Cond,
        /// Comparison width.
        ty: Ty,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
        /// Block taken when the condition holds.
        then_bb: BlockId,
        /// Block taken otherwise.
        else_bb: BlockId,
    },
    /// Return from the function, optionally with a value.
    ///
    /// Returning a narrow integer requires the value to be sign-extended
    /// (calling convention), which is why the paper's Figure 7 needs an
    /// extension for `t` before `(double) t` even outside the loop.
    Ret {
        /// Returned register, if the function returns a value.
        value: Option<Reg>,
    },
}

impl Inst {
    /// The register this instruction defines, if any.
    #[must_use]
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Inst::Const { dst, .. }
            | Inst::ConstF { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Setcc { dst, .. }
            | Inst::Extend { dst, .. }
            | Inst::JustExtended { dst, .. }
            | Inst::NewArray { dst, .. }
            | Inst::ArrayLen { dst, .. }
            | Inst::ArrayLoad { dst, .. } => Some(dst),
            Inst::Call { dst, .. } => dst,
            Inst::Nop
            | Inst::ArrayStore { .. }
            | Inst::Br { .. }
            | Inst::CondBr { .. }
            | Inst::Ret { .. } => None,
        }
    }

    /// Append the registers this instruction reads to `out`.
    ///
    /// The same register may appear more than once (for example
    /// `add r1, r1`).
    pub fn collect_uses(&self, out: &mut Vec<Reg>) {
        match *self {
            Inst::Nop | Inst::Const { .. } | Inst::ConstF { .. } | Inst::Br { .. } => {}
            Inst::Copy { src, .. }
            | Inst::Un { src, .. }
            | Inst::Extend { src, .. }
            | Inst::JustExtended { src, .. } => out.push(src),
            Inst::Bin { lhs, rhs, .. } | Inst::Setcc { lhs, rhs, .. } => {
                out.push(lhs);
                out.push(rhs);
            }
            Inst::NewArray { len, .. } => out.push(len),
            Inst::ArrayLen { array, .. } => out.push(array),
            Inst::ArrayLoad { array, index, .. } => {
                out.push(array);
                out.push(index);
            }
            Inst::ArrayStore { array, index, src, .. } => {
                out.push(array);
                out.push(index);
                out.push(src);
            }
            Inst::Call { ref args, .. } => out.extend_from_slice(args),
            Inst::CondBr { lhs, rhs, .. } => {
                out.push(lhs);
                out.push(rhs);
            }
            Inst::Ret { value } => {
                if let Some(v) = value {
                    out.push(v);
                }
            }
        }
    }

    /// The registers this instruction reads, as a freshly allocated vector.
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.collect_uses(&mut v);
        v
    }

    /// Whether this instruction ends a basic block.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. })
    }

    /// Successor blocks of a terminator (empty for non-terminators and
    /// returns).
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Inst::Br { target } => vec![target],
            Inst::CondBr { then_bb, else_bb, .. } => vec![then_bb, else_bb],
            _ => Vec::new(),
        }
    }

    /// Whether this is a real (explicit, non-dummy) sign extension of the
    /// given width; `None` matches any width.
    #[must_use]
    pub fn is_extend(&self, width: Option<Width>) -> bool {
        match *self {
            Inst::Extend { from, .. } => width.is_none() || width == Some(from),
            _ => false,
        }
    }

    /// Whether the instruction has an observable effect besides defining
    /// its destination (memory write, call, control flow, or possible trap).
    #[must_use]
    pub fn has_side_effect(&self) -> bool {
        match self {
            Inst::ArrayStore { .. }
            | Inst::Call { .. }
            | Inst::Br { .. }
            | Inst::CondBr { .. }
            | Inst::Ret { .. }
            | Inst::NewArray { .. }
            | Inst::ArrayLoad { .. }
            | Inst::ArrayLen { .. } => true,
            Inst::Bin { op, .. } => op.may_trap(),
            _ => false,
        }
    }

    /// Rewrite every register (uses **and** destination) through `map`.
    pub fn map_regs(&mut self, mut map: impl FnMut(Reg) -> Reg) {
        match self {
            Inst::Nop | Inst::Br { .. } => {}
            Inst::Const { dst, .. } | Inst::ConstF { dst, .. } => *dst = map(*dst),
            Inst::Copy { dst, src, .. }
            | Inst::Un { dst, src, .. }
            | Inst::Extend { dst, src, .. }
            | Inst::JustExtended { dst, src, .. } => {
                *dst = map(*dst);
                *src = map(*src);
            }
            Inst::Bin { dst, lhs, rhs, .. } | Inst::Setcc { dst, lhs, rhs, .. } => {
                *dst = map(*dst);
                *lhs = map(*lhs);
                *rhs = map(*rhs);
            }
            Inst::NewArray { dst, len, .. } => {
                *dst = map(*dst);
                *len = map(*len);
            }
            Inst::ArrayLen { dst, array } => {
                *dst = map(*dst);
                *array = map(*array);
            }
            Inst::ArrayLoad { dst, array, index, .. } => {
                *dst = map(*dst);
                *array = map(*array);
                *index = map(*index);
            }
            Inst::ArrayStore { array, index, src, .. } => {
                *array = map(*array);
                *index = map(*index);
                *src = map(*src);
            }
            Inst::Call { dst, args, .. } => {
                if let Some(d) = dst {
                    *d = map(*d);
                }
                for a in args {
                    *a = map(*a);
                }
            }
            Inst::CondBr { lhs, rhs, .. } => {
                *lhs = map(*lhs);
                *rhs = map(*rhs);
            }
            Inst::Ret { value } => {
                if let Some(v) = value {
                    *v = map(*v);
                }
            }
        }
    }

    /// Rewrite every branch target through `map` (no-op for
    /// non-terminators and returns).
    pub fn map_blocks(&mut self, mut map: impl FnMut(BlockId) -> BlockId) {
        match self {
            Inst::Br { target } => *target = map(*target),
            Inst::CondBr { then_bb, else_bb, .. } => {
                *then_bb = map(*then_bb);
                *else_bb = map(*else_bb);
            }
            _ => {}
        }
    }

    /// Rewrite every use of register `from` to `to`. The destination is
    /// left untouched.
    pub fn replace_uses(&mut self, from: Reg, to: Reg) {
        let repl = |r: &mut Reg| {
            if *r == from {
                *r = to;
            }
        };
        match self {
            Inst::Nop | Inst::Const { .. } | Inst::ConstF { .. } | Inst::Br { .. } => {}
            Inst::Copy { src, .. }
            | Inst::Un { src, .. }
            | Inst::Extend { src, .. }
            | Inst::JustExtended { src, .. } => repl(src),
            Inst::Bin { lhs, rhs, .. } | Inst::Setcc { lhs, rhs, .. } => {
                repl(lhs);
                repl(rhs);
            }
            Inst::NewArray { len, .. } => repl(len),
            Inst::ArrayLen { array, .. } => repl(array),
            Inst::ArrayLoad { array, index, .. } => {
                repl(array);
                repl(index);
            }
            Inst::ArrayStore { array, index, src, .. } => {
                repl(array);
                repl(index);
                repl(src);
            }
            Inst::Call { args, .. } => args.iter_mut().for_each(repl),
            Inst::CondBr { lhs, rhs, .. } => {
                repl(lhs);
                repl(rhs);
            }
            Inst::Ret { value } => {
                if let Some(v) = value {
                    repl(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            ty: Ty::I32,
            dst: Reg(3),
            lhs: Reg(1),
            rhs: Reg(2),
        };
        assert_eq!(i.dst(), Some(Reg(3)));
        assert_eq!(i.uses(), vec![Reg(1), Reg(2)]);
        assert!(!i.is_terminator());
    }

    #[test]
    fn duplicate_uses_are_kept() {
        let i = Inst::Bin {
            op: BinOp::Mul,
            ty: Ty::I32,
            dst: Reg(0),
            lhs: Reg(7),
            rhs: Reg(7),
        };
        assert_eq!(i.uses(), vec![Reg(7), Reg(7)]);
    }

    #[test]
    fn terminator_successors() {
        let br = Inst::Br { target: BlockId(4) };
        assert!(br.is_terminator());
        assert_eq!(br.successors(), vec![BlockId(4)]);

        let cb = Inst::CondBr {
            cond: Cond::Lt,
            ty: Ty::I32,
            lhs: Reg(0),
            rhs: Reg(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(cb.successors(), vec![BlockId(1), BlockId(2)]);

        let ret = Inst::Ret { value: None };
        assert!(ret.is_terminator());
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn replace_uses_not_dst() {
        let mut i = Inst::Bin {
            op: BinOp::Add,
            ty: Ty::I32,
            dst: Reg(1),
            lhs: Reg(1),
            rhs: Reg(2),
        };
        i.replace_uses(Reg(1), Reg(9));
        match i {
            Inst::Bin { dst, lhs, rhs, .. } => {
                assert_eq!(dst, Reg(1));
                assert_eq!(lhs, Reg(9));
                assert_eq!(rhs, Reg(2));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn map_regs_covers_all_slots() {
        let mut i = Inst::ArrayLoad { dst: Reg(1), array: Reg(2), index: Reg(3), elem: Ty::I32 };
        i.map_regs(|r| Reg(r.0 + 10));
        assert_eq!(
            i,
            Inst::ArrayLoad { dst: Reg(11), array: Reg(12), index: Reg(13), elem: Ty::I32 }
        );
        let mut c = Inst::Call { dst: Some(Reg(0)), func: FuncId(0), args: vec![Reg(1), Reg(2)] };
        c.map_regs(|r| Reg(r.0 * 2));
        assert_eq!(
            c,
            Inst::Call { dst: Some(Reg(0)), func: FuncId(0), args: vec![Reg(2), Reg(4)] }
        );
    }

    #[test]
    fn map_blocks_retargets() {
        let mut i = Inst::CondBr {
            cond: Cond::Eq,
            ty: Ty::I32,
            lhs: Reg(0),
            rhs: Reg(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        i.map_blocks(|b| BlockId(b.0 + 5));
        assert_eq!(i.successors(), vec![BlockId(6), BlockId(7)]);
    }

    #[test]
    fn extend_predicates() {
        let e = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 };
        assert!(e.is_extend(None));
        assert!(e.is_extend(Some(Width::W32)));
        assert!(!e.is_extend(Some(Width::W16)));
        let d = Inst::JustExtended { dst: Reg(0), src: Reg(0), from: Width::W32 };
        assert!(!d.is_extend(None));
    }

    #[test]
    fn side_effects() {
        assert!(Inst::Bin {
            op: BinOp::Div,
            ty: Ty::I32,
            dst: Reg(0),
            lhs: Reg(1),
            rhs: Reg(2)
        }
        .has_side_effect());
        assert!(!Inst::Bin {
            op: BinOp::Add,
            ty: Ty::I32,
            dst: Reg(0),
            lhs: Reg(1),
            rhs: Reg(2)
        }
        .has_side_effect());
        assert!(!Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 }.has_side_effect());
    }
}
