//! Sign-extension semantics of every instruction — the single source of
//! truth shared by all elimination algorithms and checked against the VM.
//!
//! All queries are relative to a *query width* `w` (usually
//! [`Width::W32`]): the algorithms ask, for a register holding a value
//! whose meaningful bits are the low `w` bits,
//!
//! * **use side** ([`classify_uses`]): does this instruction read bits `>= w`
//!   of the operand in a way that affects observable behaviour? This is the
//!   paper's `AnalyzeUSE` case analysis.
//! * **def side** ([`def_facts`]): what does this instruction guarantee
//!   about bits `>= w` of its destination? This is the paper's `AnalyzeDEF`
//!   case analysis.
//!
//! The machine model: registers are 64-bit; on IA64/PPC64 an operation at
//! [`Ty::I32`] performs the full 64-bit operation on raw register values
//! (its low 32 result bits always equal the true 32-bit result), while on
//! MIPS64 the true 32-bit ALU ops read the sign-extended low words and
//! write canonically sign-extended results; 32-bit compares (IA64 `cmp4` /
//! PPC `cmpw`) read only the low 32 bits; array bounds checks use such
//! compares, while the effective address uses the full register (IA64
//! `shladd`).

use crate::inst::{BinOp, Inst, Reg, UnOp};
use crate::types::{Target, Ty, Width};

/// What an instruction guarantees about the destination's bits above the
/// query width.
///
/// The lattice is a powerset: more `true` fields = more information.
/// `sign_extended && upper_zero` means the value is a non-negative
/// `w`-bit value, the precondition of the paper's Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtFacts {
    /// The full register equals the sign extension of its low `w` bits.
    pub sign_extended: bool,
    /// All bits at positions `>= w` are zero.
    pub upper_zero: bool,
}

impl ExtFacts {
    /// No information.
    pub const NONE: ExtFacts = ExtFacts { sign_extended: false, upper_zero: false };
    /// Both facts hold (a non-negative `w`-bit value).
    pub const NONNEG: ExtFacts = ExtFacts { sign_extended: true, upper_zero: true };
    /// Sign-extended only.
    pub const EXTENDED: ExtFacts = ExtFacts { sign_extended: true, upper_zero: false };
    /// Upper bits zero only (e.g. an IA64 zero-extending 32-bit load).
    pub const UPPER_ZERO: ExtFacts = ExtFacts { sign_extended: false, upper_zero: true };

    /// Pointwise conjunction: the facts that hold on *every* incoming def.
    #[must_use]
    pub fn meet(self, other: ExtFacts) -> ExtFacts {
        ExtFacts {
            sign_extended: self.sign_extended && other.sign_extended,
            upper_zero: self.upper_zero && other.upper_zero,
        }
    }
}

/// How an instruction uses one of its operands, relative to the query
/// width `w` (paper `AnalyzeUSE` cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseKind {
    /// Bits `>= w` of the operand cannot affect the instruction's
    /// behaviour or results (Case 1; e.g. a 32-bit store or 32-bit
    /// compare at `w == 32`).
    Ignored,
    /// The instruction reads bits `>= w` directly (full-register read,
    /// e.g. `i2d`, 64-bit compare, division, calling convention) — the
    /// operand must be extended.
    Required,
    /// Bits `>= w` of the operand affect only bits `>= w` of the
    /// destination (Case 2; e.g. add/and/copy): the operand needs
    /// extension only if the destination does.
    Transmits,
    /// The operand is an array subscript in an effective-address
    /// computation — `Required` in principle, but eligible for the
    /// Theorem 1–4 analysis of paper §3.
    ArrayIndex,
}

/// Classify every operand of `inst` (in [`Inst::uses`] order) for the
/// query width `w`.
///
/// # Panics
/// Never panics; unknown combinations default to [`UseKind::Required`]
/// (the conservative answer).
#[must_use]
pub fn classify_uses(inst: &Inst, w: Width) -> Vec<(Reg, UseKind)> {
    use UseKind::{ArrayIndex, Ignored, Required, Transmits};
    let wb = w.bits();
    // A read of the low `bits` bits only.
    let low_read = |bits: u32| if wb >= bits { Ignored } else { Required };
    match *inst {
        Inst::Nop | Inst::Const { .. } | Inst::ConstF { .. } | Inst::Br { .. } => Vec::new(),
        Inst::Copy { src, ty, .. } => {
            let k = match ty {
                // A 64-bit copy moves the full register, but bits >= w of
                // the source affect only bits >= w of the destination.
                Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64 => Transmits,
                Ty::F64 => Required,
            };
            vec![(src, k)]
        }
        Inst::Un { op, ty, src, .. } => {
            let k = match op {
                // Bit k of the result depends only on bits <= k of the
                // source for these, so demand transmits.
                UnOp::Neg | UnOp::Not => match ty {
                    Ty::F64 => Required,
                    _ => Transmits,
                },
                // Full-register reads.
                UnOp::I32ToF64 | UnOp::I64ToF64 => Required,
                UnOp::F64ToI32 | UnOp::F64ToI64 | UnOp::FNeg | UnOp::FSqrt | UnOp::FAbs => {
                    Required
                }
                UnOp::Zext(from) => low_read(from.bits()),
            };
            vec![(src, k)]
        }
        Inst::Bin { op, ty, lhs, rhs, .. } => {
            let k = match (op, ty) {
                (_, Ty::F64) => Required,
                // Low bits of the result depend only on low bits of the
                // inputs: demand transmits through these at any width.
                (
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor,
                    _,
                ) => Transmits,
                // Left shift: bit k of the result depends on bits <= k.
                (BinOp::Shl, _) => Transmits,
                // Arithmetic right shift is performed on the full
                // register, so higher bits flow into the low result bits.
                (BinOp::Shr, _) => Required,
                // Logical right shift at width 32 extracts the low 32 bits
                // first (IA64 `extr.u`), so bits >= 32 are ignored; at
                // width 64 it reads the full register.
                (BinOp::Shru, Ty::I64) => Required,
                (BinOp::Shru, _) => low_read(32),
                // Division is performed as a 64-bit divide.
                (BinOp::Div | BinOp::Rem, _) => Required,
            };
            // Shifts: the amount operand is masked to the width, i.e. only
            // its low 6 bits are read.
            if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::Shru) && ty != Ty::F64 {
                return vec![(lhs, k), (rhs, Ignored)];
            }
            vec![(lhs, k), (rhs, k)]
        }
        Inst::Setcc { ty, lhs, rhs, .. } => {
            let k = match ty {
                Ty::I64 | Ty::F64 => Required,
                // cmp4-style compares read only the low 32 bits.
                _ => low_read(32),
            };
            vec![(lhs, k), (rhs, k)]
        }
        Inst::CondBr { ty, lhs, rhs, .. } => {
            let k = match ty {
                Ty::I64 | Ty::F64 => Required,
                _ => low_read(32),
            };
            vec![(lhs, k), (rhs, k)]
        }
        Inst::Extend { src, from, .. } | Inst::JustExtended { src, from, .. } => {
            // Reads only the low `from` bits.
            vec![(src, low_read(from.bits()))]
        }
        Inst::NewArray { len, .. } => {
            // Negative-size check and allocation use the low 32 bits via a
            // 32-bit compare.
            vec![(len, low_read(32))]
        }
        Inst::ArrayLen { array, .. } => vec![(array, Required)],
        Inst::ArrayLoad { array, index, .. } => {
            let idx = if wb == 32 { ArrayIndex } else { Required };
            vec![(array, Required), (index, idx)]
        }
        Inst::ArrayStore { array, index, src, elem } => {
            let idx = if wb == 32 { ArrayIndex } else { Required };
            let val = match elem {
                Ty::I8 => low_read(8),
                Ty::I16 => low_read(16),
                Ty::I32 => low_read(32),
                // A 64-bit store of a narrow value needs the full register.
                Ty::I64 | Ty::F64 => Required,
            };
            vec![(array, Required), (index, idx), (src, val)]
        }
        // Calling convention: arguments are passed as full registers, with
        // narrow integers sign-extended; return values likewise.
        Inst::Call { ref args, .. } => args.iter().map(|&a| (a, Required)).collect(),
        Inst::Ret { value } => value.map(|v| (v, Required)).into_iter().collect(),
    }
}

/// Look up the [`UseKind`] of register `r` in `inst`, taking the *weakest*
/// requirement if `r` appears in several operand slots is **not** the
/// right semantics — the strongest (most demanding) slot governs, so this
/// returns the maximum demand across slots, with
/// `Required > ArrayIndex > Transmits > Ignored`.
///
/// Returns `None` if `inst` does not use `r`.
#[must_use]
pub fn use_kind_of(inst: &Inst, r: Reg, w: Width) -> Option<UseKind> {
    let rank = |k: UseKind| match k {
        UseKind::Ignored => 0,
        UseKind::Transmits => 1,
        UseKind::ArrayIndex => 2,
        UseKind::Required => 3,
    };
    classify_uses(inst, w)
        .into_iter()
        .filter(|&(reg, _)| reg == r)
        .map(|(_, k)| k)
        .max_by_key(|&k| rank(k))
}

/// Compute the [`ExtFacts`] that `inst` guarantees for its destination at
/// query width `w`, on `target`.
///
/// For instructions whose guarantee depends on the facts of their sources
/// (paper `AnalyzeDEF` Case 2: copies, bitwise ops, …), the callback
/// `src_facts` supplies the facts of a source register *at this
/// instruction* (typically the meet over its reaching definitions).
/// Instructions with unconditional guarantees never invoke the callback.
pub fn def_facts(
    inst: &Inst,
    target: Target,
    w: Width,
    src_facts: &mut dyn FnMut(Reg) -> ExtFacts,
) -> ExtFacts {
    let wb = w.bits();
    match *inst {
        Inst::Const { value, .. } => {
            // Constants are materialized in full sign-extended 64-bit form.
            ExtFacts {
                sign_extended: w.sign_extend(value) == value,
                upper_zero: w.zero_extend(value) == value,
            }
        }
        Inst::Copy { src, ty, .. } if ty != Ty::F64 => src_facts(src),
        Inst::Extend { from, .. } | Inst::JustExtended { from, .. } => {
            // sign-extended-from-8 implies sign-extended-from-16/32.
            ExtFacts { sign_extended: wb >= from.bits(), upper_zero: false }
        }
        Inst::Un { op, ty, src, .. } => match op {
            UnOp::Zext(from) => {
                if wb > from.bits() {
                    // Value is in [0, 2^from), below the sign bit of w.
                    ExtFacts::NONNEG
                } else if wb == from.bits() {
                    ExtFacts::UPPER_ZERO
                } else {
                    ExtFacts::NONE
                }
            }
            // Bitwise not of a sign-extended value is sign-extended.
            UnOp::Not if ty != Ty::F64 => ExtFacts {
                sign_extended: src_facts(src).sign_extended,
                upper_zero: false,
            },
            // MIPS64 negu is `subu $0, v` — a canonicalizing 32-bit ALU op,
            // so its result is born sign-extended from bit 31.
            UnOp::Neg if target == Target::Mips64 && ty.is_narrow_int() => {
                ExtFacts { sign_extended: wb == 32, upper_zero: false }
            }
            // d2i produces a saturated, sign-extended i32.
            UnOp::F64ToI32 => {
                if wb >= 32 {
                    ExtFacts::EXTENDED
                } else {
                    ExtFacts::NONE
                }
            }
            _ => ExtFacts::NONE,
        },
        // MIPS64 canonical-form invariant: every true 32-bit ALU op
        // (`addu`/`subu`/`mul`/`div`/`mod`/`sll`/`sra`/`srl`) reads the
        // sign-extended low words and writes its result sign-extended from
        // bit 31 — so at query width 32 the destination is EXTENDED no
        // matter what the inputs hold. Bitwise ops are excluded: MIPS has
        // no 32-bit `and`/`or`/`xor` forms, they stay raw 64-bit register
        // ops and fall through to the target-independent analysis below.
        Inst::Bin { op, ty, lhs, .. }
            if target == Target::Mips64
                && ty.is_narrow_int()
                && !matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) =>
        {
            // Refinement: a canonical remainder, arithmetic shift, or
            // logical shift of a non-negative (at w) dividend stays
            // non-negative, so the upper bits are also zero.
            let upper_zero = wb == 32
                && matches!(op, BinOp::Rem | BinOp::Shr | BinOp::Shru)
                && {
                    let l = src_facts(lhs);
                    l.sign_extended && l.upper_zero
                };
            ExtFacts { sign_extended: wb == 32, upper_zero }
        }
        Inst::Bin { op, ty, lhs, rhs, .. } if ty != Ty::F64 => match op {
            BinOp::And => {
                let l = src_facts(lhs);
                let r = src_facts(rhs);
                let nonneg_side = (l.sign_extended && l.upper_zero)
                    || (r.sign_extended && r.upper_zero);
                ExtFacts {
                    // Paper AnalyzeDEF Case 1 example: AND with an operand
                    // known non-negative (at width w) clears the upper
                    // bits and the sign bit.
                    sign_extended: (l.sign_extended && r.sign_extended) || nonneg_side,
                    upper_zero: l.upper_zero || r.upper_zero,
                }
            }
            BinOp::Or | BinOp::Xor => {
                let l = src_facts(lhs);
                let r = src_facts(rhs);
                ExtFacts {
                    sign_extended: l.sign_extended && r.sign_extended,
                    upper_zero: l.upper_zero && r.upper_zero,
                }
            }
            // Arithmetic right shift preserves both facts: the inputs are
            // required to be extended for correctness anyway, and shifting
            // a w-bit-extended (or upper-zero) value right keeps it so.
            BinOp::Shr => src_facts(lhs),
            // Remainder of sign-extended operands: |a % b| < |b| <= 2^31,
            // so the 64-bit remainder always fits in (and therefore
            // equals the sign extension of) 32 bits. Non-negative when
            // the dividend is non-negative.
            BinOp::Rem if wb == 32 => {
                let l = src_facts(lhs);
                let r = src_facts(rhs);
                let ext = l.sign_extended && r.sign_extended;
                ExtFacts {
                    sign_extended: ext,
                    upper_zero: ext && l.upper_zero,
                }
            }
            // Logical right shift at width 32 extracts then shifts: the
            // result always fits in 32 unsigned bits.
            BinOp::Shru if ty == Ty::I32 && wb == 32 => ExtFacts::UPPER_ZERO,
            // Add/Sub/Mul/Shl may carry into the upper bits.
            _ => ExtFacts::NONE,
        },
        Inst::Setcc { .. } => ExtFacts::NONNEG, // result is 0 or 1
        Inst::ArrayLen { .. } => {
            if wb == 32 {
                // Lengths are 0 ..= 0x7fff_ffff.
                ExtFacts::NONNEG
            } else {
                ExtFacts::NONE
            }
        }
        Inst::ArrayLoad { elem, .. } => match elem {
            // byte/short loads sign-extend on both targets (Java `baload`).
            Ty::I8 => ExtFacts { sign_extended: wb >= 8, upper_zero: false },
            Ty::I16 => ExtFacts { sign_extended: wb >= 16, upper_zero: false },
            Ty::I32 if wb == 32 => match target {
                // The paper's IA64 premise: memory reads zero-extend.
                Target::Ia64 => ExtFacts::UPPER_ZERO,
                // PPC64 `lwa` and MIPS64 `lw`: implicit sign extension.
                Target::Ppc64 | Target::Mips64 => ExtFacts::EXTENDED,
            },
            _ => ExtFacts::NONE,
        },
        // Calling convention: narrow returns arrive sign-extended. The
        // callee's return type is not stored in the instruction; callers
        // that know it can refine, but sign-extension holds for every
        // integer return in this IR's convention.
        Inst::Call { .. } => ExtFacts { sign_extended: wb == 32, upper_zero: false },
        _ => ExtFacts::NONE,
    }
}

/// Facts guaranteed for a function parameter at query width `w`: narrow
/// integer parameters arrive sign-extended per the calling convention.
#[must_use]
pub fn param_facts(ty: Ty, w: Width) -> ExtFacts {
    match ty.width() {
        Some(pw) if w.bits() >= pw.bits() => ExtFacts::EXTENDED,
        _ => ExtFacts::NONE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BlockId;
    use crate::types::Cond;

    fn no_src(_: Reg) -> ExtFacts {
        ExtFacts::NONE
    }

    #[test]
    fn i2d_requires_extension() {
        let i = Inst::Un { op: UnOp::I32ToF64, ty: Ty::F64, dst: Reg(1), src: Reg(0) };
        assert_eq!(use_kind_of(&i, Reg(0), Width::W32), Some(UseKind::Required));
    }

    #[test]
    fn add32_transmits() {
        let i = Inst::Bin { op: BinOp::Add, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        assert_eq!(use_kind_of(&i, Reg(0), Width::W32), Some(UseKind::Transmits));
        assert_eq!(use_kind_of(&i, Reg(0), Width::W8), Some(UseKind::Transmits));
    }

    #[test]
    fn store32_ignores_upper_bits() {
        let i = Inst::ArrayStore { array: Reg(0), index: Reg(1), src: Reg(2), elem: Ty::I32 };
        assert_eq!(use_kind_of(&i, Reg(2), Width::W32), Some(UseKind::Ignored));
        // ...but an 8-bit extension of the stored value cannot be removed
        // just because of the store: bits 8..32 are stored.
        assert_eq!(use_kind_of(&i, Reg(2), Width::W8), Some(UseKind::Required));
        // The index is an array subscript at width 32.
        assert_eq!(use_kind_of(&i, Reg(1), Width::W32), Some(UseKind::ArrayIndex));
    }

    #[test]
    fn compare32_vs_compare64() {
        let c32 = Inst::Setcc { cond: Cond::Lt, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        let c64 = Inst::Setcc { cond: Cond::Lt, ty: Ty::I64, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        assert_eq!(use_kind_of(&c32, Reg(0), Width::W32), Some(UseKind::Ignored));
        assert_eq!(use_kind_of(&c64, Reg(0), Width::W32), Some(UseKind::Required));
    }

    #[test]
    fn same_reg_in_two_slots_takes_strongest() {
        // r0 is both the array and the index: the array slot Requires.
        let i = Inst::ArrayLoad { dst: Reg(1), array: Reg(0), index: Reg(0), elem: Ty::I32 };
        assert_eq!(use_kind_of(&i, Reg(0), Width::W32), Some(UseKind::Required));
    }

    #[test]
    fn shift_semantics() {
        let shr = Inst::Bin { op: BinOp::Shr, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        assert_eq!(use_kind_of(&shr, Reg(0), Width::W32), Some(UseKind::Required));
        // The shift amount's upper bits are ignored.
        assert_eq!(use_kind_of(&shr, Reg(1), Width::W32), Some(UseKind::Ignored));
        let shru = Inst::Bin { op: BinOp::Shru, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        assert_eq!(use_kind_of(&shru, Reg(0), Width::W32), Some(UseKind::Ignored));
        let shl = Inst::Bin { op: BinOp::Shl, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        assert_eq!(use_kind_of(&shl, Reg(0), Width::W32), Some(UseKind::Transmits));
    }

    #[test]
    fn extend_reads_only_low_bits() {
        let e = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 };
        assert_eq!(use_kind_of(&e, Reg(0), Width::W32), Some(UseKind::Ignored));
        assert_eq!(use_kind_of(&e, Reg(0), Width::W8), Some(UseKind::Required));
    }

    #[test]
    fn const_facts() {
        let pos = Inst::Const { dst: Reg(0), value: 7, ty: Ty::I32 };
        assert_eq!(def_facts(&pos, Target::Ia64, Width::W32, &mut no_src), ExtFacts::NONNEG);
        let neg = Inst::Const { dst: Reg(0), value: -1, ty: Ty::I32 };
        assert_eq!(def_facts(&neg, Target::Ia64, Width::W32, &mut no_src), ExtFacts::EXTENDED);
        // -1 is not sign-extended-from-8? It is: sext8(0xFF..FF low 8 = 0xFF) = -1. Yes.
        assert_eq!(def_facts(&neg, Target::Ia64, Width::W8, &mut no_src), ExtFacts::EXTENDED);
        let big = Inst::Const { dst: Reg(0), value: 300, ty: Ty::I32 };
        assert_eq!(
            def_facts(&big, Target::Ia64, Width::W8, &mut no_src),
            ExtFacts::NONE // 300 has bits above 8 and is not sext8
        );
    }

    #[test]
    fn load_facts_depend_on_target() {
        let l = Inst::ArrayLoad { dst: Reg(1), array: Reg(0), index: Reg(2), elem: Ty::I32 };
        assert_eq!(def_facts(&l, Target::Ia64, Width::W32, &mut no_src), ExtFacts::UPPER_ZERO);
        assert_eq!(def_facts(&l, Target::Ppc64, Width::W32, &mut no_src), ExtFacts::EXTENDED);
        let b = Inst::ArrayLoad { dst: Reg(1), array: Reg(0), index: Reg(2), elem: Ty::I8 };
        assert_eq!(def_facts(&b, Target::Ia64, Width::W32, &mut no_src), ExtFacts::EXTENDED);
    }

    #[test]
    fn and_with_nonneg_constant_is_extended() {
        // Paper AnalyzeDEF Case 1: j = j & 0x0fffffff.
        let and = Inst::Bin { op: BinOp::And, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        let mut facts = |r: Reg| {
            if r == Reg(1) {
                ExtFacts::NONNEG // the constant side
            } else {
                ExtFacts::NONE // unknown j
            }
        };
        let f = def_facts(&and, Target::Ia64, Width::W32, &mut facts);
        assert!(f.sign_extended && f.upper_zero);
    }

    #[test]
    fn copy_passes_facts_through() {
        let c = Inst::Copy { dst: Reg(1), src: Reg(0), ty: Ty::I32 };
        let mut f = |_: Reg| ExtFacts::EXTENDED;
        assert_eq!(def_facts(&c, Target::Ia64, Width::W32, &mut f), ExtFacts::EXTENDED);
    }

    #[test]
    fn add_gives_no_facts() {
        let a = Inst::Bin { op: BinOp::Add, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        let mut f = |_: Reg| ExtFacts::NONNEG;
        // 0x7fffffff + 1 overflows the sign bit: no guarantee survives.
        assert_eq!(def_facts(&a, Target::Ia64, Width::W32, &mut f), ExtFacts::NONE);
    }

    #[test]
    fn setcc_and_arraylen_are_nonneg() {
        let s = Inst::Setcc { cond: Cond::Eq, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        assert_eq!(def_facts(&s, Target::Ia64, Width::W32, &mut no_src), ExtFacts::NONNEG);
        let l = Inst::ArrayLen { dst: Reg(1), array: Reg(0) };
        assert_eq!(def_facts(&l, Target::Ia64, Width::W32, &mut no_src), ExtFacts::NONNEG);
    }

    #[test]
    fn zext_facts() {
        let z8 = Inst::Un { op: UnOp::Zext(Width::W8), ty: Ty::I32, dst: Reg(1), src: Reg(0) };
        assert_eq!(def_facts(&z8, Target::Ia64, Width::W32, &mut no_src), ExtFacts::NONNEG);
        let z32 = Inst::Un { op: UnOp::Zext(Width::W32), ty: Ty::I64, dst: Reg(1), src: Reg(0) };
        assert_eq!(def_facts(&z32, Target::Ia64, Width::W32, &mut no_src), ExtFacts::UPPER_ZERO);
    }

    #[test]
    fn param_facts_by_width() {
        assert_eq!(param_facts(Ty::I32, Width::W32), ExtFacts::EXTENDED);
        assert_eq!(param_facts(Ty::I8, Width::W32), ExtFacts::EXTENDED);
        assert_eq!(param_facts(Ty::I32, Width::W8), ExtFacts::NONE);
        assert_eq!(param_facts(Ty::I64, Width::W32), ExtFacts::NONE);
        assert_eq!(param_facts(Ty::F64, Width::W32), ExtFacts::NONE);
    }

    #[test]
    fn rem_of_extended_is_extended() {
        let rem = Inst::Bin { op: BinOp::Rem, ty: Ty::I32, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        let mut both = |_: Reg| ExtFacts::EXTENDED;
        assert_eq!(def_facts(&rem, Target::Ia64, Width::W32, &mut both), ExtFacts::EXTENDED);
        let mut nonneg_dividend = |r: Reg| {
            if r == Reg(0) {
                ExtFacts::NONNEG
            } else {
                ExtFacts::EXTENDED
            }
        };
        assert_eq!(
            def_facts(&rem, Target::Ia64, Width::W32, &mut nonneg_dividend),
            ExtFacts::NONNEG
        );
        let mut none = |_: Reg| ExtFacts::NONE;
        assert_eq!(def_facts(&rem, Target::Ia64, Width::W32, &mut none), ExtFacts::NONE);
        // At width 8 the bound argument does not apply.
        assert_eq!(def_facts(&rem, Target::Ia64, Width::W8, &mut both), ExtFacts::NONE);
    }

    #[test]
    fn extend_def_facts() {
        let e = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W8 };
        // Extended from 8 implies extended from 32.
        assert!(def_facts(&e, Target::Ia64, Width::W32, &mut no_src).sign_extended);
        let e32 = Inst::Extend { dst: Reg(0), src: Reg(0), from: Width::W32 };
        assert!(!def_facts(&e32, Target::Ia64, Width::W8, &mut no_src).sign_extended);
    }

    #[test]
    fn branch_classification() {
        let cb = Inst::CondBr {
            cond: Cond::Gt,
            ty: Ty::I32,
            lhs: Reg(0),
            rhs: Reg(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(use_kind_of(&cb, Reg(0), Width::W32), Some(UseKind::Ignored));
        assert_eq!(use_kind_of(&cb, Reg(0), Width::W16), Some(UseKind::Required));
    }
}
