//! Functions, basic blocks, and modules.

use std::fmt;

use crate::inst::{BlockId, FuncId, Inst, Reg};
use crate::types::Ty;

/// Identifies one instruction inside a function: block plus index within
/// the block's instruction vector.
///
/// Instruction ids are stable across the elimination passes because deleted
/// instructions become [`Inst::Nop`] tombstones instead of being removed
/// from the vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Index within the block.
    pub index: u32,
}

impl InstId {
    /// Create an instruction id.
    #[must_use]
    pub fn new(block: BlockId, index: usize) -> InstId {
        InstId { block, index: index as u32 }
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.index)
    }
}

/// A basic block: a straight-line sequence of instructions ending in a
/// terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// The instructions, terminator last. May contain [`Inst::Nop`]
    /// tombstones anywhere before the terminator.
    pub insts: Vec<Inst>,
}

impl Block {
    /// The terminator instruction, if the block is non-empty and finished.
    #[must_use]
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }

    /// Successor blocks per the terminator; empty for unfinished blocks.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator().map(Inst::successors).unwrap_or_default()
    }

    /// Number of non-tombstone instructions.
    #[must_use]
    pub fn live_len(&self) -> usize {
        self.insts.iter().filter(|i| !matches!(i, Inst::Nop)).count()
    }
}

/// A function: a parameter list, a return type, and a CFG of basic blocks.
///
/// Block 0 is always the entry block. Parameters are pre-defined registers;
/// narrow integer parameters arrive **sign-extended** per the calling
/// convention.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Parameter registers and their types, in call order.
    pub params: Vec<(Reg, Ty)>,
    /// Return type; `None` for void functions.
    pub ret: Option<Ty>,
    /// Basic blocks; index 0 is the entry.
    pub blocks: Vec<Block>,
    /// Number of virtual registers allocated so far.
    pub reg_count: u32,
}

impl Function {
    /// Create an empty function with a single unfinished entry block.
    #[must_use]
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> Function {
        let param_regs: Vec<(Reg, Ty)> = params
            .into_iter()
            .enumerate()
            .map(|(i, ty)| (Reg(i as u32), ty))
            .collect();
        let reg_count = param_regs.len() as u32;
        Function {
            name: name.into(),
            params: param_regs,
            ret,
            blocks: vec![Block::default()],
            reg_count,
        }
    }

    /// The entry block id.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocate a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.reg_count);
        self.reg_count += 1;
        r
    }

    /// Append a new empty block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        id
    }

    /// Borrow a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutably borrow a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Borrow one instruction.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[must_use]
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.blocks[id.block.index()].insts[id.index as usize]
    }

    /// Mutably borrow one instruction.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.blocks[id.block.index()].insts[id.index as usize]
    }

    /// Replace an instruction with a [`Inst::Nop`] tombstone, returning the
    /// previous instruction.
    ///
    /// # Panics
    /// Panics if the id is out of range or names a terminator.
    pub fn delete_inst(&mut self, id: InstId) -> Inst {
        let inst = self.inst_mut(id);
        assert!(!inst.is_terminator(), "cannot tombstone a terminator: {id}");
        std::mem::replace(inst, Inst::Nop)
    }

    /// Iterate over the ids of all blocks.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Iterate over `(InstId, &Inst)` for every non-tombstone instruction
    /// in layout order.
    pub fn insts(&self) -> impl Iterator<Item = (InstId, &Inst)> + '_ {
        self.blocks.iter().enumerate().flat_map(|(b, blk)| {
            blk.insts.iter().enumerate().filter_map(move |(i, inst)| {
                if matches!(inst, Inst::Nop) {
                    None
                } else {
                    Some((InstId::new(BlockId(b as u32), i), inst))
                }
            })
        })
    }

    /// Total number of non-tombstone instructions.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(Block::live_len).sum()
    }

    /// Count the real sign-extension instructions, optionally restricted to
    /// one width.
    #[must_use]
    pub fn count_extends(&self, width: Option<crate::Width>) -> usize {
        self.insts().filter(|(_, i)| i.is_extend(width)).count()
    }

    /// Remove all tombstones, compacting every block.
    ///
    /// Invalidates all outstanding [`InstId`]s; call only between passes.
    pub fn compact(&mut self) {
        for blk in &mut self.blocks {
            blk.insts.retain(|i| !matches!(i, Inst::Nop));
        }
    }

    /// Delete every block unreachable from the entry, remapping the
    /// surviving branch targets. Returns the number of blocks removed.
    ///
    /// Unreachable blocks are legal IR (the verifier skips them for
    /// definite assignment), but test-case reduction wants them gone:
    /// collapsing a conditional branch strands its untaken arm.
    pub fn drop_unreachable_blocks(&mut self) -> usize {
        let n = self.blocks.len();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for s in self.blocks[b].successors() {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s.index());
                }
            }
        }
        if seen.iter().all(|&s| s) {
            return 0;
        }
        let mut remap = vec![crate::BlockId(0); n];
        let mut next = 0u32;
        for (i, keep) in seen.iter().enumerate() {
            if *keep {
                remap[i] = crate::BlockId(next);
                next += 1;
            }
        }
        let mut i = 0;
        self.blocks.retain(|_| {
            let keep = seen[i];
            i += 1;
            keep
        });
        for blk in &mut self.blocks {
            for inst in &mut blk.insts {
                inst.map_blocks(|t| remap[t.index()]);
            }
        }
        n - self.blocks.len()
    }

    /// A 64-bit structural fingerprint of the function.
    ///
    /// Two calls return the same value iff the textual form (which
    /// includes `nop` tombstones, so [`InstId`]-keyed analysis facts stay
    /// keyed correctly) and the register allocation high-water mark are
    /// unchanged. The analysis cache uses this to detect stale memoized
    /// facts without being told which pass rewrote what.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use std::fmt::Write as _;

        /// FNV-1a over every formatted fragment, no intermediate string.
        struct Fnv(u64);
        impl std::fmt::Write for Fnv {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                for &b in s.as_bytes() {
                    self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                }
                Ok(())
            }
        }

        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        let _ = write!(h, "{self}#regs={}", self.reg_count);
        h.0
    }
}

/// A module: a set of functions that may call each other.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// The functions; index = [`FuncId`].
    pub functions: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    #[must_use]
    pub fn new() -> Module {
        Module::default()
    }

    /// Add a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Borrow a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutably borrow a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Find a function by name.
    #[must_use]
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Iterate over `(FuncId, &Function)`.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &Function)> + '_ {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total count of real sign extensions across all functions.
    #[must_use]
    pub fn count_extends(&self, width: Option<crate::Width>) -> usize {
        self.functions.iter().map(|f| f.count_extends(width)).sum()
    }

    /// Total live (non-tombstone) instruction count across all functions
    /// — the size metric test-case reduction minimizes.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }

    /// Remove a function, shifting every later function's [`FuncId`] down
    /// by one and rewriting all remaining `call` instructions to match.
    ///
    /// # Panics
    /// Panics if `id` is out of range, or if a call to the removed
    /// function remains anywhere in the module (the caller must check —
    /// there is no meaningful remap for a dangling callee).
    pub fn remove_function(&mut self, id: FuncId) -> Function {
        let removed = self.functions.remove(id.index());
        for f in &mut self.functions {
            for blk in &mut f.blocks {
                for inst in &mut blk.insts {
                    if let Inst::Call { func, .. } = inst {
                        assert!(
                            *func != id,
                            "removed function @{} is still called from @{}",
                            removed.name,
                            f.name,
                        );
                        if func.index() > id.index() {
                            *func = FuncId(func.0 - 1);
                        }
                    }
                }
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Width;
    use crate::BinOp;

    fn sample() -> Function {
        let mut f = Function::new("t", vec![Ty::I32, Ty::I32], Some(Ty::I32));
        let r = f.new_reg();
        let b = f.entry();
        f.block_mut(b).insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Ty::I32,
            dst: r,
            lhs: Reg(0),
            rhs: Reg(1),
        });
        f.block_mut(b).insts.push(Inst::Extend { dst: r, src: r, from: Width::W32 });
        f.block_mut(b).insts.push(Inst::Ret { value: Some(r) });
        f
    }

    #[test]
    fn unreachable_blocks_are_dropped_and_targets_remapped() {
        let mut f = Function::new("t", vec![Ty::I32], Some(Ty::I32));
        let b0 = f.entry();
        let dead = f.new_block();
        let tail = f.new_block();
        f.block_mut(b0).insts.push(Inst::Br { target: tail });
        f.block_mut(dead).insts.push(Inst::Ret { value: Some(Reg(0)) });
        f.block_mut(tail).insts.push(Inst::Ret { value: Some(Reg(0)) });
        assert_eq!(f.drop_unreachable_blocks(), 1);
        assert_eq!(f.blocks.len(), 2);
        // The branch to the old b2 now targets the compacted b1.
        assert_eq!(f.block(BlockId(0)).terminator(), Some(&Inst::Br { target: BlockId(1) }));
        assert_eq!(f.drop_unreachable_blocks(), 0, "idempotent");
    }

    #[test]
    fn remove_function_remaps_later_callees() {
        let mut m = Module::new();
        for name in ["a", "b", "c"] {
            let mut f = Function::new(name, vec![], Some(Ty::I32));
            let r = f.new_reg();
            let b = f.entry();
            f.block_mut(b).insts.push(Inst::Const { dst: r, value: 1, ty: Ty::I32 });
            f.block_mut(b).insts.push(Inst::Ret { value: Some(r) });
            m.add_function(f);
        }
        // a calls c (FuncId 2); removing b must shift the callee to 1.
        let call_dst = m.functions[0].new_reg();
        m.functions[0].blocks[0]
            .insts
            .insert(1, Inst::Call { dst: Some(call_dst), func: FuncId(2), args: vec![] });
        assert_eq!(m.inst_count(), 7);
        let removed = m.remove_function(FuncId(1));
        assert_eq!(removed.name, "b");
        assert_eq!(m.functions.len(), 2);
        match m.functions[0].blocks[0].insts[1] {
            Inst::Call { func, .. } => assert_eq!(func, FuncId(1)),
            ref other => panic!("unexpected inst {other:?}"),
        }
    }

    #[test]
    fn params_are_registers() {
        let f = sample();
        assert_eq!(f.params, vec![(Reg(0), Ty::I32), (Reg(1), Ty::I32)]);
        assert_eq!(f.reg_count, 3);
    }

    #[test]
    fn inst_iteration_skips_tombstones() {
        let mut f = sample();
        assert_eq!(f.inst_count(), 3);
        assert_eq!(f.count_extends(None), 1);
        let id = InstId::new(f.entry(), 1);
        let old = f.delete_inst(id);
        assert!(old.is_extend(None));
        assert_eq!(f.inst_count(), 2);
        assert_eq!(f.count_extends(None), 0);
        assert_eq!(f.insts().count(), 2);
    }

    #[test]
    #[should_panic(expected = "terminator")]
    fn cannot_delete_terminator() {
        let mut f = sample();
        f.delete_inst(InstId::new(f.entry(), 2));
    }

    #[test]
    fn compact_removes_tombstones() {
        let mut f = sample();
        f.delete_inst(InstId::new(f.entry(), 1));
        f.compact();
        assert_eq!(f.block(f.entry()).insts.len(), 2);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let id = m.add_function(sample());
        assert_eq!(m.function_by_name("t"), Some(id));
        assert_eq!(m.function_by_name("missing"), None);
        assert_eq!(m.count_extends(None), 1);
    }

    #[test]
    fn fingerprint_tracks_structural_change() {
        let f = sample();
        let fp = f.fingerprint();
        assert_eq!(fp, sample().fingerprint(), "deterministic");

        // A tombstone changes the fingerprint (InstId-keyed facts would
        // otherwise be served stale after a later compact).
        let mut g = sample();
        g.delete_inst(InstId::new(g.entry(), 1));
        assert_ne!(fp, g.fingerprint());
        let with_tombstone = g.fingerprint();
        g.compact();
        assert_ne!(with_tombstone, g.fingerprint(), "compact observable");

        // So does a pure register-count bump.
        let mut h = sample();
        h.new_reg();
        assert_ne!(fp, h.fingerprint());
    }

    #[test]
    fn block_successors() {
        let f = sample();
        assert!(f.block(f.entry()).successors().is_empty());
        assert!(f.block(f.entry()).terminator().is_some());
    }
}
