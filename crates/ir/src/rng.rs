//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace builds with no registry access, so instead of an
//! external PRNG crate every consumer of randomness — the differential
//! oracle in `sxe-vm`, the fault-injection corruption in `sxe-jit`, and
//! the property-style tests — shares this xorshift64* generator. Same
//! seed, same sequence, on every platform: failures reproduce exactly.

/// A seedable xorshift64* generator.
///
/// ```
/// use sxe_ir::rng::XorShift;
/// let mut a = XorShift::new(42);
/// let mut b = XorShift::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Create a generator from a seed (any value; zero is remapped).
    #[must_use]
    pub fn new(seed: u64) -> XorShift {
        // Splash the seed through a splitmix64 round so small seeds
        // (0, 1, 2, ...) do not yield correlated early outputs.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        XorShift { state: if z == 0 { 0x853c_49e6_748f_ea9b } else { z } }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound` of 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction; the slight modulo bias is irrelevant
        // for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `0..bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A full-range `i64`.
    pub fn any_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// A full-range `i32`.
    pub fn any_i32(&mut self) -> i32 {
        self.next_u64() as i32
    }

    /// A coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fork an independent stream (for seeding sub-generators without
    /// coupling their sequences to how much the parent has consumed).
    pub fn fork(&mut self) -> XorShift {
        XorShift::new(self.next_u64())
    }

    /// Pick an index with probability proportional to its weight: index
    /// `i` is returned with probability `weights[i] / sum`. Zero-weight
    /// entries are never picked; an all-zero (or empty) slice yields 0.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        if total == 0 {
            return 0;
        }
        let mut roll = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return i;
            }
            roll -= w;
        }
        weights.len() - 1
    }

    /// Uniformly choose an element of a slice.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let s1: Vec<u64> = {
            let mut r = XorShift::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let s2: Vec<u64> = {
            let mut r = XorShift::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let s3: Vec<u64> = {
            let mut r = XorShift::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn bounds_respected() {
        let mut r = XorShift::new(1);
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            let w = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&w));
            let i = r.index(3);
            assert!(i < 3);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn weighted_respects_zero_and_distribution() {
        let mut r = XorShift::new(9);
        let mut hits = [0usize; 4];
        for _ in 0..4000 {
            hits[r.weighted(&[3, 0, 1, 0])] += 1;
        }
        assert_eq!(hits[1], 0);
        assert_eq!(hits[3], 0);
        assert!(hits[0] > hits[2], "weight 3 beats weight 1: {hits:?}");
        assert!(hits[2] > 0);
        assert_eq!(r.weighted(&[0, 0]), 0);
        assert_eq!(r.weighted(&[]), 0);
    }

    #[test]
    fn choose_picks_every_element_eventually() {
        let mut r = XorShift::new(3);
        let items = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*r.choose(&items));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn small_seeds_decorrelated() {
        let a = XorShift::new(0).next_u64();
        let b = XorShift::new(1).next_u64();
        assert_ne!(a, b);
        assert_ne!(a >> 32, b >> 32);
    }
}
