//! `mpegaudio`: fixed-point subband synthesis in the style of SPECjvm98's
//! 222.mpegaudio — multiply-accumulate FIR filtering with arithmetic
//! right shifts. `>>` at width 32 *requires* a sign-extended input on the
//! modelled machine, so this kernel keeps a meaningful floor of
//! non-eliminable extensions (Table 2 shows ~6.6% remaining even for the
//! full algorithm).

use sxe_ir::{BinOp, FunctionBuilder, Module, Ty};

use crate::dsl::{add, alloc_filled, and_c, c32, for_range, mul_c, shr_c, sub};

const TAPS: i64 = 32;

/// Build the kernel; `size` is the number of output samples.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let in_len = c32(&mut fb, n + TAPS);
    // 16-bit samples stored sign-extended in an i16 array.
    let samples = alloc_filled(&mut fb, Ty::I16, in_len, 0xA0D1, 0xFFFF);
    let tap_len = c32(&mut fb, TAPS);
    let coefs = alloc_filled(&mut fb, Ty::I16, tap_len, 0xC0EF, 0xFFFF);
    let nreg = c32(&mut fb, n);
    let out = fb.new_array(Ty::I32, nreg);
    let zero = c32(&mut fb, 0);

    for_range(&mut fb, zero, nreg, |fb, t| {
        let acc = fb.new_reg();
        let z = c32(fb, 0);
        fb.copy_to(Ty::I32, acc, z);
        let taps = c32(fb, TAPS);
        for_range(fb, z, taps, |fb, k| {
            let idx = add(fb, t, k);
            let s = fb.array_load(Ty::I16, samples, idx); // sign-extended i16
            let c = fb.array_load(Ty::I16, coefs, k);
            // Q15 multiply-accumulate: (s*c) >> 15 summed into acc.
            let p = fb.bin(BinOp::Mul, Ty::I32, s, c);
            let scaled = shr_c(fb, p, 15); // requires extension!
            let na = add(fb, acc, scaled);
            fb.copy_to(Ty::I32, acc, na);
        });
        // Saturate to 16 bits via compares.
        let hi = c32(fb, 32_767);
        let lo = c32(fb, -32_768);
        crate::dsl::if_then(fb, sxe_ir::Cond::Gt, acc, hi, |fb| {
            let h = c32(fb, 32_767);
            fb.copy_to(Ty::I32, acc, h);
        });
        crate::dsl::if_then(fb, sxe_ir::Cond::Lt, acc, lo, |fb| {
            let l = c32(fb, -32_768);
            fb.copy_to(Ty::I32, acc, l);
        });
        fb.array_store(Ty::I32, out, t, acc);
    });

    // Windowed energy estimate: sum of |out[t] - out[t-1]| >> 2.
    let energy = fb.new_reg();
    fb.copy_to(Ty::I32, energy, zero);
    let one = c32(&mut fb, 1);
    for_range(&mut fb, one, nreg, |fb, t| {
        let cur = fb.array_load(Ty::I32, out, t);
        let one_c = c_one(fb);
        let tm1 = sub(fb, t, one_c);
        let prev = fb.array_load(Ty::I32, out, tm1);
        let d = sub(fb, cur, prev);
        // |d| without branches: (d ^ (d>>31)) - (d>>31).
        let sign = shr_c(fb, d, 31);
        let x = fb.bin(BinOp::Xor, Ty::I32, d, sign);
        let absd = sub(fb, x, sign);
        let s2 = shr_c(fb, absd, 2);
        let ne = add(fb, energy, s2);
        fb.copy_to(Ty::I32, energy, ne);
    });

    let h = crate::dsl::checksum_i32(&mut fb, out);
    let masked = and_c(&mut fb, energy, 0x7FFF_FFFF);
    let outv = fb.bin(BinOp::Xor, Ty::I32, h, masked);
    let _ = mul_c;
    fb.ret(Some(outv));
    m.add_function(fb.finish());
    m
}

fn c_one(fb: &mut FunctionBuilder) -> sxe_ir::Reg {
    c32(fb, 1)
}
