//! `compress`: an LZW compressor in the style of SPECjvm98's 201.compress
//! (itself derived from Unix compress). Hash-table probing with shifted
//! codes and byte input — the per-iteration mix of masks, shifts, and
//! array accesses that gives this benchmark one of the largest dynamic
//! extension counts and the biggest measured speedup (Figure 14).

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{
    add, alloc_filled, and_c, c32, for_range, if_else, if_then, shl_c,
};

const HASH_BITS: i64 = 13;
const TABLE_SIZE: i64 = 1 << HASH_BITS;

/// Build the kernel; `size` is the input length in bytes.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let nreg = c32(&mut fb, n);
    // Input with a small alphabet so the dictionary actually hits.
    let input = alloc_filled(&mut fb, Ty::I8, nreg, 0xC0DE, 0x0F);
    let tsize = c32(&mut fb, TABLE_SIZE);
    let hash_key = fb.new_array(Ty::I32, tsize); // packed (prefix<<8)|char, -1 = empty
    let hash_code = fb.new_array(Ty::I32, tsize);
    let out = fb.new_array(Ty::I32, nreg);
    let zero = c32(&mut fb, 0);
    let minus1 = c32(&mut fb, -1);
    // Clear the table to "empty".
    for_range(&mut fb, zero, tsize, |fb, i| {
        fb.array_store(Ty::I32, hash_key, i, minus1);
    });

    let next_code = fb.new_reg();
    let first_code = c32(&mut fb, 256);
    fb.copy_to(Ty::I32, next_code, first_code);
    let out_len = fb.new_reg();
    fb.copy_to(Ty::I32, out_len, zero);
    let w = fb.new_reg(); // current prefix code
    let b0 = fb.array_load(Ty::I8, input, zero);
    let w0 = and_c(&mut fb, b0, 0xFF);
    fb.copy_to(Ty::I32, w, w0);

    let one = c32(&mut fb, 1);
    for_range(&mut fb, one, nreg, |fb, i| {
        let b = fb.array_load(Ty::I8, input, i);
        let c = and_c(fb, b, 0xFF);
        // key = (w << 8) | c
        let wsh = shl_c(fb, w, 8);
        let key = fb.bin(BinOp::Or, Ty::I32, wsh, c);
        // h = ((w << 4) ^ c) & (TABLE_SIZE-1), linear probing.
        let wh = shl_c(fb, w, 4);
        let hx = fb.bin(BinOp::Xor, Ty::I32, wh, c);
        let h = fb.new_reg();
        let h0 = and_c(fb, hx, TABLE_SIZE - 1);
        fb.copy_to(Ty::I32, h, h0);
        let found = fb.new_reg();
        let m1 = c32(fb, -1);
        fb.copy_to(Ty::I32, found, m1);
        // Probe until an empty slot or a key match.
        let head = fb.new_block();
        let check = fb.new_block();
        let matched = fb.new_block();
        let advance = fb.new_block();
        let done = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let slot_key = fb.array_load(Ty::I32, hash_key, h);
        let empty = c32(fb, -1);
        fb.cond_br(Cond::Eq, Ty::I32, slot_key, empty, done, check);
        fb.switch_to(check);
        fb.cond_br(Cond::Eq, Ty::I32, slot_key, key, matched, advance);
        fb.switch_to(matched);
        let code = fb.array_load(Ty::I32, hash_code, h);
        fb.copy_to(Ty::I32, found, code);
        fb.br(done);
        fb.switch_to(advance);
        let o = c32(fb, 1);
        let h1 = fb.bin(BinOp::Add, Ty::I32, h, o);
        let hm = and_c(fb, h1, TABLE_SIZE - 1);
        fb.copy_to(Ty::I32, h, hm);
        fb.br(head);
        fb.switch_to(done);

        let m2 = c32(fb, -1);
        if_else(
            fb,
            Cond::Ne,
            found,
            m2,
            |fb| {
                // In dictionary: extend the prefix.
                fb.copy_to(Ty::I32, w, found);
            },
            |fb| {
                // Emit w, add (w,c) to the dictionary, restart at c.
                fb.array_store(Ty::I32, out, out_len, w);
                let o = c32(fb, 1);
                fb.bin_to(BinOp::Add, Ty::I32, out_len, out_len, o);
                let cap = c32(fb, TABLE_SIZE - 1);
                if_then(fb, Cond::Lt, next_code, cap, |fb| {
                    fb.array_store(Ty::I32, hash_key, h, key);
                    fb.array_store(Ty::I32, hash_code, h, next_code);
                    let o2 = c32(fb, 1);
                    fb.bin_to(BinOp::Add, Ty::I32, next_code, next_code, o2);
                });
                fb.copy_to(Ty::I32, w, c);
            },
        );
    });
    // Flush the final prefix.
    fb.array_store(Ty::I32, out, out_len, w);
    let one2 = c32(&mut fb, 1);
    fb.bin_to(BinOp::Add, Ty::I32, out_len, out_len, one2);

    // Checksum the emitted codes.
    let h = fb.new_reg();
    fb.copy_to(Ty::I32, h, zero);
    for_range(&mut fb, zero, out_len, |fb, i| {
        let v = fb.array_load(Ty::I32, out, i);
        let h31 = crate::dsl::mul_c(fb, h, 31);
        let nh = add(fb, h31, v);
        fb.copy_to(Ty::I32, h, nh);
    });
    let mixed = fb.bin(BinOp::Xor, Ty::I32, h, out_len);
    fb.ret(Some(mixed));
    m.add_function(fb.finish());
    m
}
