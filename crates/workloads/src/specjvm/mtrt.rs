//! `mtrt`: a miniature ray tracer in the style of SPECjvm98's 227.mtrt —
//! per-pixel ray/sphere intersection in `f64`, writing shaded colors
//! into an `i32` framebuffer indexed by `y*W + x`.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty, UnOp};

use crate::dsl::{add, c32, for_range, mul_c};

/// Build the kernel; `size` is the image width (height = width/2).
#[must_use]
pub fn build(size: u32) -> Module {
    let w = size as i64;
    let h = (size as i64 / 2).max(2);
    let mut m = Module::new();

    // shade(disc_scaled: i32) -> i32 color, a table-free tone map.
    let mut fb = FunctionBuilder::new("shade", vec![Ty::I32], Some(Ty::I32));
    let d = fb.param(0);
    let d2 = crate::dsl::shru_c(&mut fb, d, 3);
    let g = crate::dsl::and_c(&mut fb, d2, 0xFF);
    let gs = crate::dsl::shl_c(&mut fb, g, 8);
    let color = fb.bin(BinOp::Or, Ty::I32, gs, g);
    fb.ret(Some(color));
    let shade = m.add_function(fb.finish());

    // main(): trace the grid.
    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let npix = c32(&mut fb, w * h);
    let fbuf = fb.new_array(Ty::I32, npix);
    let zero = c32(&mut fb, 0);
    let hreg = c32(&mut fb, h);
    // Sphere at (0,0,4), r^2 = 1.5; camera rays through the pixel grid.
    let cz = fb.fconst(4.0);
    let r2 = fb.fconst(1.5);
    let half_w = fb.fconst(w as f64 / 2.0);
    let half_h = fb.fconst(h as f64 / 2.0);
    let inv_scale = fb.fconst(2.0 / w as f64);

    for_range(&mut fb, zero, hreg, |fb, y| {
        let row = mul_c(fb, y, w);
        let z = c32(fb, 0);
        let wr = c32(fb, w);
        for_range(fb, z, wr, |fb, x| {
            // Ray direction (dx, dy, 1), normalized only by scale.
            let xf = fb.un(UnOp::I32ToF64, Ty::F64, x);
            let yf = fb.un(UnOp::I32ToF64, Ty::F64, y);
            let xc = fb.bin(BinOp::Sub, Ty::F64, xf, half_w);
            let yc = fb.bin(BinOp::Sub, Ty::F64, yf, half_h);
            let dx = fb.bin(BinOp::Mul, Ty::F64, xc, inv_scale);
            let dy = fb.bin(BinOp::Mul, Ty::F64, yc, inv_scale);
            // Quadratic: a = dx^2+dy^2+1, b = -2*cz, c = cz^2 - r^2.
            let dx2 = fb.bin(BinOp::Mul, Ty::F64, dx, dx);
            let dy2 = fb.bin(BinOp::Mul, Ty::F64, dy, dy);
            let sum = fb.bin(BinOp::Add, Ty::F64, dx2, dy2);
            let onef = fb.fconst(1.0);
            let a = fb.bin(BinOp::Add, Ty::F64, sum, onef);
            let cz2 = fb.bin(BinOp::Mul, Ty::F64, cz, cz);
            let cc = fb.bin(BinOp::Sub, Ty::F64, cz2, r2);
            let four = fb.fconst(4.0);
            let b2 = fb.bin(BinOp::Mul, Ty::F64, cz2, four); // b^2 = 4*cz^2
            let ac = fb.bin(BinOp::Mul, Ty::F64, a, cc);
            let ac4 = fb.bin(BinOp::Mul, Ty::F64, ac, four);
            let disc = fb.bin(BinOp::Sub, Ty::F64, b2, ac4);
            // Hit if disc > 0: shade by sqrt(disc), else background.
            let color = fb.new_reg();
            let bg = c32(fb, 0x10);
            fb.copy_to(Ty::I32, color, bg);
            let zf = fb.fconst(0.0);
            let hit_bb = fb.new_block();
            let join = fb.new_block();
            fb.cond_br(Cond::Gt, Ty::F64, disc, zf, hit_bb, join);
            fb.switch_to(hit_bb);
            let root = fb.un(UnOp::FSqrt, Ty::F64, disc);
            let scale = fb.fconst(512.0);
            let t = fb.bin(BinOp::Mul, Ty::F64, root, scale);
            let ti = fb.un(UnOp::F64ToI32, Ty::I32, t);
            let c = fb.call(shade, vec![ti], true).expect("result");
            fb.copy_to(Ty::I32, color, c);
            fb.br(join);
            fb.switch_to(join);
            let idx = add(fb, row, x);
            fb.array_store(Ty::I32, fbuf, idx, color);
        });
    });

    let hsum = crate::dsl::checksum_i32(&mut fb, fbuf);
    fb.ret(Some(hsum));
    m.add_function(fb.finish());
    m
}
