//! `db`: an in-memory database in the style of SPECjvm98's 209.db —
//! scans, field comparisons, and a shellsort over fixed-width records
//! stored in a flat `i32` array.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{add, alloc_filled, c32, for_range, if_then, mul_c};

const FIELDS: i64 = 4;

/// Build the kernel; `size` is the record count.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    // field(db, rec, f) -> value
    let mut fb = FunctionBuilder::new("field", vec![Ty::I64, Ty::I32, Ty::I32], Some(Ty::I32));
    let db = fb.param(0);
    let rec = fb.param(1);
    let f = fb.param(2);
    let base = mul_c(&mut fb, rec, FIELDS);
    let idx = add(&mut fb, base, f);
    let v = fb.array_load(Ty::I32, db, idx);
    fb.ret(Some(v));
    let field = m.add_function(fb.finish());

    // main()
    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let total = c32(&mut fb, n * FIELDS);
    let db = alloc_filled(&mut fb, Ty::I32, total, 0xDBDB, 0xFFFF);
    let nreg = c32(&mut fb, n);
    let zero = c32(&mut fb, 0);
    let result = fb.new_reg();
    fb.copy_to(Ty::I32, result, zero);

    // Query 1: count records where field0 < field1.
    let zero_f = c32(&mut fb, 0);
    let one_f = c32(&mut fb, 1);
    for_range(&mut fb, zero, nreg, |fb, r| {
        let a = fb.call(field, vec![db, r, zero_f], true).expect("result");
        let b = fb.call(field, vec![db, r, one_f], true).expect("result");
        if_then(fb, Cond::Lt, a, b, |fb| {
            let o = c32(fb, 1);
            fb.bin_to(BinOp::Add, Ty::I32, result, result, o);
        });
    });

    // Query 2: shellsort record order by field 2 (order kept in an index
    // array, like db's Vector of records).
    let order = fb.new_array(Ty::I32, nreg);
    for_range(&mut fb, zero, nreg, |fb, i| {
        fb.array_store(Ty::I32, order, i, i);
    });
    let gap = fb.new_reg();
    let half_n = c32(&mut fb, n / 2);
    fb.copy_to(Ty::I32, gap, half_n);
    let gap_head = fb.new_block();
    let gap_body = fb.new_block();
    let gap_exit = fb.new_block();
    fb.br(gap_head);
    fb.switch_to(gap_head);
    fb.cond_br(Cond::Gt, Ty::I32, gap, zero, gap_body, gap_exit);
    fb.switch_to(gap_body);
    for_range(&mut fb, gap, nreg, |fb, i| {
        // Insertion within the gap sequence.
        let j = fb.new_reg();
        fb.copy_to(Ty::I32, j, i);
        let head = fb.new_block();
        let cmp_bb = fb.new_block();
        let swap_bb = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        fb.cond_br(Cond::Ge, Ty::I32, j, gap, cmp_bb, exit);
        fb.switch_to(cmp_bb);
        let jm = fb.bin(BinOp::Sub, Ty::I32, j, gap);
        let rj = fb.array_load(Ty::I32, order, j);
        let rjm = fb.array_load(Ty::I32, order, jm);
        let two = c32(fb, 2);
        let vj = fb.call(field, vec![db, rj, two], true).expect("result");
        let vjm = fb.call(field, vec![db, rjm, two], true).expect("result");
        fb.cond_br(Cond::Lt, Ty::I32, vj, vjm, swap_bb, exit);
        fb.switch_to(swap_bb);
        fb.array_store(Ty::I32, order, j, rjm);
        fb.array_store(Ty::I32, order, jm, rj);
        fb.copy_to(Ty::I32, j, jm);
        fb.br(head);
        fb.switch_to(exit);
    });
    let two2 = c32(&mut fb, 2);
    let ng = fb.bin(BinOp::Div, Ty::I32, gap, two2);
    fb.copy_to(Ty::I32, gap, ng);
    fb.br(gap_head);
    fb.switch_to(gap_exit);

    // Query 3: range scan over the sorted order (median band).
    let lo = c32(&mut fb, 0x4000);
    let hi = c32(&mut fb, 0xC000);
    let band = fb.new_reg();
    fb.copy_to(Ty::I32, band, zero);
    for_range(&mut fb, zero, nreg, |fb, i| {
        let r = fb.array_load(Ty::I32, order, i);
        let two = c32(fb, 2);
        let v = fb.call(field, vec![db, r, two], true).expect("result");
        if_then(fb, Cond::Ge, v, lo, |fb| {
            if_then(fb, Cond::Lt, v, hi, |fb| {
                let o = c32(fb, 1);
                fb.bin_to(BinOp::Add, Ty::I32, band, band, o);
            });
        });
    });

    let h = crate::dsl::checksum_i32(&mut fb, order);
    let x1 = fb.bin(BinOp::Xor, Ty::I32, h, result);
    let x2 = fb.bin(BinOp::Xor, Ty::I32, x1, band);
    fb.ret(Some(x2));
    m.add_function(fb.finish());
    m
}
