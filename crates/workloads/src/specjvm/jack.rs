//! `jack`: a table-driven lexer in the style of SPECjvm98's 228.jack
//! (a parser generator) — a character-class lookup and a state-machine
//! transition table drive tokenization of a byte stream.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{add, alloc_filled, and_c, c32, for_range, if_then, mul_c, shl_c};

const STATES: i64 = 8;
const CLASSES: i64 = 8;

/// Build the kernel; `size` is the input length in bytes.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let nreg = c32(&mut fb, n);
    let input = alloc_filled(&mut fb, Ty::I8, nreg, 0x1ACC, 0x7F);
    let zero = c32(&mut fb, 0);

    // Character-class table: 128 entries, class = f(c) deterministic.
    let csize = c32(&mut fb, 128);
    let classes = fb.new_array(Ty::I32, csize);
    for_range(&mut fb, zero, csize, |fb, c| {
        let k = mul_c(fb, c, 11);
        let sh = crate::dsl::shru_c(fb, k, 2);
        let cls = and_c(fb, sh, CLASSES - 1);
        fb.array_store(Ty::I32, classes, c, cls);
    });
    // Transition table: next = trans[state*CLASSES + class].
    let tsize = c32(&mut fb, STATES * CLASSES);
    let trans = fb.new_array(Ty::I32, tsize);
    for_range(&mut fb, zero, tsize, |fb, i| {
        let k = mul_c(fb, i, 5);
        let three = c_three(fb);
        let bumped = add(fb, k, three);
        let nxt = and_c(fb, bumped, STATES - 1);
        fb.array_store(Ty::I32, trans, i, nxt);
    });
    // Token-accept mask: states 0 and 3 emit a token.
    let token_count = fb.new_reg();
    fb.copy_to(Ty::I32, token_count, zero);
    let token_hash = fb.new_reg();
    fb.copy_to(Ty::I32, token_hash, zero);

    let state = fb.new_reg();
    fb.copy_to(Ty::I32, state, zero);
    for_range(&mut fb, zero, nreg, |fb, i| {
        let b = fb.array_load(Ty::I8, input, i);
        let c = and_c(fb, b, 0x7F);
        let cls = fb.array_load(Ty::I32, classes, c);
        let base = shl_c(fb, state, 3); // state * CLASSES
        let ti = fb.bin(BinOp::Or, Ty::I32, base, cls);
        let nxt = fb.array_load(Ty::I32, trans, ti);
        fb.copy_to(Ty::I32, state, nxt);
        let three = c32(fb, 3);
        let z = c32(fb, 0);
        if_then(fb, Cond::Eq, state, z, |fb| {
            let o = c32(fb, 1);
            fb.bin_to(BinOp::Add, Ty::I32, token_count, token_count, o);
            let h31 = mul_c(fb, token_hash, 31);
            let nh = add(fb, h31, c);
            fb.copy_to(Ty::I32, token_hash, nh);
        });
        if_then(fb, Cond::Eq, state, three, |fb| {
            let h17 = mul_c(fb, token_hash, 17);
            let nh = fb.bin(BinOp::Xor, Ty::I32, h17, cls);
            fb.copy_to(Ty::I32, token_hash, nh);
        });
    });

    let out = fb.bin(BinOp::Xor, Ty::I32, token_hash, token_count);
    fb.ret(Some(out));
    m.add_function(fb.finish());
    m
}

fn c_three(fb: &mut FunctionBuilder) -> sxe_ir::Reg {
    c32(fb, 3)
}
