//! `jess`: a rule-matching loop in the style of SPECjvm98's 202.jess —
//! repeatedly matching condition tuples against a working memory of
//! facts, firing activations. Branchy integer compares over small
//! arrays, little arithmetic.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{add, alloc_filled, and_c, c32, for_range, if_then, mul_c};

const RULES: i64 = 24;

/// Build the kernel; `size` is the number of facts in working memory.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let nreg = c32(&mut fb, n);
    // Facts: (type, slot) pairs.
    let ftype = alloc_filled(&mut fb, Ty::I32, nreg, 0x3E55, 0x7);
    let fval = alloc_filled(&mut fb, Ty::I32, nreg, 0xFAC7, 0xFF);
    // Rules: required type, lo/hi bounds on the slot value.
    let rreg = c32(&mut fb, RULES);
    let rtype = alloc_filled(&mut fb, Ty::I32, rreg, 0x2217, 0x7);
    let rlo = alloc_filled(&mut fb, Ty::I32, rreg, 0x1111, 0x7F);
    let rhi_base = alloc_filled(&mut fb, Ty::I32, rreg, 0x2222, 0x7F);
    let activations = fb.new_array(Ty::I32, rreg);
    let zero = c32(&mut fb, 0);

    // rhi = rlo + offset so the band is non-empty.
    for_range(&mut fb, zero, rreg, |fb, r| {
        let lo = fb.array_load(Ty::I32, rlo, r);
        let off = fb.array_load(Ty::I32, rhi_base, r);
        let hi = add(fb, lo, off);
        fb.array_store(Ty::I32, rhi_base, r, hi);
    });

    // Repeated match-fire cycles: each cycle matches all rules against
    // all facts, fires the best rule, and mutates one fact (so the next
    // cycle differs).
    let cycles = c32(&mut fb, 16);
    let fired_total = fb.new_reg();
    fb.copy_to(Ty::I32, fired_total, zero);
    for_range(&mut fb, zero, cycles, |fb, cycle| {
        let z = c32(fb, 0);
        let rr = c32(fb, RULES);
        for_range(fb, z, rr, |fb, r| {
            let want = fb.array_load(Ty::I32, rtype, r);
            let lo = fb.array_load(Ty::I32, rlo, r);
            let hi = fb.array_load(Ty::I32, rhi_base, r);
            let hits = fb.new_reg();
            let z2 = c32(fb, 0);
            fb.copy_to(Ty::I32, hits, z2);
            let nf = c32(fb, n);
            for_range(fb, z2, nf, |fb, i| {
                let t = fb.array_load(Ty::I32, ftype, i);
                if_then(fb, Cond::Eq, t, want, |fb| {
                    let v = fb.array_load(Ty::I32, fval, i);
                    if_then(fb, Cond::Ge, v, lo, |fb| {
                        if_then(fb, Cond::Le, v, hi, |fb| {
                            let o = c32(fb, 1);
                            fb.bin_to(BinOp::Add, Ty::I32, hits, hits, o);
                        });
                    });
                });
            });
            let a = fb.array_load(Ty::I32, activations, r);
            let na = add(fb, a, hits);
            fb.array_store(Ty::I32, activations, r, na);
            let nt = add(fb, fired_total, hits);
            fb.copy_to(Ty::I32, fired_total, nt);
        });
        // Mutate one fact per cycle: working-memory churn.
        let mixed = mul_c(fb, cycle, 2654435761i64 & 0x7FFF_FFFF);
        let fi = fb.new_reg();
        let masked = and_c(fb, mixed, 0xFFFF);
        let nf2 = c32(fb, n);
        let idx = fb.bin(BinOp::Rem, Ty::I32, masked, nf2);
        fb.copy_to(Ty::I32, fi, idx);
        let old = fb.array_load(Ty::I32, fval, fi);
        let seven = c_seven(fb);
        let bumped = add(fb, old, seven);
        let wrapped = and_c(fb, bumped, 0xFF);
        fb.array_store(Ty::I32, fval, fi, wrapped);
    });

    let h = crate::dsl::checksum_i32(&mut fb, activations);
    let out = fb.bin(BinOp::Xor, Ty::I32, h, fired_total);
    fb.ret(Some(out));
    m.add_function(fb.finish());
    m
}

fn c_seven(fb: &mut FunctionBuilder) -> sxe_ir::Reg {
    c32(fb, 7)
}
