//! `javac`: symbol-table hashing in the style of SPECjvm98's 213.javac —
//! polynomial string hashing over identifier bytes and open-addressing
//! insertion/lookup with linear probing.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{add, alloc_filled, and_c, c32, for_range, mul_c};

const IDENT_LEN: i64 = 8;
const TABLE_BITS: i64 = 12;
const TABLE_SIZE: i64 = 1 << TABLE_BITS;

/// Build the kernel; `size` is the identifier count.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    // hash(data, ident) -> h: Java's 31-based polynomial hash of the
    // identifier's bytes.
    let mut fb = FunctionBuilder::new("hash", vec![Ty::I64, Ty::I32], Some(Ty::I32));
    let data = fb.param(0);
    let ident = fb.param(1);
    let base = mul_c(&mut fb, ident, IDENT_LEN);
    let h = fb.new_reg();
    let zero = c32(&mut fb, 0);
    fb.copy_to(Ty::I32, h, zero);
    let len = c32(&mut fb, IDENT_LEN);
    for_range(&mut fb, zero, len, |fb, k| {
        let idx = add(fb, base, k);
        let c = fb.array_load(Ty::I8, data, idx);
        let h31 = mul_c(fb, h, 31);
        let nh = add(fb, h31, c);
        fb.copy_to(Ty::I32, h, nh);
    });
    fb.ret(Some(h));
    let hash = m.add_function(fb.finish());

    // main(): intern all identifiers, then look each one up again.
    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let total = c32(&mut fb, n * IDENT_LEN);
    // A small alphabet forces duplicate identifiers (reuse on lookup).
    let data = alloc_filled(&mut fb, Ty::I8, total, 0x7A7A, 0x3);
    let tsize = c32(&mut fb, TABLE_SIZE);
    let slots = fb.new_array(Ty::I32, tsize); // stored hash+1, 0 = empty
    let zero = c32(&mut fb, 0);
    let nreg = c32(&mut fb, n);
    let inserts = fb.new_reg();
    let collisions = fb.new_reg();
    fb.copy_to(Ty::I32, inserts, zero);
    fb.copy_to(Ty::I32, collisions, zero);

    for_range(&mut fb, zero, nreg, |fb, ident| {
        let hv = fb.call(hash, vec![data, ident], true).expect("result");
        let key = fb.new_reg();
        let k0 = and_c(fb, hv, 0x7FFF_FFFE);
        let one = c32(fb, 1);
        let k1 = add(fb, k0, one); // never 0
        fb.copy_to(Ty::I32, key, k1);
        let slot = fb.new_reg();
        let s0 = and_c(fb, hv, TABLE_SIZE - 1);
        fb.copy_to(Ty::I32, slot, s0);
        // Probe for the key or an empty slot.
        let head = fb.new_block();
        let occupied = fb.new_block();
        let advance = fb.new_block();
        let insert = fb.new_block();
        let done = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let cur = fb.array_load(Ty::I32, slots, slot);
        let z = c32(fb, 0);
        fb.cond_br(Cond::Eq, Ty::I32, cur, z, insert, occupied);
        fb.switch_to(occupied);
        fb.cond_br(Cond::Eq, Ty::I32, cur, key, done, advance);
        fb.switch_to(advance);
        let o = c32(fb, 1);
        let s1 = fb.bin(BinOp::Add, Ty::I32, slot, o);
        let sm = and_c(fb, s1, TABLE_SIZE - 1);
        fb.copy_to(Ty::I32, slot, sm);
        fb.bin_to(BinOp::Add, Ty::I32, collisions, collisions, o);
        fb.br(head);
        fb.switch_to(insert);
        fb.array_store(Ty::I32, slots, slot, key);
        let o2 = c32(fb, 1);
        fb.bin_to(BinOp::Add, Ty::I32, inserts, inserts, o2);
        fb.br(done);
        fb.switch_to(done);
    });

    // Lookup pass: every identifier must be found.
    let found = fb.new_reg();
    fb.copy_to(Ty::I32, found, zero);
    for_range(&mut fb, zero, nreg, |fb, ident| {
        let hv = fb.call(hash, vec![data, ident], true).expect("result");
        let k0 = and_c(fb, hv, 0x7FFF_FFFE);
        let one = c32(fb, 1);
        let key = add(fb, k0, one);
        let slot = fb.new_reg();
        let s0 = and_c(fb, hv, TABLE_SIZE - 1);
        fb.copy_to(Ty::I32, slot, s0);
        let head = fb.new_block();
        let check = fb.new_block();
        let advance = fb.new_block();
        let hit = fb.new_block();
        let done = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let cur = fb.array_load(Ty::I32, slots, slot);
        let z = c32(fb, 0);
        fb.cond_br(Cond::Eq, Ty::I32, cur, z, done, check);
        fb.switch_to(check);
        fb.cond_br(Cond::Eq, Ty::I32, cur, key, hit, advance);
        fb.switch_to(hit);
        let o = c32(fb, 1);
        fb.bin_to(BinOp::Add, Ty::I32, found, found, o);
        fb.br(done);
        fb.switch_to(advance);
        let o2 = c32(fb, 1);
        let s1 = fb.bin(BinOp::Add, Ty::I32, slot, o2);
        let sm = and_c(fb, s1, TABLE_SIZE - 1);
        fb.copy_to(Ty::I32, slot, sm);
        fb.br(head);
        fb.switch_to(done);
    });

    // All lookups must succeed: fold the equality into the checksum.
    let ok = fb.setcc(Cond::Eq, Ty::I32, found, nreg);
    let mix1 = mul_c(&mut fb, inserts, 31);
    let mix2 = add(&mut fb, mix1, collisions);
    let mix3 = mul_c(&mut fb, mix2, 31);
    let mix4 = add(&mut fb, mix3, found);
    let out = fb.bin(BinOp::Xor, Ty::I32, mix4, ok);
    fb.ret(Some(out));
    m.add_function(fb.finish());
    m
}
