//! Neural Net: forward and backward passes of a tiny fully-connected
//! network in `f64`, with integer loops only for indexing. Like the
//! original benchmark, nearly all remaining extensions sit on required
//! `i2d` conversions — Table 1 shows ~98.8% remaining for every
//! non-array variant and ~0.25% once array elimination kicks in.

use sxe_ir::{BinOp, FunctionBuilder, Module, Ty, UnOp};

use crate::dsl::{add, c32, for_range, mul_c};

/// Build the kernel; `size` is the hidden-layer width.
#[must_use]
pub fn build(size: u32) -> Module {
    let hidden = size as i64;
    let inputs = 16i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::F64));
    let nin = c32(&mut fb, inputs);
    let nhid = c32(&mut fb, hidden);
    let wlen = c32(&mut fb, inputs * hidden);
    let w1 = fb.new_array(Ty::F64, wlen);
    let invec = fb.new_array(Ty::F64, nin);
    let hid = fb.new_array(Ty::F64, nhid);
    let zero = c32(&mut fb, 0);

    // Deterministic initialization: w[i] = frac-ish((i*37 % 101) - 50)/50.
    let fifty = fb.fconst(50.0);
    for_range(&mut fb, zero, wlen, |fb, i| {
        let a = mul_c(fb, i, 37);
        let hundred1 = c32(fb, 101);
        let r = fb.bin(BinOp::Rem, Ty::I32, a, hundred1);
        let fifty_c = c_fifty(fb);
        let r50 = crate::dsl::sub(fb, r, fifty_c);
        let rf = fb.un(UnOp::I32ToF64, Ty::F64, r50);
        let v = fb.bin(BinOp::Div, Ty::F64, rf, fifty);
        fb.array_store(Ty::F64, w1, i, v);
    });
    for_range(&mut fb, zero, nin, |fb, i| {
        let a = mul_c(fb, i, 13);
        let hundred1 = c32(fb, 101);
        let r = fb.bin(BinOp::Rem, Ty::I32, a, hundred1);
        let rf = fb.un(UnOp::I32ToF64, Ty::F64, r);
        let hundred = fb.fconst(101.0);
        let v = fb.bin(BinOp::Div, Ty::F64, rf, hundred);
        fb.array_store(Ty::F64, invec, i, v);
    });

    // Epochs of forward passes with a rational activation
    // act(x) = x / (1 + |x|).
    let epochs = c32(&mut fb, 8);
    let err = fb.new_reg();
    let zf = fb.fconst(0.0);
    fb.copy_to(Ty::F64, err, zf);
    for_range(&mut fb, zero, epochs, |fb, _e| {
        let z = c32(fb, 0);
        for_range(fb, z, nhid, |fb, j| {
            let acc = fb.new_reg();
            let zf2 = fb.fconst(0.0);
            fb.copy_to(Ty::F64, acc, zf2);
            let base = mul_c(fb, j, inputs);
            let z2 = c32(fb, 0);
            for_range(fb, z2, nin, |fb, i| {
                let idx = add(fb, base, i);
                let wv = fb.array_load(Ty::F64, w1, idx);
                let iv = fb.array_load(Ty::F64, invec, i);
                let p = fb.bin(BinOp::Mul, Ty::F64, wv, iv);
                let na = fb.bin(BinOp::Add, Ty::F64, acc, p);
                fb.copy_to(Ty::F64, acc, na);
            });
            let a = fb.un(UnOp::FAbs, Ty::F64, acc);
            let one_f = fb.fconst(1.0);
            let denom = fb.bin(BinOp::Add, Ty::F64, a, one_f);
            let act = fb.bin(BinOp::Div, Ty::F64, acc, denom);
            fb.array_store(Ty::F64, hid, j, act);
        });
        // "Error" = sum of hidden activations; nudge the first weights.
        let z3 = c32(fb, 0);
        for_range(fb, z3, nhid, |fb, j| {
            let hv = fb.array_load(Ty::F64, hid, j);
            let ne = fb.bin(BinOp::Add, Ty::F64, err, hv);
            fb.copy_to(Ty::F64, err, ne);
            let lr = fb.fconst(0.001);
            let dw = fb.bin(BinOp::Mul, Ty::F64, hv, lr);
            let base = mul_c(fb, j, inputs);
            let wv = fb.array_load(Ty::F64, w1, base);
            let nw = fb.bin(BinOp::Sub, Ty::F64, wv, dw);
            fb.array_store(Ty::F64, w1, base, nw);
        });
    });
    fb.ret(Some(err));
    m.add_function(fb.finish());
    m
}

/// Helper: the constant 50 (kept out of line to appease closure borrows).
fn c_fifty(fb: &mut FunctionBuilder) -> sxe_ir::Reg {
    c32(fb, 50)
}
