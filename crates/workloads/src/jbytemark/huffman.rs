//! Huffman: frequency counting, code assignment, and bit-packed encoding
//! of a byte stream. The encode loop is nothing but byte loads, table
//! lookups, shifts, and masks in a hot loop — the benchmark with the
//! largest speedup in the paper's Figure 13.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{
    add, alloc_filled, and_c, c32, for_range, if_then, mul_c, shl_c, shru_c,
};

/// Build the kernel; `size` is the input length in bytes.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let nreg = c32(&mut fb, n);
    let input = alloc_filled(&mut fb, Ty::I8, nreg, 0x48FF, 0x3F);
    let nsym = c32(&mut fb, 64);
    let freq = fb.new_array(Ty::I32, nsym);
    let zero = c32(&mut fb, 0);
    let one = c32(&mut fb, 1);

    // Pass 1: frequency count (byte load -> table index).
    for_range(&mut fb, zero, nreg, |fb, i| {
        let b = fb.array_load(Ty::I8, input, i);
        let sym = and_c(fb, b, 0x3F);
        let f = fb.array_load(Ty::I32, freq, sym);
        let nf = add(fb, f, one);
        fb.array_store(Ty::I32, freq, sym, nf);
    });

    // Pass 2: assign code lengths by frequency rank — more frequent
    // symbols get shorter codes (a canonical-Huffman-flavoured scheme
    // with lengths 2..=12 derived from the rank's bit position).
    let lens = fb.new_array(Ty::I32, nsym);
    let codes = fb.new_array(Ty::I32, nsym);
    for_range(&mut fb, zero, nsym, |fb, s| {
        let f = fb.array_load(Ty::I32, freq, s);
        // rank = number of symbols strictly more frequent.
        let rank = fb.new_reg();
        let z = c32(fb, 0);
        fb.copy_to(Ty::I32, rank, z);
        let ns = c32(fb, 64);
        for_range(fb, z, ns, |fb, t| {
            let g = fb.array_load(Ty::I32, freq, t);
            if_then(fb, Cond::Gt, g, f, |fb| {
                let o = c32(fb, 1);
                fb.bin_to(BinOp::Add, Ty::I32, rank, rank, o);
            });
        });
        // len = 2 + floor(rank / 8), capped at 9 bits.
        let r8 = shru_c(fb, rank, 3);
        let two = c32(fb, 2);
        let len = add(fb, r8, two);
        let len_reg = fb.new_reg();
        fb.copy_to(Ty::I32, len_reg, len);
        let cap = c32(fb, 9);
        if_then(fb, Cond::Gt, len_reg, cap, |fb| {
            let c = c32(fb, 9);
            fb.copy_to(Ty::I32, len_reg, c);
        });
        fb.array_store(Ty::I32, lens, s, len_reg);
        // code = symbol bits scrambled with the rank.
        let sr = shl_c(fb, rank, 3);
        let code = fb.bin(BinOp::Xor, Ty::I32, sr, s);
        let mask_m = c32(fb, 0x1FF);
        let code9 = fb.bin(BinOp::And, Ty::I32, code, mask_m);
        fb.array_store(Ty::I32, codes, s, code9);
    });

    // Pass 3: encode into a bit-packed i32 output buffer.
    let out_words = c32(&mut fb, n / 2 + 4);
    let out = fb.new_array(Ty::I32, out_words);
    let bitpos = fb.new_reg();
    fb.copy_to(Ty::I32, bitpos, zero);
    for_range(&mut fb, zero, nreg, |fb, i| {
        let b = fb.array_load(Ty::I8, input, i);
        let sym = and_c(fb, b, 0x3F);
        let code = fb.array_load(Ty::I32, codes, sym);
        let len = fb.array_load(Ty::I32, lens, sym);
        let word = shru_c(fb, bitpos, 5);
        let bit = and_c(fb, bitpos, 31);
        let cur = fb.array_load(Ty::I32, out, word);
        let shifted = fb.bin(BinOp::Shl, Ty::I32, code, bit);
        let merged = fb.bin(BinOp::Or, Ty::I32, cur, shifted);
        fb.array_store(Ty::I32, out, word, merged);
        // Spill into the next word when the code straddles the boundary.
        let end = add(fb, bit, len);
        let limit = c32(fb, 32);
        if_then(fb, Cond::Gt, end, limit, |fb| {
            let one_l = c32(fb, 1);
            let w2 = fb.bin(BinOp::Add, Ty::I32, word, one_l);
            let sub = c32(fb, 32);
            let back = fb.bin(BinOp::Sub, Ty::I32, sub, bit);
            let hi = fb.bin(BinOp::Shru, Ty::I32, code, back);
            let cur2 = fb.array_load(Ty::I32, out, w2);
            let merged2 = fb.bin(BinOp::Or, Ty::I32, cur2, hi);
            fb.array_store(Ty::I32, out, w2, merged2);
        });
        let np = add(fb, bitpos, len);
        fb.copy_to(Ty::I32, bitpos, np);
    });

    let h = crate::dsl::checksum_i32(&mut fb, out);
    let h2 = mul_c(&mut fb, h, 7);
    let outv = fb.bin(BinOp::Xor, Ty::I32, h2, bitpos);
    fb.ret(Some(outv));
    m.add_function(fb.finish());
    m
}
