//! Fourier: numerical integration of DFT coefficients with `f64`
//! arithmetic (sin/cos via rotation recurrences). Float-dominated with
//! very few integer operations, so the absolute number of sign
//! extensions is tiny — as in Table 1, where Fourier's baseline count is
//! two orders of magnitude below the other benchmarks'.

use sxe_ir::{BinOp, FunctionBuilder, Module, Ty, UnOp};

use crate::dsl::{c32, for_range};

/// Build the kernel; `size` is the number of coefficients.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::F64));
    let nreg = c32(&mut fb, n);
    let coeffs = fb.new_array(Ty::F64, nreg);
    let zero = c32(&mut fb, 0);
    let steps = c32(&mut fb, 64);
    // dtheta for the innermost rotation; cos/sin seeds for step 2π/64.
    let cd = fb.fconst(0.995_184_726_672_196_9); // cos(2π/64)
    let sd = fb.fconst(0.098_017_140_329_560_6); // sin(2π/64)
    for_range(&mut fb, zero, nreg, |fb, k| {
        // Integrate f(x) = x·cos(kθ) over one period with the trapezoid
        // rule, using a rotation recurrence instead of calling cos.
        let c = fb.new_reg();
        let s = fb.new_reg();
        let one_f = fb.fconst(1.0);
        let zero_f = fb.fconst(0.0);
        fb.copy_to(Ty::F64, c, one_f);
        fb.copy_to(Ty::F64, s, zero_f);
        let acc = fb.new_reg();
        fb.copy_to(Ty::F64, acc, zero_f);
        // Frequency scaling: x = (k+1) as double (an i2d — the few
        // required extensions of this benchmark).
        let one = c32(fb, 1);
        let k1 = fb.bin(BinOp::Add, Ty::I32, k, one);
        let freq = fb.un(UnOp::I32ToF64, Ty::F64, k1);
        // x advances by `freq` per step — like the original benchmark's
        // numeric integration, the loop body is pure float math.
        let x = fb.new_reg();
        let x0 = fb.fconst(0.0);
        fb.copy_to(Ty::F64, x, x0);
        let z = c32(fb, 0);
        for_range(fb, z, steps, |fb, _t| {
            let term = fb.bin(BinOp::Mul, Ty::F64, x, c);
            let nacc = fb.bin(BinOp::Add, Ty::F64, acc, term);
            fb.copy_to(Ty::F64, acc, nacc);
            // (c, s) <- (c·cd − s·sd, s·cd + c·sd)
            let ccd = fb.bin(BinOp::Mul, Ty::F64, c, cd);
            let ssd = fb.bin(BinOp::Mul, Ty::F64, s, sd);
            let nc = fb.bin(BinOp::Sub, Ty::F64, ccd, ssd);
            let scd = fb.bin(BinOp::Mul, Ty::F64, s, cd);
            let csd = fb.bin(BinOp::Mul, Ty::F64, c, sd);
            let ns = fb.bin(BinOp::Add, Ty::F64, scd, csd);
            fb.copy_to(Ty::F64, c, nc);
            fb.copy_to(Ty::F64, s, ns);
            let nx = fb.bin(BinOp::Add, Ty::F64, x, freq);
            fb.copy_to(Ty::F64, x, nx);
        });
        fb.array_store(Ty::F64, coeffs, k, acc);
    });
    // Sum of |coefficients| as the result.
    let total = fb.new_reg();
    let zf = fb.fconst(0.0);
    fb.copy_to(Ty::F64, total, zf);
    for_range(&mut fb, zero, nreg, |fb, k| {
        let v = fb.array_load(Ty::F64, coeffs, k);
        let av = fb.un(UnOp::FAbs, Ty::F64, v);
        let nt = fb.bin(BinOp::Add, Ty::F64, total, av);
        fb.copy_to(Ty::F64, total, nt);
    });
    fb.ret(Some(total));
    m.add_function(fb.finish());
    m
}
