//! Bitfield: set/clear/toggle random bit ranges in an `i32` bitmap, then
//! population-count the result. Heavy on shifts and masks; the masked
//! values are provably sign-extended, so most extensions fall to
//! `AnalyzeDEF` — but the array's word index flows through a logical
//! shift, mirroring the benchmark's stubborn ~28% residue in Table 1.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{add, and_c, c32, for_range, if_else, if_then, lcg_next, shru_c};

/// Build the kernel; `size` is the number of bit operations (the bitmap
/// holds `size` words, rounded up to a power of two).
#[must_use]
pub fn build(size: u32) -> Module {
    let ops = size as i64;
    let words = (size.next_power_of_two().max(64)) as i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let wreg = c32(&mut fb, words);
    let bits = fb.new_array(Ty::I32, wreg);
    let state = fb.new_reg();
    let seed = c32(&mut fb, 0x0B17);
    fb.copy_to(Ty::I32, state, seed);
    let zero = c32(&mut fb, 0);
    let one = c32(&mut fb, 1);
    let opsreg = c32(&mut fb, ops);
    for_range(&mut fb, zero, opsreg, |fb, _i| {
        // pos in [0, words*32) via mask (words is a power of two).
        let pos = lcg_next(fb, state, words * 32 - 1);
        let word = shru_c(fb, pos, 5);
        let bit = and_c(fb, pos, 31);
        let mask = fb.bin(BinOp::Shl, Ty::I32, one, bit);
        let op = lcg_next(fb, state, 3);
        let cur = fb.array_load(Ty::I32, bits, word);
        let two = c32(fb, 2);
        if_else(
            fb,
            Cond::Eq,
            op,
            two,
            |fb| {
                // Toggle.
                let nv = fb.bin(BinOp::Xor, Ty::I32, cur, mask);
                fb.array_store(Ty::I32, bits, word, nv);
            },
            |fb| {
                let z = c32(fb, 0);
                if_else(
                    fb,
                    Cond::Eq,
                    op,
                    z,
                    |fb| {
                        // Set.
                        let nv = fb.bin(BinOp::Or, Ty::I32, cur, mask);
                        fb.array_store(Ty::I32, bits, word, nv);
                    },
                    |fb| {
                        // Clear.
                        let inv = fb.un(sxe_ir::UnOp::Not, Ty::I32, mask);
                        let nv = fb.bin(BinOp::And, Ty::I32, cur, inv);
                        fb.array_store(Ty::I32, bits, word, nv);
                    },
                );
            },
        );
    });
    // Population count (Kernighan loop per word) plus rolling hash.
    let count = fb.new_reg();
    fb.copy_to(Ty::I32, count, zero);
    let h = fb.new_reg();
    fb.copy_to(Ty::I32, h, zero);
    for_range(&mut fb, zero, wreg, |fb, i| {
        let v = fb.new_reg();
        let loaded = fb.array_load(Ty::I32, bits, i);
        fb.copy_to(Ty::I32, v, loaded);
        // while (v != 0) { v &= v - 1; count++ }
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let z = c32(fb, 0);
        fb.cond_br(Cond::Ne, Ty::I32, v, z, body, exit);
        fb.switch_to(body);
        let one_l = c32(fb, 1);
        let vm1 = fb.bin(BinOp::Sub, Ty::I32, v, one_l);
        fb.bin_to(BinOp::And, Ty::I32, v, v, vm1);
        fb.bin_to(BinOp::Add, Ty::I32, count, count, one_l);
        fb.br(head);
        fb.switch_to(exit);
        let h13 = crate::dsl::mul_c(fb, h, 13);
        let nh = add(fb, h13, loaded);
        fb.copy_to(Ty::I32, h, nh);
    });
    if_then(&mut fb, Cond::Lt, count, zero, |fb| {
        // Unreachable guard keeping `count` observable.
        fb.copy_to(Ty::I32, h, count);
    });
    let out = fb.bin(BinOp::Xor, Ty::I32, h, count);
    fb.ret(Some(out));
    m.add_function(fb.finish());
    m
}
