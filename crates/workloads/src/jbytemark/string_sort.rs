//! String Sort: insertion sort of fixed-stride byte strings by
//! lexicographic order. Exercises `i8` array traffic (sign-extending
//! byte loads) and two-level index arithmetic (`idx * STRIDE + k`).

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{add, alloc_filled, c32, for_range, mul_c};

/// Bytes per string.
const STRIDE: i64 = 16;

/// Build the kernel; `size` is the string count.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    // compare(data, p, q) -> i32: lexicographic compare of the strings at
    // slots p and q; negative/zero/positive like String.compareTo.
    let mut fb = FunctionBuilder::new("compare", vec![Ty::I64, Ty::I32, Ty::I32], Some(Ty::I32));
    let data = fb.param(0);
    let p = fb.param(1);
    let q = fb.param(2);
    let base_p = mul_c(&mut fb, p, STRIDE);
    let base_q = mul_c(&mut fb, q, STRIDE);
    let result = fb.new_reg();
    let zero = c32(&mut fb, 0);
    fb.copy_to(Ty::I32, result, zero);
    let k = fb.new_reg();
    fb.copy_to(Ty::I32, k, zero);
    let stride = c32(&mut fb, STRIDE);
    let head = fb.new_block();
    let body = fb.new_block();
    let differs = fb.new_block();
    let next = fb.new_block();
    let exit = fb.new_block();
    fb.br(head);
    fb.switch_to(head);
    fb.cond_br(Cond::Lt, Ty::I32, k, stride, body, exit);
    fb.switch_to(body);
    let ip = add(&mut fb, base_p, k);
    let iq = add(&mut fb, base_q, k);
    let cp = fb.array_load(Ty::I8, data, ip);
    let cq = fb.array_load(Ty::I8, data, iq);
    fb.cond_br(Cond::Ne, Ty::I32, cp, cq, differs, next);
    fb.switch_to(differs);
    let diff = fb.bin(BinOp::Sub, Ty::I32, cp, cq);
    fb.copy_to(Ty::I32, result, diff);
    fb.br(exit);
    fb.switch_to(next);
    let one = c32(&mut fb, 1);
    fb.bin_to(BinOp::Add, Ty::I32, k, k, one);
    fb.br(head);
    fb.switch_to(exit);
    fb.ret(Some(result));
    let compare = m.add_function(fb.finish());

    // swap(data, p, q): exchange two string slots byte by byte.
    let mut fb = FunctionBuilder::new("swap", vec![Ty::I64, Ty::I32, Ty::I32], None);
    let data = fb.param(0);
    let p = fb.param(1);
    let q = fb.param(2);
    let base_p = mul_c(&mut fb, p, STRIDE);
    let base_q = mul_c(&mut fb, q, STRIDE);
    let zero = c32(&mut fb, 0);
    let stride = c32(&mut fb, STRIDE);
    for_range(&mut fb, zero, stride, |fb, k| {
        let ip = add(fb, base_p, k);
        let iq = add(fb, base_q, k);
        let cp = fb.array_load(Ty::I8, data, ip);
        let cq = fb.array_load(Ty::I8, data, iq);
        fb.array_store(Ty::I8, data, ip, cq);
        fb.array_store(Ty::I8, data, iq, cp);
    });
    fb.ret(None);
    let swap = m.add_function(fb.finish());

    // main(): fill N strings with LCG bytes, selection-sort them, then
    // checksum the data in order.
    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let total = c32(&mut fb, n * STRIDE);
    let data = alloc_filled(&mut fb, Ty::I8, total, 0xBEEF, 0x7F);
    let zero = c32(&mut fb, 0);
    let nreg = c32(&mut fb, n);
    let n_minus_1 = c32(&mut fb, n - 1);
    for_range(&mut fb, zero, n_minus_1, |fb, i| {
        let best = fb.new_reg();
        fb.copy_to(Ty::I32, best, i);
        let one = c32(fb, 1);
        let j0 = fb.bin(BinOp::Add, Ty::I32, i, one);
        for_range(fb, j0, nreg, |fb, j| {
            let c = fb.call(compare, vec![data, j, best], true).expect("result");
            let z = c32(fb, 0);
            crate::dsl::if_then(fb, Cond::Lt, c, z, |fb| {
                fb.copy_to(Ty::I32, best, j);
            });
        });
        fb.call(swap, vec![data, i, best], false);
    });
    // Rolling checksum over the sorted bytes.
    let h = fb.new_reg();
    fb.copy_to(Ty::I32, h, zero);
    for_range(&mut fb, zero, total, |fb, i| {
        let b = fb.array_load(Ty::I8, data, i);
        let h31 = mul_c(fb, h, 31);
        let nh = add(fb, h31, b);
        fb.copy_to(Ty::I32, h, nh);
    });
    fb.ret(Some(h));
    m.add_function(fb.finish());
    m
}
