//! LU Decomposition: Gaussian elimination (Doolittle, no pivoting) on an
//! `n × n` matrix of doubles with `i*n + j` flattened indexing. Float
//! math dominates; integer work is all address arithmetic — Table 1
//! shows ~99.9% remaining until array elimination drops it to ~0.01%.

use sxe_ir::{BinOp, FunctionBuilder, Module, Ty, UnOp};

use crate::dsl::{add, c32, for_range, mul_c};

/// Build the kernel; `size` is the matrix dimension.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::F64));
    let nn = c32(&mut fb, n * n);
    let a = fb.new_array(Ty::F64, nn);
    let zero = c32(&mut fb, 0);

    // Fill with a diagonally dominant deterministic matrix.
    let nreg = c32(&mut fb, n);
    for_range(&mut fb, zero, nreg, |fb, i| {
        let base = mul_c(fb, i, n);
        let z = c32(fb, 0);
        let nr = c32(fb, n);
        for_range(fb, z, nr, |fb, j| {
            let idx = add(fb, base, j);
            let mixed = mul_c(fb, idx, 97);
            let h253 = c32(fb, 253);
            let r = fb.bin(BinOp::Rem, Ty::I32, mixed, h253);
            let rf = fb.un(UnOp::I32ToF64, Ty::F64, r);
            let scale = fb.fconst(0.004);
            let off = fb.bin(BinOp::Mul, Ty::F64, rf, scale);
            let v = fb.new_reg();
            fb.copy_to(Ty::F64, v, off);
            crate::dsl::if_then(fb, sxe_ir::Cond::Eq, i, j, |fb| {
                let diag = fb.fconst(4.0);
                let nv = fb.bin(BinOp::Add, Ty::F64, v, diag);
                fb.copy_to(Ty::F64, v, nv);
            });
            fb.array_store(Ty::F64, a, idx, v);
        });
    });

    // Elimination: for k in 0..n: for i in k+1..n: factor = a[i,k]/a[k,k];
    // row_i -= factor * row_k.
    for_range(&mut fb, zero, nreg, |fb, k| {
        let kk_base = mul_c(fb, k, n);
        let kk = add(fb, kk_base, k);
        let pivot = fb.array_load(Ty::F64, a, kk);
        let one = c32(fb, 1);
        let k1 = fb.bin(BinOp::Add, Ty::I32, k, one);
        let nr = c32(fb, n);
        for_range(fb, k1, nr, |fb, i| {
            let i_base = mul_c(fb, i, n);
            let ik = add(fb, i_base, k);
            let below = fb.array_load(Ty::F64, a, ik);
            let factor = fb.bin(BinOp::Div, Ty::F64, below, pivot);
            fb.array_store(Ty::F64, a, ik, factor);
            let j0 = fb.new_reg();
            fb.copy_to(Ty::I32, j0, i); // placeholder to keep kinds simple
            fb.copy_to(Ty::I32, j0, k);
            let one2 = c32(fb, 1);
            let kp1 = fb.bin(BinOp::Add, Ty::I32, j0, one2);
            let nr2 = c32(fb, n);
            for_range(fb, kp1, nr2, |fb, j| {
                let ij = add(fb, i_base, j);
                let kj_base = mul_c(fb, k, n);
                let kj = add(fb, kj_base, j);
                let aij = fb.array_load(Ty::F64, a, ij);
                let akj = fb.array_load(Ty::F64, a, kj);
                let prod = fb.bin(BinOp::Mul, Ty::F64, factor, akj);
                let nv = fb.bin(BinOp::Sub, Ty::F64, aij, prod);
                fb.array_store(Ty::F64, a, ij, nv);
            });
        });
    });

    // Result: product-of-diagonal magnitude (the determinant's |value|).
    let det = fb.new_reg();
    let onef = fb.fconst(1.0);
    fb.copy_to(Ty::F64, det, onef);
    for_range(&mut fb, zero, nreg, |fb, i| {
        let base = mul_c(fb, i, n);
        let ii = add(fb, base, i);
        let d = fb.array_load(Ty::F64, a, ii);
        let nd = fb.bin(BinOp::Mul, Ty::F64, det, d);
        fb.copy_to(Ty::F64, det, nd);
    });
    let out = fb.un(UnOp::FAbs, Ty::F64, det);
    fb.ret(Some(out));
    m.add_function(fb.finish());
    m
}
