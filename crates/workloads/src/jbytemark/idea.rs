//! IDEA: the International Data Encryption Algorithm's round function
//! over 16-bit subblocks. Multiplication modulo 65537 needs 64-bit
//! intermediate math (Java uses `long` here too); everything else is
//! `& 0xffff` masks — extensions after the masks are all redundant.

use sxe_ir::{BinOp, FunctionBuilder, Module, Ty, UnOp};

use crate::dsl::{add, alloc_filled, and_c, c32, for_range, if_then};

/// Build the kernel; `size` is the number of 4-subblock groups encrypted.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = (size as i64) * 4; // total 16-bit subblocks
    let mut m = Module::new();

    // mulmod(a, b) -> (a*b) mod 65537 with the IDEA 0 == 2^16 convention.
    let mut fb = FunctionBuilder::new("mulmod", vec![Ty::I32, Ty::I32], Some(Ty::I32));
    let a = fb.param(0);
    let b = fb.param(1);
    let av = fb.new_reg();
    let bv = fb.new_reg();
    let a16 = and_c(&mut fb, a, 0xFFFF);
    let b16 = and_c(&mut fb, b, 0xFFFF);
    fb.copy_to(Ty::I32, av, a16);
    fb.copy_to(Ty::I32, bv, b16);
    let zero = c32(&mut fb, 0);
    if_then(&mut fb, sxe_ir::Cond::Eq, av, zero, |fb| {
        let x = c32(fb, 0x1_0000);
        fb.copy_to(Ty::I32, av, x);
    });
    if_then(&mut fb, sxe_ir::Cond::Eq, bv, zero, |fb| {
        let x = c32(fb, 0x1_0000);
        fb.copy_to(Ty::I32, bv, x);
    });
    // 64-bit multiply and modulo (the i32 operands are non-negative).
    let aw = fb.un(UnOp::Zext(sxe_ir::Width::W32), Ty::I64, av);
    let bw = fb.un(UnOp::Zext(sxe_ir::Width::W32), Ty::I64, bv);
    let prod = fb.bin(BinOp::Mul, Ty::I64, aw, bw);
    let modulus = fb.iconst(Ty::I64, 65_537);
    let r = fb.bin(BinOp::Rem, Ty::I64, prod, modulus);
    // Back to the 16-bit domain (65536 maps to 0).
    let r32 = and_c(&mut fb, r, 0xFFFF);
    fb.ret(Some(r32));
    let mulmod = m.add_function(fb.finish());

    // main(): rounds of the IDEA mixing structure over an i16 array.
    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let nreg = c32(&mut fb, n);
    let data = alloc_filled(&mut fb, Ty::I16, nreg, 0x1DEA, 0xFFFF);
    let keys = alloc_filled(&mut fb, Ty::I16, nreg, 0x6E75, 0xFFFF);
    let zero = c32(&mut fb, 0);
    let groups = c32(&mut fb, n / 4);
    for_range(&mut fb, zero, groups, |fb, g| {
        let base = crate::dsl::shl_c(fb, g, 2);
        let one = c32(fb, 1);
        let two = c32(fb, 2);
        let three = c32(fb, 3);
        let i0 = base;
        let i1 = add(fb, base, one);
        let i2 = add(fb, base, two);
        let i3 = add(fb, base, three);
        // Load subblocks as unsigned 16-bit values (i16 loads
        // sign-extend; mask like Java's `& 0xffff`).
        let x0s = fb.array_load(Ty::I16, data, i0);
        let x0 = and_c(fb, x0s, 0xFFFF);
        let x1s = fb.array_load(Ty::I16, data, i1);
        let x1 = and_c(fb, x1s, 0xFFFF);
        let x2s = fb.array_load(Ty::I16, data, i2);
        let x2 = and_c(fb, x2s, 0xFFFF);
        let x3s = fb.array_load(Ty::I16, data, i3);
        let x3 = and_c(fb, x3s, 0xFFFF);
        let k0s = fb.array_load(Ty::I16, keys, i0);
        let k0 = and_c(fb, k0s, 0xFFFF);
        let k1s = fb.array_load(Ty::I16, keys, i1);
        let k1 = and_c(fb, k1s, 0xFFFF);
        let k2s = fb.array_load(Ty::I16, keys, i2);
        let k2 = and_c(fb, k2s, 0xFFFF);
        let k3s = fb.array_load(Ty::I16, keys, i3);
        let k3 = and_c(fb, k3s, 0xFFFF);
        // One IDEA half-round.
        let y0 = fb.call(mulmod, vec![x0, k0], true).expect("result");
        let t1 = add(fb, x1, k1);
        let y1 = and_c(fb, t1, 0xFFFF);
        let t2 = add(fb, x2, k2);
        let y2 = and_c(fb, t2, 0xFFFF);
        let y3 = fb.call(mulmod, vec![x3, k3], true).expect("result");
        // MA structure.
        let e0 = fb.bin(BinOp::Xor, Ty::I32, y0, y2);
        let e1 = fb.bin(BinOp::Xor, Ty::I32, y1, y3);
        let p = fb.call(mulmod, vec![e0, e1], true).expect("result");
        let q0 = fb.bin(BinOp::Xor, Ty::I32, y0, p);
        let q1 = fb.bin(BinOp::Xor, Ty::I32, y1, p);
        let q2 = fb.bin(BinOp::Xor, Ty::I32, y2, p);
        let q3 = fb.bin(BinOp::Xor, Ty::I32, y3, p);
        fb.array_store(Ty::I16, data, i0, q0);
        fb.array_store(Ty::I16, data, i1, q1);
        fb.array_store(Ty::I16, data, i2, q2);
        fb.array_store(Ty::I16, data, i3, q3);
    });
    // Checksum the ciphertext.
    let h = fb.new_reg();
    fb.copy_to(Ty::I32, h, zero);
    for_range(&mut fb, zero, nreg, |fb, i| {
        let v = fb.array_load(Ty::I16, data, i);
        let u = and_c(fb, v, 0xFFFF);
        let h31 = crate::dsl::mul_c(fb, h, 31);
        let nh = add(fb, h31, u);
        fb.copy_to(Ty::I32, h, nh);
    });
    fb.ret(Some(h));
    m.add_function(fb.finish());
    m
}
