//! Assignment: a greedy solver for the assignment problem over an
//! `n × n` cost matrix stored row-major in one `i32` array. The
//! `i*n + j` flattened indexing is the canonical Theorem 2 pattern.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{add, alloc_filled, c32, for_range, if_then, mul_c};

/// Build the kernel; `size` is the matrix dimension `n`.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let nn = c32(&mut fb, n * n);
    let cost = alloc_filled(&mut fb, Ty::I32, nn, 0xA551, 0x3FFF);
    let nreg = c32(&mut fb, n);
    let taken = fb.new_array(Ty::I32, nreg); // column -> 1 if assigned
    let assign = fb.new_array(Ty::I32, nreg); // row -> column
    let zero = c32(&mut fb, 0);
    let total = fb.new_reg();
    fb.copy_to(Ty::I32, total, zero);

    // Greedy row scan: each row picks its cheapest unassigned column.
    for_range(&mut fb, zero, nreg, |fb, row| {
        let base = mul_c(fb, row, n);
        let best_col = fb.new_reg();
        let best_val = fb.new_reg();
        let minus1 = c32(fb, -1);
        let big = c32(fb, 0x7FFF_FFFF);
        fb.copy_to(Ty::I32, best_col, minus1);
        fb.copy_to(Ty::I32, best_val, big);
        let z = c32(fb, 0);
        for_range(fb, z, nreg, |fb, col| {
            let t = fb.array_load(Ty::I32, taken, col);
            let z2 = c32(fb, 0);
            if_then(fb, Cond::Eq, t, z2, |fb| {
                let idx = add(fb, base, col);
                let c = fb.array_load(Ty::I32, cost, idx);
                if_then(fb, Cond::Lt, c, best_val, |fb| {
                    fb.copy_to(Ty::I32, best_val, c);
                    fb.copy_to(Ty::I32, best_col, col);
                });
            });
        });
        let one = c32(fb, 1);
        fb.array_store(Ty::I32, taken, best_col, one);
        fb.array_store(Ty::I32, assign, row, best_col);
        let nt = add(fb, total, best_val);
        fb.copy_to(Ty::I32, total, nt);
    });

    // Improvement sweep: try pairwise swaps that lower the total cost
    // (2-opt), a second pass of nested-loop matrix indexing.
    for_range(&mut fb, zero, nreg, |fb, r1| {
        let z = c32(fb, 0);
        for_range(fb, z, nreg, |fb, r2| {
            if_then(fb, Cond::Ne, r1, r2, |fb| {
                let c1 = fb.array_load(Ty::I32, assign, r1);
                let c2 = fb.array_load(Ty::I32, assign, r2);
                let b1 = mul_c(fb, r1, n);
                let b2 = mul_c(fb, r2, n);
                let i11 = add(fb, b1, c1);
                let i12 = add(fb, b1, c2);
                let i21 = add(fb, b2, c1);
                let i22 = add(fb, b2, c2);
                let v11 = fb.array_load(Ty::I32, cost, i11);
                let v12 = fb.array_load(Ty::I32, cost, i12);
                let v21 = fb.array_load(Ty::I32, cost, i21);
                let v22 = fb.array_load(Ty::I32, cost, i22);
                let cur = add(fb, v11, v22);
                let alt = add(fb, v12, v21);
                if_then(fb, Cond::Lt, alt, cur, |fb| {
                    fb.array_store(Ty::I32, assign, r1, c2);
                    fb.array_store(Ty::I32, assign, r2, c1);
                    let saved = fb.bin(BinOp::Sub, Ty::I32, cur, alt);
                    let nt = fb.bin(BinOp::Sub, Ty::I32, total, saved);
                    fb.copy_to(Ty::I32, total, nt);
                });
            });
        });
    });

    let h = crate::dsl::checksum_i32(&mut fb, assign);
    let out = fb.bin(BinOp::Xor, Ty::I32, h, total);
    fb.ret(Some(out));
    m.add_function(fb.finish());
    m
}
