//! FP Emulation: software floating point on `i32` words (pack/unpack a
//! sign/exponent/mantissa format, multiply and add). Everything is masks
//! and bounded shifts, so almost every extension is provably redundant —
//! matching this benchmark's 0.07% residue in Table 1.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{
    add, alloc_filled, and_c, c32, for_range, if_else, if_then, mul_c, shl_c, shru_c,
};

/// Build the kernel; `size` is the element count of the operand arrays.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    // softmul(a, b) -> packed product of two packed soft-floats.
    // Layout: [sign:1][exp:8][mant:23], mantissa without hidden bit.
    let mut fb = FunctionBuilder::new("softmul", vec![Ty::I32, Ty::I32], Some(Ty::I32));
    let a = fb.param(0);
    let b = fb.param(1);
    let sa = shru_c(&mut fb, a, 31);
    let sb = shru_c(&mut fb, b, 31);
    let sign = fb.bin(BinOp::Xor, Ty::I32, sa, sb);
    let ea_raw = shru_c(&mut fb, a, 23);
    let ea = and_c(&mut fb, ea_raw, 0xFF);
    let eb_raw = shru_c(&mut fb, b, 23);
    let eb = and_c(&mut fb, eb_raw, 0xFF);
    let ma = and_c(&mut fb, a, 0x7F_FFFF);
    let mb = and_c(&mut fb, b, 0x7F_FFFF);
    // Multiply the top 12 bits of each mantissa (keeps everything in 32
    // bits, as the original benchmark's word arithmetic does).
    let ha = shru_c(&mut fb, ma, 11);
    let hb = shru_c(&mut fb, mb, 11);
    let prod = fb.bin(BinOp::Mul, Ty::I32, ha, hb);
    let mant = shru_c(&mut fb, prod, 1);
    let mant = and_c(&mut fb, mant, 0x7F_FFFF);
    let esum = add(&mut fb, ea, eb);
    let e = fb.new_reg();
    let bias = c32(&mut fb, 127);
    let eb2 = fb.bin(BinOp::Sub, Ty::I32, esum, bias);
    fb.copy_to(Ty::I32, e, eb2);
    // Clamp the exponent to [0, 255].
    let zero = c32(&mut fb, 0);
    if_then(&mut fb, Cond::Lt, e, zero, |fb| {
        let z = c32(fb, 0);
        fb.copy_to(Ty::I32, e, z);
    });
    let maxe = c32(&mut fb, 255);
    if_then(&mut fb, Cond::Gt, e, maxe, |fb| {
        let mx = c32(fb, 255);
        fb.copy_to(Ty::I32, e, mx);
    });
    let s_shift = shl_c(&mut fb, sign, 31);
    let e_shift = shl_c(&mut fb, e, 23);
    let se = fb.bin(BinOp::Or, Ty::I32, s_shift, e_shift);
    let packed = fb.bin(BinOp::Or, Ty::I32, se, mant);
    fb.ret(Some(packed));
    let softmul = m.add_function(fb.finish());

    // softadd(a, b): align exponents and add the mantissas (same-sign
    // fast path; the sign handling uses compares only).
    let mut fb = FunctionBuilder::new("softadd", vec![Ty::I32, Ty::I32], Some(Ty::I32));
    let a = fb.param(0);
    let b = fb.param(1);
    let ea_raw = shru_c(&mut fb, a, 23);
    let ea = and_c(&mut fb, ea_raw, 0xFF);
    let eb_raw = shru_c(&mut fb, b, 23);
    let eb = and_c(&mut fb, eb_raw, 0xFF);
    let ma = fb.new_reg();
    let mb_r = fb.new_reg();
    let ma0 = and_c(&mut fb, a, 0x7F_FFFF);
    let mb0 = and_c(&mut fb, b, 0x7F_FFFF);
    fb.copy_to(Ty::I32, ma, ma0);
    fb.copy_to(Ty::I32, mb_r, mb0);
    let e = fb.new_reg();
    // Align: shift the smaller-exponent mantissa right by the difference
    // (capped at 23).
    if_else(
        &mut fb,
        Cond::Ge,
        ea,
        eb,
        |fb| {
            fb.copy_to(Ty::I32, e, ea);
            let d = fb.bin(BinOp::Sub, Ty::I32, ea, eb);
            let cap = c32(fb, 23);
            if_then(fb, Cond::Gt, d, cap, |fb| {
                let c = c32(fb, 23);
                fb.bin_to(BinOp::And, Ty::I32, d, d, c); // bounded
            });
            let shifted = fb.bin(BinOp::Shru, Ty::I32, mb_r, d);
            fb.copy_to(Ty::I32, mb_r, shifted);
        },
        |fb| {
            fb.copy_to(Ty::I32, e, eb);
            let d = fb.bin(BinOp::Sub, Ty::I32, eb, ea);
            let cap = c32(fb, 23);
            if_then(fb, Cond::Gt, d, cap, |fb| {
                let c = c32(fb, 23);
                fb.bin_to(BinOp::And, Ty::I32, d, d, c);
            });
            let shifted = fb.bin(BinOp::Shru, Ty::I32, ma, d);
            fb.copy_to(Ty::I32, ma, shifted);
        },
    );
    let msum = add(&mut fb, ma, mb_r);
    // Renormalize one step if the mantissa overflowed.
    let sum = fb.new_reg();
    fb.copy_to(Ty::I32, sum, msum);
    let limit = c32(&mut fb, 0x80_0000);
    if_then(&mut fb, Cond::Ge, sum, limit, |fb| {
        let half = shru_c(fb, sum, 1);
        fb.copy_to(Ty::I32, sum, half);
        let one = c32(fb, 1);
        fb.bin_to(BinOp::Add, Ty::I32, e, e, one);
    });
    let m255 = c32(&mut fb, 255);
    if_then(&mut fb, Cond::Gt, e, m255, |fb| {
        let mx = c32(fb, 255);
        fb.copy_to(Ty::I32, e, mx);
    });
    let masked = and_c(&mut fb, sum, 0x7F_FFFF);
    let e_shift = shl_c(&mut fb, e, 23);
    let packed = fb.bin(BinOp::Or, Ty::I32, e_shift, masked);
    fb.ret(Some(packed));
    let softadd = m.add_function(fb.finish());

    // main(): elementwise c[i] = a[i]*b[i] + c[i-1] over packed arrays.
    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let nreg = c32(&mut fb, n);
    let a = alloc_filled(&mut fb, Ty::I32, nreg, 0xF00D, 0x7FFF_FFFF);
    let b = alloc_filled(&mut fb, Ty::I32, nreg, 0xD00F, 0x7FFF_FFFF);
    let acc = fb.new_reg();
    let init = c32(&mut fb, 0x3F80_0000 & 0x7FFF_FFFF); // ~1.0
    fb.copy_to(Ty::I32, acc, init);
    let zero = c32(&mut fb, 0);
    for_range(&mut fb, zero, nreg, |fb, i| {
        let x = fb.array_load(Ty::I32, a, i);
        let y = fb.array_load(Ty::I32, b, i);
        let p = fb.call(softmul, vec![x, y], true).expect("result");
        let s = fb.call(softadd, vec![p, acc], true).expect("result");
        fb.copy_to(Ty::I32, acc, s);
        fb.array_store(Ty::I32, a, i, s);
    });
    let h = crate::dsl::checksum_i32(&mut fb, a);
    let out = fb.bin(BinOp::Xor, Ty::I32, h, acc);
    let _ = mul_c; // (helper shared with siblings)
    fb.ret(Some(out));
    m.add_function(fb.finish());
    m
}
