//! Numeric Sort: heapsort over an `i32` array (jBYTEmark's integer-sort
//! kernel). Dominated by index arithmetic (`2*root + 1`) and compares —
//! prime Theorem 2/4 territory.

use sxe_ir::{BinOp, Cond, FunctionBuilder, Module, Ty};

use crate::dsl::{add_c, alloc_filled, c32, checksum_i32, for_range_down, if_then, shl_c};

/// Build the kernel; `size` is the element count.
#[must_use]
pub fn build(size: u32) -> Module {
    let n = size as i64;
    let mut m = Module::new();

    // siftdown(a, start, end): restore the heap property below `start`.
    let mut fb = FunctionBuilder::new("siftdown", vec![Ty::I64, Ty::I32, Ty::I32], None);
    let a = fb.param(0);
    let start = fb.param(1);
    let end = fb.param(2);
    let root = fb.new_reg();
    fb.copy_to(Ty::I32, root, start);
    let head = fb.new_block();
    let cont = fb.new_block();
    let exit = fb.new_block();
    fb.br(head);
    fb.switch_to(head);
    let child = fb.new_reg();
    let two_r = shl_c(&mut fb, root, 1);
    let c1 = add_c(&mut fb, two_r, 1);
    fb.copy_to(Ty::I32, child, c1);
    fb.cond_br(Cond::Lt, Ty::I32, child, end, cont, exit);
    fb.switch_to(cont);
    // Prefer the larger child.
    let c2 = add_c(&mut fb, child, 1);
    if_then(&mut fb, Cond::Lt, c2, end, |fb| {
        let v1 = fb.array_load(Ty::I32, a, child);
        let v2 = fb.array_load(Ty::I32, a, c2);
        if_then(fb, Cond::Lt, v1, v2, |fb| {
            fb.copy_to(Ty::I32, child, c2);
        });
    });
    let vr = fb.array_load(Ty::I32, a, root);
    let vc = fb.array_load(Ty::I32, a, child);
    let swap_bb = fb.new_block();
    fb.cond_br(Cond::Lt, Ty::I32, vr, vc, swap_bb, exit);
    fb.switch_to(swap_bb);
    fb.array_store(Ty::I32, a, root, vc);
    fb.array_store(Ty::I32, a, child, vr);
    fb.copy_to(Ty::I32, root, child);
    fb.br(head);
    fb.switch_to(exit);
    fb.ret(None);
    let siftdown = m.add_function(fb.finish());

    // main(): fill, heapify, sort, checksum (with a sortedness probe).
    let mut fb = FunctionBuilder::new("main", vec![], Some(Ty::I32));
    let nreg = c32(&mut fb, n);
    let a = alloc_filled(&mut fb, Ty::I32, nreg, 0x5EED, 0xF_FFFF);
    // Heapify.
    let hstart = c32(&mut fb, n / 2 - 1);
    let minus1 = c32(&mut fb, -1);
    for_range_down(&mut fb, hstart, minus1, |fb, i| {
        fb.call(siftdown, vec![a, i, nreg], false);
    });
    // Pop the heap.
    let top = c32(&mut fb, n - 1);
    let zero = c32(&mut fb, 0);
    for_range_down(&mut fb, top, zero, |fb, e| {
        let v0 = fb.array_load(Ty::I32, a, zero);
        let ve = fb.array_load(Ty::I32, a, e);
        fb.array_store(Ty::I32, a, zero, ve);
        fb.array_store(Ty::I32, a, e, v0);
        fb.call(siftdown, vec![a, zero, e], false);
    });
    // Count inversions (must be zero) and fold into the checksum.
    let inversions = fb.new_reg();
    fb.copy_to(Ty::I32, inversions, zero);
    let one = c32(&mut fb, 1);
    let last = c32(&mut fb, n - 1);
    crate::dsl::for_range(&mut fb, zero, last, |fb, i| {
        let v = fb.array_load(Ty::I32, a, i);
        let ip = fb.bin(BinOp::Add, Ty::I32, i, one);
        let w = fb.array_load(Ty::I32, a, ip);
        if_then(fb, Cond::Gt, v, w, |fb| {
            let n2 = fb.bin(BinOp::Add, Ty::I32, inversions, one);
            fb.copy_to(Ty::I32, inversions, n2);
        });
    });
    let h = checksum_i32(&mut fb, a);
    let mixed = fb.bin(BinOp::Xor, Ty::I32, h, inversions);
    fb.ret(Some(mixed));
    m.add_function(fb.finish());
    m
}
