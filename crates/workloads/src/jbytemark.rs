//! The ten jBYTEmark-style kernels (paper Table 1 / Figures 11 and 13).

pub mod assignment;
pub mod bitfield;
pub mod fourier;
pub mod fp_emulation;
pub mod huffman;
pub mod idea;
pub mod lu_decomposition;
pub mod neural_net;
pub mod numeric_sort;
pub mod string_sort;
