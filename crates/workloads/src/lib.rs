//! # sxe-workloads — synthetic jBYTEmark and SPECjvm98 kernels
//!
//! The paper evaluates on jBYTEmark (10 programs) and SPECjvm98 (7
//! programs) running on a Java JIT. This crate provides one IR kernel
//! per benchmark program, each reproducing the structural reason its
//! counterpart has many or few sign extensions: count-down loops over
//! `i32` arrays, mask-heavy bit manipulation, fixed-point `>>`
//! arithmetic, float-dominated numeric code with `i2d` conversions, and
//! so on. Every kernel is deterministic (data comes from an in-IR LCG)
//! and returns a checksum, so any unsound optimization is observable.
//!
//! ```
//! use sxe_workloads::by_name;
//!
//! let w = by_name("huffman").expect("exists");
//! let module = w.build(256);
//! assert!(module.function_by_name("main").is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dsl;
pub mod jbytemark;
pub mod specjvm;

use sxe_ir::Module;

/// Which benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// jBYTEmark (paper Table 1, Figures 11/13).
    JByteMark,
    /// SPECjvm98 (paper Table 2, Figures 12/14).
    SpecJvm98,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::JByteMark => f.write_str("jBYTEmark"),
            Suite::SpecJvm98 => f.write_str("SPECjvm98"),
        }
    }
}

/// One benchmark kernel.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Display name (matches the paper's table columns).
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Default size used by the reproduction harness.
    pub default_size: u32,
    builder: fn(u32) -> Module,
}

impl Workload {
    /// Build the kernel module at the given size. The module contains a
    /// `main()` entry returning a deterministic checksum.
    #[must_use]
    pub fn build(&self, size: u32) -> Module {
        (self.builder)(size)
    }

    /// Build at the workload's default size.
    #[must_use]
    pub fn build_default(&self) -> Module {
        self.build(self.default_size)
    }
}

/// All seventeen workloads in the paper's table order.
#[must_use]
pub fn all() -> Vec<Workload> {
    let mut v = jbytemark_suite();
    v.extend(specjvm_suite());
    v
}

/// The ten jBYTEmark workloads (Table 1 column order).
#[must_use]
pub fn jbytemark_suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "numeric sort",
            suite: Suite::JByteMark,
            default_size: 600,
            builder: jbytemark::numeric_sort::build,
        },
        Workload {
            name: "string sort",
            suite: Suite::JByteMark,
            default_size: 64,
            builder: jbytemark::string_sort::build,
        },
        Workload {
            name: "bitfield",
            suite: Suite::JByteMark,
            default_size: 2000,
            builder: jbytemark::bitfield::build,
        },
        Workload {
            name: "fp emulation",
            suite: Suite::JByteMark,
            default_size: 1500,
            builder: jbytemark::fp_emulation::build,
        },
        Workload {
            name: "fourier",
            suite: Suite::JByteMark,
            default_size: 48,
            builder: jbytemark::fourier::build,
        },
        Workload {
            name: "assignment",
            suite: Suite::JByteMark,
            default_size: 40,
            builder: jbytemark::assignment::build,
        },
        Workload {
            name: "IDEA",
            suite: Suite::JByteMark,
            default_size: 500,
            builder: jbytemark::idea::build,
        },
        Workload {
            name: "huffman",
            suite: Suite::JByteMark,
            default_size: 1500,
            builder: jbytemark::huffman::build,
        },
        Workload {
            name: "neural net",
            suite: Suite::JByteMark,
            default_size: 48,
            builder: jbytemark::neural_net::build,
        },
        Workload {
            name: "LU decomp.",
            suite: Suite::JByteMark,
            default_size: 24,
            builder: jbytemark::lu_decomposition::build,
        },
    ]
}

/// The seven SPECjvm98 workloads (Table 2 column order).
#[must_use]
pub fn specjvm_suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "mtrt",
            suite: Suite::SpecJvm98,
            default_size: 64,
            builder: specjvm::mtrt::build,
        },
        Workload {
            name: "jess",
            suite: Suite::SpecJvm98,
            default_size: 250,
            builder: specjvm::jess::build,
        },
        Workload {
            name: "compress",
            suite: Suite::SpecJvm98,
            default_size: 4000,
            builder: specjvm::compress::build,
        },
        Workload {
            name: "db",
            suite: Suite::SpecJvm98,
            default_size: 220,
            builder: specjvm::db::build,
        },
        Workload {
            name: "mpegaudio",
            suite: Suite::SpecJvm98,
            default_size: 700,
            builder: specjvm::mpegaudio::build,
        },
        Workload {
            name: "jack",
            suite: Suite::SpecJvm98,
            default_size: 4000,
            builder: specjvm::jack::build,
        },
        Workload {
            name: "javac",
            suite: Suite::SpecJvm98,
            default_size: 500,
            builder: specjvm::javac::build,
        },
    ]
}

/// Look up a workload by (case-insensitive) name.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxe_ir::{verify_module, Target};
    use sxe_vm::Vm;

    #[test]
    fn seventeen_workloads() {
        let ws = all();
        assert_eq!(ws.len(), 17);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::JByteMark).count(), 10);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::SpecJvm98).count(), 7);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("huffman").is_some());
        assert!(by_name("HUFFMAN").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_workload_verifies_and_runs_unoptimized() {
        // Small sizes: this exercises the raw 32-bit-form IR directly
        // (the calling convention canonicalizes entry args, and the IR
        // never relies on upper bits without the pipeline because every
        // required-use has defined low-32 behaviour in the VM).
        for w in all() {
            let m = w.build(16);
            verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let mut vm = Vm::builder(&m).target(Target::Ia64).fuel(200_000_000).build();
            let out = vm.run("main", &[]).unwrap_or_else(|t| panic!("{}: {t}", w.name));
            assert!(out.ret.is_some(), "{} returns a checksum", w.name);
        }
    }

    #[test]
    fn golden_checksums_pinned() {
        // Raw return values at size 20, pinned so kernel refactors that
        // silently change behaviour are caught. (Float kernels return
        // f64 bits; integer kernels sign-extended i32 checksums.)
        let golden: [(&str, i64); 17] = [
            ("numeric sort", -2114594185208813211),
            ("string sort", -2884575313690992410),
            ("bitfield", -3277174547095826578),
            ("fp emulation", -7335163386679787520),
            ("fourier", 4664110732839747462),
            ("assignment", 7783671589323469243),
            ("IDEA", -2097411638001958936),
            ("huffman", -2287267403189543088),
            ("neural net", -4609487900832049569),
            ("LU decomp.", 4794561905683806395),
            ("mtrt", -3533809006449739596),
            ("jess", -4482004191890383264),
            ("compress", -2474373384902134240),
            ("db", 5109484395700281203),
            ("mpegaudio", -8072513068271532564),
            ("jack", 11578498),
            ("javac", 19241),
        ];
        for (name, expect) in golden {
            let w = by_name(name).expect(name);
            let m = w.build(20);
            let mut vm = Vm::builder(&m).target(Target::Ia64).fuel(200_000_000).build();
            let got = vm.run("main", &[]).expect("no trap").ret.expect("value");
            assert_eq!(got, expect, "{name} checksum drifted");
        }
    }

    #[test]
    fn deterministic_checksums() {
        for w in all() {
            let run = || {
                let m = w.build(16);
                let mut vm = Vm::builder(&m).target(Target::Ia64).fuel(200_000_000).build();
                vm.run("main", &[]).expect("no trap").ret
            };
            assert_eq!(run(), run(), "{} must be deterministic", w.name);
        }
    }
}
